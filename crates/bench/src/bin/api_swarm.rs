//! Wire-client swarm against the thread-pool API front end: 100 → 1,000
//! → 10,000 concurrent keep-alive clients hammer `/v1/health` on one
//! server, reporting per-request p50/p99/p999 latency, saturation
//! throughput, and how the server degrades — 429 + `retry-after` sheds,
//! never connection errors. The server's thread count is asserted flat
//! (`workers + 2`) at every level: connections scale, threads do not.
//!
//! A second sweep drives `POST /v1/write` at the same levels: every
//! client proposes one distinct row per request into its stripe's PS
//! pool, exercising the server's same-pool write coalescing and the
//! columnar storage plane's slot allocation under swarm concurrency.
//! Every acknowledged write must be a landed row — the level asserts
//! `ok == rows landed` after the swarm drains.
//!
//! The swarm runs in child **shard processes** (the binary re-execs
//! itself with `STATESMAN_SWARM_SHARD` set): each shard owns its own
//! file-descriptor budget, so the server process only pays one fd per
//! connection and 10,000 concurrent sockets fit under common `ulimit -n`
//! values that an all-in-one-process rig would blow through.
//!
//! ```text
//! STATESMAN_BENCH_CLIENTS=100,1000,10000 STATESMAN_BENCH_REQUESTS=20 \
//!     cargo run --release -p statesman-bench --bin api_swarm
//! ```
//!
//! Emits `BENCH_api_swarm.json` in the working directory and a
//! `csv,`-prefixed line per level.

use statesman_httpapi::{ApiClient, ApiServer, ServerConfig};
use statesman_net::SimClock;
use statesman_storage::StorageService;
use statesman_types::{AppId, Attribute, EntityName, NetworkState, SimTime, Value};
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Apps the swarm stripes its clients across (the server's ready-queue
/// is deficit-round-robin per app).
const APP_STRIPES: usize = 32;

fn main() {
    if std::env::var("STATESMAN_SWARM_SHARD").is_ok() {
        run_shard();
        return;
    }

    let levels: Vec<usize> = std::env::var("STATESMAN_BENCH_CLIENTS")
        .ok()
        .unwrap_or_else(|| "100,1000,10000".to_string())
        .split(',')
        .filter_map(|g| g.trim().parse().ok())
        .filter(|&g| g >= 1)
        .collect();
    let requests: usize = std::env::var("STATESMAN_BENCH_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    let shard_size: usize = std::env::var("STATESMAN_SWARM_SHARD_SIZE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2500)
        .max(1);

    // The server pays one fd per connection; refuse to ask for more
    // concurrent clients than the process could even accept, and say so.
    let fd_budget = fd_limit().saturating_sub(64);

    let mut server_threads = 0usize;
    let mut sections = Vec::new();
    for mode in ["health", "write"] {
        let mut rows = Vec::new();
        let mut json_rows = Vec::new();
        for &requested in &levels {
            let clients = requested.min(fd_budget);
            if clients < requested {
                println!(
                    "note: level {requested} clamped to {clients} by the fd limit ({})",
                    fd_limit()
                );
            }
            let m = measure(clients, requests, shard_size, mode);
            server_threads = m.server_threads;
            println!(
                "csv,api_swarm_{mode},{clients},{},{},{},{:.0},{},{}",
                m.p50_us, m.p99_us, m.p999_us, m.throughput_rps, m.sheds, m.connect_failures
            );
            rows.push(vec![
                clients.to_string(),
                m.p50_us.to_string(),
                m.p99_us.to_string(),
                m.p999_us.to_string(),
                format!("{:.0}", m.throughput_rps),
                m.sheds.to_string(),
                m.connect_failures.to_string(),
            ]);
            json_rows.push(format!(
                "    {{ \"clients\": {clients}, \"p50_us\": {}, \"p99_us\": {}, \"p999_us\": {}, \
                 \"throughput_rps\": {:.0}, \"ok\": {}, \"sheds\": {}, \"errors\": {}, \
                 \"connect_failures\": {} }}",
                m.p50_us,
                m.p99_us,
                m.p999_us,
                m.throughput_rps,
                m.ok,
                m.sheds,
                m.errors,
                m.connect_failures
            ));
        }
        println!();
        println!(
            "api_swarm/{mode}: {requests} requests/client over keep-alive, \
             server threads fixed at {server_threads}"
        );
        print!(
            "{}",
            statesman_bench::report::table(
                &[
                    "clients",
                    "p50_us",
                    "p99_us",
                    "p999_us",
                    "rps",
                    "sheds",
                    "conn_fail"
                ],
                &rows
            )
        );
        let key = if mode == "health" {
            "levels"
        } else {
            "write_levels"
        };
        sections.push(format!("  \"{key}\": [\n{}\n  ]", json_rows.join(",\n")));
    }

    let json = format!(
        "{{\n  \"bench\": \"api_swarm\",\n  \"requests_per_client\": {requests},\n  \
         \"server_threads\": {server_threads},\n{}\n}}\n",
        sections.join(",\n")
    );
    std::fs::write("BENCH_api_swarm.json", json).expect("write BENCH_api_swarm.json");
}

struct LevelResult {
    p50_us: u64,
    p99_us: u64,
    p999_us: u64,
    throughput_rps: f64,
    ok: usize,
    sheds: usize,
    errors: usize,
    connect_failures: usize,
    server_threads: usize,
}

/// One level: a fresh server, `clients` concurrent keep-alive wire
/// clients split across shard processes, `requests` requests each.
fn measure(clients: usize, requests: usize, shard_size: usize, mode: &str) -> LevelResult {
    let clock = SimClock::new();
    let storage = StorageService::single_dc("dc1", clock);
    let server = ApiServer::start_with_config(storage.clone(), ServerConfig::default(), None)
        .expect("start api server");
    let expected_threads = server.thread_count();
    let exe = std::env::current_exe().expect("current_exe");

    let t0 = Instant::now();
    let mut children = Vec::new();
    let mut remaining = clients;
    let mut stripe = 0usize;
    while remaining > 0 {
        let n = remaining.min(shard_size);
        remaining -= n;
        children.push(
            std::process::Command::new(&exe)
                .env("STATESMAN_SWARM_SHARD", n.to_string())
                .env("STATESMAN_SWARM_ADDR", server.addr().to_string())
                .env("STATESMAN_SWARM_REQUESTS", requests.to_string())
                .env("STATESMAN_SWARM_STRIPE", stripe.to_string())
                .env("STATESMAN_SWARM_MODE", mode)
                .stdout(std::process::Stdio::piped())
                .spawn()
                .expect("spawn swarm shard"),
        );
        stripe += n;
    }
    let mut samples: Vec<u64> = Vec::new();
    let (mut ok, mut sheds, mut errors, mut connect_failures) = (0, 0, 0, 0);
    for child in children {
        let out = child.wait_with_output().expect("join swarm shard");
        assert!(out.status.success(), "swarm shard failed");
        for line in String::from_utf8_lossy(&out.stdout).lines() {
            if let Some(rest) = line.strip_prefix("result,") {
                let mut f = rest.split(',').filter_map(|v| v.parse::<usize>().ok());
                ok += f.next().unwrap_or(0);
                sheds += f.next().unwrap_or(0);
                errors += f.next().unwrap_or(0);
                connect_failures += f.next().unwrap_or(0);
            } else if let Some(rest) = line.strip_prefix("samples,") {
                samples.extend(rest.split(',').filter_map(|v| v.parse::<u64>().ok()));
            }
        }
    }
    let wall = t0.elapsed().as_secs_f64();

    // Write sweep: every acknowledged write landed exactly one distinct
    // row (writes are acked only after the coalesced batch commits), so
    // coalescing may batch but never drop or double-apply.
    if mode == "write" {
        let landed: u64 = storage.pool_row_stats().iter().map(|(_, n)| n).sum();
        assert_eq!(
            landed as usize, ok,
            "acked /v1/write requests must equal landed rows"
        );
    }

    // The headline property: connections scaled, the thread pool did not.
    assert_eq!(
        server.thread_count(),
        expected_threads,
        "server thread count must stay fixed under {clients} clients"
    );

    samples.sort_unstable();
    let pct = |q: f64| -> u64 {
        if samples.is_empty() {
            return 0;
        }
        samples[((samples.len() - 1) as f64 * q) as usize]
    };
    LevelResult {
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        p999_us: pct(0.999),
        throughput_rps: ok as f64 / wall.max(f64::MIN_POSITIVE),
        ok,
        sheds,
        errors,
        connect_failures,
        server_threads: expected_threads,
    }
}

/// Child-process mode: run `STATESMAN_SWARM_SHARD` keep-alive clients
/// against `STATESMAN_SWARM_ADDR` and report tallies + latency samples
/// on stdout.
fn run_shard() {
    let n: usize = std::env::var("STATESMAN_SWARM_SHARD")
        .unwrap()
        .parse()
        .expect("shard size");
    let addr: std::net::SocketAddr = std::env::var("STATESMAN_SWARM_ADDR")
        .expect("swarm addr")
        .parse()
        .expect("swarm addr");
    let requests: usize = std::env::var("STATESMAN_SWARM_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    let stripe: usize = std::env::var("STATESMAN_SWARM_STRIPE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let write_mode = std::env::var("STATESMAN_SWARM_MODE").as_deref() == Ok("write");

    let mut threads = Vec::with_capacity(n);
    for i in 0..n {
        threads.push(
            std::thread::Builder::new()
                .stack_size(96 << 10)
                .spawn(move || {
                    // Smooth the SYN storm so the listener backlog holds.
                    std::thread::sleep(Duration::from_millis((i % 500) as u64));
                    let global = stripe + i;
                    let app = format!("swarm-{}", global % APP_STRIPES);
                    let client = ApiClient::new(addr).with_app(app.clone());
                    // PS pool wire name, ':' percent-encoded.
                    let write_target = format!("/v1/write?Pool=PS%3A{app}");
                    let mut lat = Vec::with_capacity(requests);
                    let (mut ok, mut sheds, mut errors, mut connect_failures) = (0, 0, 0, 0);
                    for r in 0..requests {
                        let (method, target, body) = if write_mode {
                            // One distinct row per request: landed rows
                            // must equal acks at the level's end.
                            let row = NetworkState::new(
                                EntityName::device("dc1", format!("sw-{global}-{r}")),
                                Attribute::DeviceFirmwareVersion,
                                Value::text("fw-swarm"),
                                SimTime(r as u64),
                                AppId::new(app.clone()),
                            );
                            let body = serde_json::to_vec(&vec![row]).expect("serialize row");
                            ("POST", write_target.clone(), body)
                        } else {
                            ("GET", "/v1/health".to_string(), Vec::new())
                        };
                        let t = Instant::now();
                        match client.raw_request(method, &target, &body) {
                            Ok(resp) if (200..300).contains(&resp.status) => {
                                lat.push(t.elapsed().as_micros() as u64);
                                ok += 1;
                            }
                            Ok(resp) if resp.status == 429 => sheds += 1,
                            Ok(_) => errors += 1,
                            Err(_) => connect_failures += 1,
                        }
                    }
                    (lat, ok, sheds, errors, connect_failures)
                })
                .expect("spawn swarm client"),
        );
    }
    let mut samples = Vec::with_capacity(n * requests);
    let (mut ok, mut sheds, mut errors, mut connect_failures) = (0, 0, 0, 0);
    for t in threads {
        let (lat, o, s, e, c) = t.join().expect("swarm client");
        samples.extend(lat);
        ok += o;
        sheds += s;
        errors += e;
        connect_failures += c;
    }
    let stdout = std::io::stdout();
    let mut w = stdout.lock();
    writeln!(w, "result,{ok},{sheds},{errors},{connect_failures}").unwrap();
    let joined: Vec<String> = samples.iter().map(|v| v.to_string()).collect();
    writeln!(w, "samples,{}", joined.join(",")).unwrap();
}

/// The soft `RLIMIT_NOFILE` ceiling, from `/proc/self/limits` (no libc
/// binding needed); generous fallback when unreadable.
fn fd_limit() -> usize {
    std::fs::read_to_string("/proc/self/limits")
        .ok()
        .and_then(|text| {
            text.lines()
                .find(|l| l.starts_with("Max open files"))
                .and_then(|l| l.split_whitespace().nth(3)?.parse().ok())
        })
        .unwrap_or(1 << 20)
}
