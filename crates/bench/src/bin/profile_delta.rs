//! Per-stage breakdown of quiescent coordinator rounds, delta plane vs
//! snapshot plane — a development aid for watching where the delta
//! path's round budget goes while optimizing.
//!
//! ```text
//! cargo run --release -p statesman-bench --bin profile_delta [vars]
//! ```

use statesman_core::{Coordinator, CoordinatorConfig};
use statesman_net::{SimClock, SimConfig, SimNetwork};
use statesman_storage::{ClusterConfig, StorageConfig, StorageService};
use statesman_topology::DcnSpec;
use statesman_types::DatacenterId;

fn main() {
    let vars: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(50_000);
    for delta in [true, false] {
        let clock = SimClock::new();
        let graph = DcnSpec::sized_for_variables("dcX", vars).build();
        let net = SimNetwork::new(&graph, clock.clone(), SimConfig::ideal());
        let storage = StorageService::new(
            [DatacenterId::new("dcX")],
            clock.clone(),
            StorageConfig {
                replicas_per_ring: 1,
                ring: ClusterConfig {
                    replicas: 1,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let coord = Coordinator::new(
            &graph,
            net,
            storage,
            CoordinatorConfig {
                connectivity_invariant: false,
                capacity_invariant: None,
                wan_invariant: None,
                delta_state_plane: delta,
                monitor_resync_every: Some(u64::MAX),
                ..Default::default()
            },
        );
        coord.tick().expect("seed round");
        for round in 0..3 {
            let t = std::time::Instant::now();
            let r = coord.tick().expect("round");
            let checker: f64 = r.checkers.iter().map(|c| c.elapsed.as_secs_f64()).sum();
            println!(
                "delta={delta} round {round}: total {:.3}s monitor {:.3}s checker {:.3}s \
                 updater {:.3}s | rows_written {} suppressed {}",
                t.elapsed().as_secs_f64(),
                r.monitor.elapsed.as_secs_f64(),
                checker,
                r.updater.elapsed.as_secs_f64(),
                r.rows_written,
                r.writes_suppressed,
            );
        }
    }
}
