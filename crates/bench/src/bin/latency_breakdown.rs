//! Regenerate the §8 end-to-end latency breakdown: application vs
//! monitor vs checker vs updater share of one control loop.
//!
//! ```text
//! cargo run --release -p statesman-bench --bin latency_breakdown
//! ```
//!
//! Expected shape (paper): application negligible (<10 ms), checker
//! seconds at scale, updater dominating (>50%).

use statesman_bench::latency::measure_loop_breakdown;
use statesman_bench::report::table;

fn main() {
    println!("== End-to-end control-loop latency breakdown (Fig-7 DC, pod-1 upgrade) ==");
    let mut rows = Vec::new();
    let mut shares = Vec::new();
    for seed in [1u64, 2, 3] {
        let b = measure_loop_breakdown(seed);
        rows.push(vec![
            seed.to_string(),
            format!("{:.2}", b.app_ms),
            format!("{:.1}", b.monitor_ms),
            format!("{:.2}", b.checker_ms),
            format!("{:.1}", b.updater_ms),
            format!("{:.1}%", b.updater_share() * 100.0),
        ]);
        shares.push(b.updater_share());
    }
    println!(
        "{}",
        table(
            &[
                "seed",
                "app (ms)",
                "monitor (ms)",
                "checker (ms)",
                "updater (ms)",
                "updater share",
            ],
            &rows
        )
    );
    let mean = shares.iter().sum::<f64>() / shares.len() as f64;
    println!("mean updater share: {:.1}% (paper: >50%)", mean * 100.0);
    assert!(mean > 0.5, "updater must dominate the loop");
    println!("application latency is negligible; the updater dominates — matching §8.");
}
