//! Regenerate Figure 10: link-load time series while inter-DC TE and
//! switch-upgrade resolve their conflict through priority locks.
//!
//! ```text
//! cargo run --release -p statesman-bench --bin fig10_lock_conflict
//! ```
//!
//! Output: the A–E event timeline, a 24-row (12 physical links × 2
//! directions) load raster, and `csv,`-prefixed raw rows.

use statesman_bench::fig10::{Fig10Config, Fig10Scenario};
use statesman_bench::report;

fn main() {
    let config = Fig10Config::default();
    println!("== Figure 10: resolving application conflicts with priority locks ==");
    println!("topology: 4 DCs full mesh, 2 border routers each (Fig 9)");
    println!(
        "apps: inter-DC TE (low-priority locks) + switch-upgrade of {} (high-priority lock)",
        config.targets.join(",")
    );
    println!();

    let capacity = 100_000.0; // WAN link capacity, for utilization levels
    let result = Fig10Scenario::new(config).run();

    println!("-- events --");
    for (t, label) in &result.events {
        println!("  [{t}] {label}");
    }
    println!();

    let labels: Vec<String> = result.samples[0]
        .loads
        .iter()
        .map(|(l, from, _)| format!("{from}>{}", l.peer_of(from).unwrap()))
        .collect();
    let raster = report::load_raster(
        &result
            .samples
            .iter()
            .map(|s| s.loads.iter().map(|(_, _, m)| *m).collect())
            .collect::<Vec<_>>(),
        capacity,
    );
    println!(
        "-- directed link loads (rows = 24 directed links; cols = {} ticks of 5 min) --",
        result.samples.len()
    );
    println!("   legend: · empty   ▁ low(1-40%)   ▄ medium(40-80%)   █ high(80-100%)");
    for (label, row) in labels.iter().zip(&raster) {
        println!("{label:>12} |{row}|");
    }
    println!();

    println!("-- summary --");
    for (dev, version) in &result.final_versions {
        println!("  {dev} final firmware: {version}");
    }
    let last = result.samples.last().unwrap();
    println!("  final total load: {:.0} Mbps", last.total_load());
    println!();

    for s in &result.samples {
        let mut fields = vec![format!("{}", s.at.as_mins())];
        fields.extend(s.loads.iter().map(|(_, _, m)| format!("{m:.0}")));
        println!("{}", report::csv_line(&fields));
    }
}
