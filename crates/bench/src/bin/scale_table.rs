//! Regenerate the §8 scale claims: the ten-datacenter inventory (over
//! 1.5M state variables) and checker latency vs variable count, up to the
//! paper's largest DC at ~394K variables.
//!
//! ```text
//! cargo run --release -p statesman-bench --bin scale_table
//! ```

use statesman_bench::report::table;
use statesman_bench::scale::{checker_pass_at_scale, deployment_inventory};

fn main() {
    println!("== Deployment inventory (paper: ten DCs, >1.5M state variables) ==");
    let inv = deployment_inventory();
    let mut rows = Vec::new();
    let mut total = 0usize;
    for (name, spec, vars) in &inv {
        let g = spec.build();
        rows.push(vec![
            name.clone(),
            spec.pods.to_string(),
            g.node_count().to_string(),
            g.edge_count().to_string(),
            vars.to_string(),
        ]);
        total += vars;
    }
    rows.push(vec![
        "TOTAL".into(),
        String::new(),
        String::new(),
        String::new(),
        total.to_string(),
    ]);
    println!(
        "{}",
        table(
            &["dc", "pods", "devices", "links", "state variables"],
            &rows
        )
    );
    assert!(total >= 1_500_000);
    println!("fleet total {total} state variables (paper: >1.5M)\n");

    println!("== Checker-pass latency vs state variables (paper: <10 s at 394K) ==");
    let mut rows = Vec::new();
    for target in [10_000usize, 50_000, 100_000, 200_000, 394_000] {
        let p = checker_pass_at_scale(target, 42);
        rows.push(vec![
            p.variables.to_string(),
            p.devices.to_string(),
            p.links.to_string(),
            p.proposals.to_string(),
            format!("{:.3}", p.checker_elapsed.as_secs_f64()),
            format!("{:.3}", p.monitor_elapsed.as_secs_f64()),
        ]);
        assert!(
            p.checker_elapsed.as_secs_f64() < 10.0,
            "checker pass exceeded the paper's 10 s bound at {} vars",
            p.variables
        );
    }
    println!(
        "{}",
        table(
            &[
                "variables",
                "devices",
                "links",
                "proposals",
                "checker pass (s)",
                "monitor compute (s)",
            ],
            &rows
        )
    );
    println!("all checker passes under the paper's 10 s bound");
}
