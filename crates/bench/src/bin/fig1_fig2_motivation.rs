//! Regenerate Figures 1 and 2: the motivating conflicts, with and without
//! Statesman mediating.
//!
//! ```text
//! cargo run --release -p statesman-bench --bin fig1_fig2_motivation
//! ```

use statesman_bench::motivation::{run_fig1, run_fig2};

fn main() {
    println!("== Figure 1: application conflict (TE tunnel vs firmware upgrade) ==");
    let f1 = run_fig1();
    for n in &f1.notes {
        println!("  {n}");
    }
    println!(
        "  traffic lost: without Statesman {:.0} Mbps, with Statesman {:.0} Mbps",
        f1.without_statesman, f1.with_statesman
    );
    assert!(f1.without_statesman > 0.0 && f1.with_statesman == 0.0);
    println!();

    println!("== Figure 2: safety violation (both Aggs of a pod down) ==");
    let f2 = run_fig2();
    for n in &f2.notes {
        println!("  {n}");
    }
    println!(
        "  pod partitioned: without Statesman {}, with Statesman {}",
        f2.without_statesman > 0.0,
        f2.with_statesman > 0.0
    );
    assert!(f2.without_statesman > 0.0 && f2.with_statesman == 0.0);
    println!();
    println!("Statesman prevents both failure modes.");
}
