//! Figures 1 and 2 recreated: the motivating failures, with and without
//! Statesman.
//!
//! * **Fig 1** — a TE application allocates traffic on a path through
//!   switch B while a firmware-upgrade application reboots B. Without
//!   mediation the tunnel drops traffic; with Statesman's priority locks
//!   the TE application observes it cannot lock B, steers around it, and
//!   no traffic is lost.
//! * **Fig 2** — a firmware-upgrade application takes Agg B down assuming
//!   Agg A is up, while a failure-mitigation application takes Agg A down
//!   assuming B is up; together they disconnect the pod's ToRs. Without
//!   mediation the partition happens; with Statesman the connectivity
//!   invariant rejects whichever proposal arrives second.
//!
//! "Without Statesman" is modeled honestly: the applications' desired
//! states are written straight into the target state (no checker), and
//! the same memoryless updater executes them against the same simulator.

use statesman_core::{Coordinator, CoordinatorConfig, MergePolicy, StatesmanClient, Updater};
use statesman_net::{FlowSpec, SimClock, SimConfig, SimNetwork};
use statesman_storage::{StorageConfig, StorageService, WriteRequest};
use statesman_topology::{graph::connected, DcnSpec, HealthView, NetworkGraph};
use statesman_types::{
    AppId, Attribute, DatacenterId, DeviceName, DeviceRole, EntityName, LockPriority, NetworkState,
    Pool, SimDuration, Value,
};

/// Outcome of one motivation experiment.
#[derive(Debug, Clone)]
pub struct MotivationOutcome {
    /// The failure metric without Statesman (lost Mbps for Fig 1; 1.0 if
    /// the pod partitioned for Fig 2).
    pub without_statesman: f64,
    /// The same metric with Statesman mediating.
    pub with_statesman: f64,
    /// Narrative of what happened.
    pub notes: Vec<String>,
}

/// Build the Fig-1 diamond: A–{B,C}–D.
fn diamond() -> NetworkGraph {
    let mut g = NetworkGraph::new();
    for n in ["sw-a", "sw-b", "sw-c", "sw-d"] {
        g.add_device(n, DeviceRole::Core, "dc1", None);
    }
    for (x, y) in [
        ("sw-a", "sw-b"),
        ("sw-a", "sw-c"),
        ("sw-b", "sw-d"),
        ("sw-c", "sw-d"),
    ] {
        g.add_link(&DeviceName::new(x), &DeviceName::new(y), 10_000.0, "dc1");
    }
    g
}

fn ts_row(entity: EntityName, attr: Attribute, v: Value, writer: &str) -> NetworkState {
    NetworkState::new(
        entity,
        attr,
        v,
        statesman_types::SimTime::ZERO,
        AppId::new(writer),
    )
}

/// Run the Fig-1 experiment. Returns lost traffic (Mbps) without vs with.
pub fn run_fig1() -> MotivationOutcome {
    let mut notes = Vec::new();

    // ---- without Statesman: direct, unmediated writes ----
    let lost_without = {
        let clock = SimClock::new();
        let graph = diamond();
        let mut cfg = SimConfig::ideal();
        cfg.faults.reboot_window_ms = 8 * 60_000;
        cfg.faults.command_latency_ms = 1_000;
        let net = SimNetwork::new(&graph, clock.clone(), cfg);
        let storage = StorageService::new(
            [DatacenterId::new("dc1")],
            clock.clone(),
            StorageConfig::default(),
        );
        // TE writes its tunnel through B; upgrade writes B's firmware —
        // both straight into the TS.
        let path = EntityName::path("dc1", "tunnel:a>d");
        storage
            .write(WriteRequest {
                pool: Pool::Target,
                rows: vec![
                    ts_row(
                        path.clone(),
                        Attribute::PathSwitches,
                        Value::DeviceList(vec![
                            DeviceName::new("sw-a"),
                            DeviceName::new("sw-b"),
                            DeviceName::new("sw-d"),
                        ]),
                        "te",
                    ),
                    ts_row(
                        path,
                        Attribute::PathTrafficAllocation,
                        Value::Float(1_000.0),
                        "te",
                    ),
                    ts_row(
                        EntityName::device("dc1", "sw-b"),
                        Attribute::DeviceFirmwareVersion,
                        Value::text("7.0"),
                        "upgrade",
                    ),
                ],
            })
            .unwrap();
        let updater = Updater::new(net.clone(), storage.clone(), graph.clone());
        // Seed OS so the updater sees the firmware difference, then let it
        // execute both intents.
        let monitor = statesman_core::Monitor::new(net.clone(), storage.clone(), graph.clone());
        monitor.run_round().unwrap();
        updater.run_round().unwrap();
        net.offer_flows(vec![FlowSpec::new("tunnel:a>d", "sw-a", "sw-d", 1_000.0)]);
        // Rules land, then B reboots mid-traffic.
        net.step(SimDuration::from_mins(2));
        let report = net.traffic_report();
        notes.push(format!(
            "without: tunnel via sw-b while sw-b reboots → {:.0} Mbps lost",
            report.lost_mbps
        ));
        report.lost_mbps
    };

    // ---- with Statesman: priority locks mediate ----
    let lost_with = {
        let clock = SimClock::new();
        let graph = diamond();
        let mut cfg = SimConfig::ideal();
        cfg.faults.reboot_window_ms = 8 * 60_000;
        cfg.faults.command_latency_ms = 1_000;
        let net = SimNetwork::new(&graph, clock.clone(), cfg);
        let storage = StorageService::new(
            [DatacenterId::new("dc1")],
            clock.clone(),
            StorageConfig::default(),
        );
        let coord = Coordinator::new(
            &graph,
            net.clone(),
            storage.clone(),
            CoordinatorConfig {
                policy: MergePolicy::PriorityLock,
                capacity_invariant: None, // not the point of Fig 1
                ..Default::default()
            },
        );
        let te = StatesmanClient::new("te", storage.clone(), clock.clone());
        let upgrade = StatesmanClient::new("upgrade", storage, clock);
        let b = EntityName::device("dc1", "sw-b");

        // Upgrade locks B first (high priority), then proposes firmware.
        upgrade.acquire_lock(&b, LockPriority::High, None).unwrap();
        coord.tick_and_advance(SimDuration::from_mins(1)).unwrap();
        upgrade
            .propose([(
                b.clone(),
                Attribute::DeviceFirmwareVersion,
                Value::text("7.0"),
            )])
            .unwrap();

        // TE wants a tunnel; it checks the lock first and routes around B.
        let via = if te.holds_lock(&b).unwrap() {
            "sw-b"
        } else {
            "sw-c"
        };
        let path = EntityName::path("dc1", "tunnel:a>d");
        te.propose([
            (
                path.clone(),
                Attribute::PathSwitches,
                Value::DeviceList(vec![
                    DeviceName::new("sw-a"),
                    DeviceName::new(via),
                    DeviceName::new("sw-d"),
                ]),
            ),
            (
                path,
                Attribute::PathTrafficAllocation,
                Value::Float(1_000.0),
            ),
        ])
        .unwrap();
        coord.tick_and_advance(SimDuration::from_mins(1)).unwrap();
        coord.tick_and_advance(SimDuration::from_mins(1)).unwrap();
        net.offer_flows(vec![FlowSpec::new("tunnel:a>d", "sw-a", "sw-d", 1_000.0)]);
        net.step(SimDuration::from_mins(2));
        let report = net.traffic_report();
        notes.push(format!(
            "with: TE observed the lock on sw-b, tunneled via {via} → {:.0} Mbps lost",
            report.lost_mbps
        ));
        report.lost_mbps
    };

    MotivationOutcome {
        without_statesman: lost_without,
        with_statesman: lost_with,
        notes,
    }
}

/// Run the Fig-2 experiment. Returns 1.0 if the pod partitioned, else 0.
pub fn run_fig2() -> MotivationOutcome {
    let mut notes = Vec::new();
    let dc = DatacenterId::new("dc1");

    let partitioned = |net: &SimNetwork, graph: &NetworkGraph| -> bool {
        let mut h = HealthView::all_up();
        for d in net.device_names() {
            if !net.device_operational(&d) {
                h.set_device_down(d);
            }
        }
        for l in net.link_names() {
            if !net.link_oper_up(&l) {
                h.set_link_down(l);
            }
        }
        let tor = graph.node_id(&DeviceName::new("tor-1-1")).unwrap();
        let core = graph.node_id(&DeviceName::new("core-1")).unwrap();
        !connected(graph, &h, tor, core)
    };

    // ---- without Statesman ----
    let without = {
        let clock = SimClock::new();
        let graph = DcnSpec::tiny("dc1").build(); // 2 Aggs per pod: AggA, AggB
        let mut cfg = SimConfig::ideal();
        cfg.faults.reboot_window_ms = 10 * 60_000;
        cfg.faults.command_latency_ms = 1_000;
        let net = SimNetwork::new(&graph, clock.clone(), cfg);
        let storage = StorageService::new([dc.clone()], clock.clone(), StorageConfig::default());
        let monitor = statesman_core::Monitor::new(net.clone(), storage.clone(), graph.clone());
        monitor.run_round().unwrap();
        // Upgrade reboots agg-1-2; mitigation powers agg-1-1 off. Both
        // written straight to the TS.
        storage
            .write(WriteRequest {
                pool: Pool::Target,
                rows: vec![
                    ts_row(
                        EntityName::device("dc1", "agg-1-2"),
                        Attribute::DeviceFirmwareVersion,
                        Value::text("7.0"),
                        "upgrade",
                    ),
                    ts_row(
                        EntityName::device("dc1", "agg-1-1"),
                        Attribute::DeviceAdminPower,
                        Value::power(false),
                        "mitigation",
                    ),
                ],
            })
            .unwrap();
        let updater = Updater::new(net.clone(), storage, graph.clone());
        updater.run_round().unwrap();
        net.step(SimDuration::from_mins(2));
        let p = partitioned(&net, &graph);
        notes.push(format!(
            "without: both Aggs of pod 1 taken down together → partitioned = {p}"
        ));
        if p {
            1.0
        } else {
            0.0
        }
    };

    // ---- with Statesman ----
    let with = {
        let clock = SimClock::new();
        let graph = DcnSpec::tiny("dc1").build();
        let mut cfg = SimConfig::ideal();
        cfg.faults.reboot_window_ms = 10 * 60_000;
        cfg.faults.command_latency_ms = 1_000;
        let net = SimNetwork::new(&graph, clock.clone(), cfg);
        let storage = StorageService::new([dc.clone()], clock.clone(), StorageConfig::default());
        let coord = Coordinator::new(
            &graph,
            net.clone(),
            storage.clone(),
            CoordinatorConfig::default(),
        );
        coord.tick_and_advance(SimDuration::from_mins(1)).unwrap();
        let upgrade = StatesmanClient::new("upgrade", storage.clone(), clock.clone());
        let mitigation = StatesmanClient::new("mitigation", storage, clock);
        upgrade
            .propose([(
                EntityName::device("dc1", "agg-1-2"),
                Attribute::DeviceFirmwareVersion,
                Value::text("7.0"),
            )])
            .unwrap();
        mitigation
            .propose([(
                EntityName::device("dc1", "agg-1-1"),
                Attribute::DeviceAdminPower,
                Value::power(false),
            )])
            .unwrap();
        let round = coord.tick_and_advance(SimDuration::from_mins(2)).unwrap();
        net.step(SimDuration::from_mins(2));
        let p = partitioned(&net, &graph);
        notes.push(format!(
            "with: checker accepted {} and rejected {} of the two proposals → partitioned = {p}",
            round.accepted(),
            round.rejected()
        ));
        if p {
            1.0
        } else {
            0.0
        }
    };

    MotivationOutcome {
        without_statesman: without,
        with_statesman: with,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_statesman_prevents_traffic_loss() {
        let o = run_fig1();
        assert!(
            o.without_statesman > 500.0,
            "unmediated conflict must lose traffic: {:?}",
            o.notes
        );
        assert!(
            o.with_statesman < 1.0,
            "mediated run must not lose traffic: {:?}",
            o.notes
        );
    }

    #[test]
    fn fig2_statesman_prevents_partition() {
        let o = run_fig2();
        assert_eq!(o.without_statesman, 1.0, "{:?}", o.notes);
        assert_eq!(o.with_statesman, 0.0, "{:?}", o.notes);
    }
}
