//! §8 claim: checker conflict-resolution + invariant-checking latency
//! stays under 10 s at the largest DC (394K state variables), and scales
//! roughly linearly with variable count.
//!
//! Measures one full checker pass (read OS/PS/TS, reconcile, merge with
//! live proposals, evaluate invariants, persist) at increasing fabric
//! sizes. The scenario setup (graph, storage seeding via a real monitor
//! round) happens outside the measured closure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use statesman_core::groups::ImpactGroup;
use statesman_core::{
    Checker, CheckerConfig, ConnectivityInvariant, MergePolicy, Monitor, StatesmanClient,
    TorPairCapacityInvariant,
};
use statesman_net::{SimClock, SimConfig, SimNetwork};
use statesman_storage::{ClusterConfig, StorageConfig, StorageService};
use statesman_topology::DcnSpec;
use statesman_types::{Attribute, DatacenterId, EntityName, Value};

struct Harness {
    checker: Checker,
    storage: StorageService,
    client: StatesmanClient,
    clock: SimClock,
    dc: DatacenterId,
    pods: Vec<u32>,
}

fn harness(target_vars: usize) -> Harness {
    let clock = SimClock::new();
    let spec = DcnSpec::sized_for_variables("dcX", target_vars);
    let graph = spec.build();
    let dc = DatacenterId::new("dcX");
    let net = SimNetwork::new(&graph, clock.clone(), SimConfig::ideal());
    let storage = StorageService::new(
        [dc.clone()],
        clock.clone(),
        StorageConfig {
            replicas_per_ring: 1,
            ring: ClusterConfig {
                replicas: 1,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    Monitor::new(net, storage.clone(), graph.clone())
        .run_round()
        .expect("seed OS");
    let mut checker = Checker::new(
        CheckerConfig {
            group: ImpactGroup::Datacenter(dc.clone()),
            policy: MergePolicy::PriorityLock,
        },
        graph.clone(),
    );
    checker.add_invariant(Box::new(ConnectivityInvariant::new(dc.clone())));
    checker.add_invariant(Box::new(TorPairCapacityInvariant::sampled(
        &graph,
        dc.clone(),
        0.5,
        0.99,
        Some(1),
        256,
        7,
    )));
    let client = StatesmanClient::new("switch-upgrade", storage.clone(), clock.clone());
    let pods = graph.pods_in(&dc);
    Harness {
        checker,
        storage,
        client,
        clock,
        dc,
        pods,
    }
}

fn bench_checker_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("checker_latency");
    group.sample_size(10);
    for target in [10_000usize, 50_000, 100_000, 394_000] {
        let h = harness(target);
        group.bench_with_input(BenchmarkId::from_parameter(target), &target, |b, _| {
            b.iter(|| {
                // Fresh proposals per iteration: two Aggs per pod.
                let mut proposals = Vec::new();
                for pod in &h.pods {
                    for a in 1..=2u32 {
                        proposals.push((
                            EntityName::device(h.dc.clone(), format!("agg-{pod}-{a}")),
                            Attribute::DeviceFirmwareVersion,
                            Value::text("7.0"),
                        ));
                    }
                }
                h.client.propose(proposals).expect("propose");
                let report = h
                    .checker
                    .run_pass(&h.storage, h.clock.now())
                    .expect("checker pass");
                assert!(report.proposals_seen > 0);
                // The §8 bound: every pass under 10 s.
                assert!(report.elapsed.as_secs_f64() < 10.0);
                report.variables_read
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_checker_latency);
criterion_main!(benches);
