//! Storage-layer benches reproducing two §6 design rationales:
//!
//! * `storage_partitioning` — per-DC Paxos rings vs one WAN-spanning
//!   global ring (§6.1: "WAN latencies will hurt the scalability and
//!   performance of Statesman"). Measured in *virtual* commit latency so
//!   host speed doesn't matter; asserted inside the bench.
//! * `freshness_modes` — up-to-date (leader) reads vs bounded-stale
//!   (cache) reads (§6.4: "we boost the read throughput"). Measured in
//!   host wall-clock throughput over the same data.

use criterion::{criterion_group, criterion_main, Criterion};
use statesman_net::SimClock;
use statesman_storage::{
    ClusterConfig, LogCommand, PaxosCluster, ReadRequest, StorageConfig, StorageService,
    WriteRequest,
};
use statesman_types::{
    AppId, Attribute, DatacenterId, EntityName, Freshness, NetworkState, Pool, SimTime, Value,
};

fn fw_row(dc: &str, dev: &str, at: SimTime) -> NetworkState {
    NetworkState::new(
        EntityName::device(dc, dev),
        Attribute::DeviceFirmwareVersion,
        Value::text("6.0"),
        at,
        AppId::monitor(),
    )
}

fn write_cmd(i: usize) -> LogCommand {
    LogCommand::WriteBatch {
        pool: Pool::Observed,
        rows: vec![fw_row("dc1", &format!("dev-{i}"), SimTime::ZERO)],
    }
}

fn bench_storage_partitioning(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage_partitioning");
    group.sample_size(10);

    // The quantitative §6.1 comparison in virtual time, asserted once.
    let mut intra = PaxosCluster::new(ClusterConfig::intra_dc(5));
    let mut wan = PaxosCluster::new(ClusterConfig::global_wan(5));
    for i in 0..50 {
        intra.submit(write_cmd(i)).unwrap();
        wan.submit(write_cmd(i)).unwrap();
    }
    let speedup = wan.mean_commit_latency() / intra.mean_commit_latency();
    assert!(
        speedup > 20.0,
        "per-DC rings must commit far faster than a WAN ring (got {speedup:.1}x)"
    );
    eprintln!(
        "virtual commit latency: intra-DC ring {:.0}us, global WAN ring {:.0}us ({speedup:.1}x)",
        intra.mean_commit_latency(),
        wan.mean_commit_latency()
    );

    // Host-time cost of driving each ring (protocol work dominates).
    group.bench_function("intra_dc_ring_commit", |b| {
        let mut ring = PaxosCluster::new(ClusterConfig::intra_dc(7));
        let mut i = 0usize;
        b.iter(|| {
            ring.submit(write_cmd(i)).unwrap();
            i += 1;
        });
    });
    group.bench_function("global_wan_ring_commit", |b| {
        let mut ring = PaxosCluster::new(ClusterConfig::global_wan(7));
        let mut i = 0usize;
        b.iter(|| {
            ring.submit(write_cmd(i)).unwrap();
            i += 1;
        });
    });
    group.finish();
}

fn bench_freshness_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("freshness_modes");
    let clock = SimClock::new();
    let dc = DatacenterId::new("dc1");
    let storage = StorageService::new([dc.clone()], clock.clone(), StorageConfig::default());
    // A realistically sized OS pool (~20K rows).
    let rows: Vec<NetworkState> = (0..20_000)
        .map(|i| fw_row("dc1", &format!("dev-{i}"), clock.now()))
        .collect();
    for chunk in rows.chunks(5_000) {
        storage
            .write(WriteRequest {
                pool: Pool::Observed,
                rows: chunk.to_vec(),
            })
            .unwrap();
    }

    group.bench_function("up_to_date_read", |b| {
        b.iter(|| {
            let rows = storage
                .read(ReadRequest {
                    datacenter: dc.clone(),
                    pool: Pool::Observed,
                    freshness: Freshness::UpToDate,
                    entity: None,
                    attribute: None,
                })
                .unwrap();
            assert_eq!(rows.len(), 20_000);
        });
    });
    group.bench_function("bounded_stale_read", |b| {
        b.iter(|| {
            let rows = storage
                .read(ReadRequest {
                    datacenter: dc.clone(),
                    pool: Pool::Observed,
                    freshness: Freshness::BoundedStale,
                    entity: None,
                    attribute: None,
                })
                .unwrap();
            assert_eq!(rows.len(), 20_000);
        });
    });
    group.finish();

    let (hits, leader_reads) = storage.read_stats();
    eprintln!(
        "cache hits {hits}, leader reads {leader_reads} — bounded-stale reads served from cache"
    );
}

fn bench_freshness_concurrency(c: &mut Criterion) {
    // The architectural point of §6.4: bounded-stale reads are served from
    // a cache that scales out (shared read lock + Arc snapshots), while
    // up-to-date reads serialize on the partition leader. Measure total
    // wall time for 8 threads × 50 reads each.
    let mut group = c.benchmark_group("freshness_concurrency");
    group.sample_size(10);
    let clock = SimClock::new();
    let dc = DatacenterId::new("dc1");
    let storage = StorageService::new([dc.clone()], clock.clone(), StorageConfig::default());
    let rows: Vec<NetworkState> = (0..20_000)
        .map(|i| fw_row("dc1", &format!("dev-{i}"), clock.now()))
        .collect();
    for chunk in rows.chunks(5_000) {
        storage
            .write(WriteRequest {
                pool: Pool::Observed,
                rows: chunk.to_vec(),
            })
            .unwrap();
    }

    let run = |storage: &StorageService, dc: &DatacenterId, freshness: Freshness| {
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let storage = storage.clone();
                let dc = dc.clone();
                scope.spawn(move || {
                    for _ in 0..50 {
                        let rows = storage
                            .read(ReadRequest {
                                datacenter: dc.clone(),
                                pool: Pool::Observed,
                                freshness,
                                entity: None,
                                attribute: None,
                            })
                            .unwrap();
                        assert_eq!(rows.len(), 20_000);
                    }
                });
            }
        });
    };

    group.bench_function("8_threads_up_to_date", |b| {
        b.iter(|| run(&storage, &dc, Freshness::UpToDate));
    });
    group.bench_function("8_threads_bounded_stale", |b| {
        b.iter(|| run(&storage, &dc, Freshness::BoundedStale));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_storage_partitioning,
    bench_freshness_modes,
    bench_freshness_concurrency
);
criterion_main!(benches);
