//! The delta state plane at §8 scale: quiescent and low-churn coordinator
//! round cost at ~394K state variables, delta path vs full-scan path.
//!
//! The claim under test: once the OS is seeded, a quiescent round through
//! the delta plane (monitor suppresses value-identical rows, checker and
//! updater advance cached views via `read_since`) costs a small fraction
//! of the snapshot plane's full rewrite + full re-read — the headroom
//! that lets the control loop keep its minutes-scale cadence as the
//! variable count grows.
//!
//! `STATESMAN_BENCH_VARS` overrides the fabric size (CI smoke runs a
//! reduced size; the full 394K is the default, matching the paper's
//! largest DCN).

use criterion::{criterion_group, criterion_main, Criterion};
use statesman_core::{Coordinator, CoordinatorConfig};
use statesman_net::{SimClock, SimConfig, SimNetwork};
use statesman_storage::{ClusterConfig, StorageConfig, StorageService};
use statesman_topology::DcnSpec;
use statesman_types::{DatacenterId, SimDuration};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A counting wrapper around the system allocator, so each round shape can
/// report (and bound) its heap allocations per tick alongside its wall
/// time. The interned state plane is required to allocate strictly less
/// per tick than the string-keyed plane it replaced; the recorded
/// pre-refactor numbers live in EXPERIMENTS.md.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Heap allocations performed by `f`, as seen by the global counter.
fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

fn target_vars() -> usize {
    std::env::var("STATESMAN_BENCH_VARS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(394_000)
}

/// Build a coordinator over a fabric sized for `vars` variables, with the
/// state plane in delta or snapshot mode, and seed the OS with one round.
/// Invariants are disabled so the measurement isolates state-plane cost
/// (collection, persistence, reads) from invariant compute, which
/// `checker_latency` measures separately.
fn seeded_coordinator(vars: usize, delta: bool) -> (Coordinator, SimClock) {
    let clock = SimClock::new();
    let graph = DcnSpec::sized_for_variables("dcX", vars).build();
    let net = SimNetwork::new(&graph, clock.clone(), SimConfig::ideal());
    let storage = StorageService::new(
        [DatacenterId::new("dcX")],
        clock.clone(),
        StorageConfig {
            replicas_per_ring: 1,
            ring: ClusterConfig {
                replicas: 1,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let coord = Coordinator::new(
        &graph,
        net,
        storage,
        CoordinatorConfig {
            connectivity_invariant: false,
            capacity_invariant: None,
            wan_invariant: None,
            delta_state_plane: delta,
            // Keep every measured round on the steady-state path: a
            // periodic forced resync inside the sample window would mix
            // full-write rounds into the delta measurement.
            monitor_resync_every: Some(u64::MAX),
            ..Default::default()
        },
    );
    coord.tick().expect("seed round");
    (coord, clock)
}

/// Quiescent rounds: the simulated clock does not advance between ticks,
/// so every poll returns exactly what the last round wrote. The delta
/// plane suppresses every write and serves empty deltas; the snapshot
/// plane rewrites and re-reads the whole pool anyway.
fn bench_quiescent(c: &mut Criterion) {
    let vars = target_vars();
    let mut group = c.benchmark_group("delta_pipeline_quiescent");
    group.sample_size(10);
    for (name, delta) in [("delta_round", true), ("full_round", false)] {
        let (coord, _clock) = seeded_coordinator(vars, delta);
        group.bench_function(name, |b| {
            b.iter(|| {
                let r = coord.tick().unwrap();
                if delta {
                    assert_eq!(r.rows_written, 0, "quiescent delta round wrote rows");
                }
                r
            });
        });
        let per_tick = allocs_during(|| {
            coord.tick().unwrap();
        });
        println!("delta_pipeline_quiescent/{name} allocs/tick: {per_tick}");
    }
    group.finish();
}

/// Low-churn rounds: one minute of simulated time passes per round, so
/// live telemetry (cpu/mem utilization) changes while topology and
/// configuration stay put — the steady-state shape of a healthy fabric.
fn bench_low_churn(c: &mut Criterion) {
    let vars = target_vars();
    let mut group = c.benchmark_group("delta_pipeline_low_churn");
    group.sample_size(10);
    for (name, delta) in [("delta_round", true), ("full_round", false)] {
        let (coord, _clock) = seeded_coordinator(vars, delta);
        group.bench_function(name, |b| {
            b.iter(|| coord.tick_and_advance(SimDuration::from_mins(1)).unwrap());
        });
        let per_tick = allocs_during(|| {
            coord.tick_and_advance(SimDuration::from_mins(1)).unwrap();
        });
        println!("delta_pipeline_low_churn/{name} allocs/tick: {per_tick}");
    }
    group.finish();
}

criterion_group!(benches, bench_quiescent, bench_low_churn);
criterion_main!(benches);
