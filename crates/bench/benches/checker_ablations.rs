//! Checker-design ablations called out in DESIGN.md:
//!
//! * `merge_policies` — last-writer-wins vs priority-lock conflict
//!   resolution under a stream of colliding proposals from N apps;
//! * `impact_groups` — one checker scoped per DC (the paper's design) vs
//!   one monolithic checker over a multi-DC deployment;
//! * `invariant_incremental` — pod-scoped incremental capacity evaluation
//!   vs full recomputation of all sampled ToR pairs.

use criterion::{criterion_group, criterion_main, Criterion};
use statesman_core::groups::ImpactGroup;
use statesman_core::{
    Checker, CheckerConfig, MergePolicy, Monitor, StatesmanClient, TorPairCapacityInvariant,
};
use statesman_net::{SimClock, SimConfig, SimNetwork};
use statesman_storage::{StorageConfig, StorageService};
use statesman_topology::{capacity, DcnSpec, DeploymentSpec, HealthView, WanSpec};
use statesman_types::{Attribute, DatacenterId, DeviceName, EntityName, Value};
use std::collections::HashSet;

fn bench_merge_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_policies");
    group.sample_size(20);
    for (name, policy) in [
        ("last_writer_wins", MergePolicy::LastWriterWins),
        ("priority_lock", MergePolicy::PriorityLock),
    ] {
        group.bench_function(name, |b| {
            let clock = SimClock::new();
            let dc = DatacenterId::new("dc1");
            let graph = DcnSpec::fig7("dc1").build();
            let net = SimNetwork::new(&graph, clock.clone(), SimConfig::ideal());
            let storage =
                StorageService::new([dc.clone()], clock.clone(), StorageConfig::default());
            Monitor::new(net, storage.clone(), graph.clone())
                .run_round()
                .unwrap();
            let checker = Checker::new(
                CheckerConfig {
                    group: ImpactGroup::Datacenter(dc.clone()),
                    policy,
                },
                graph.clone(),
            );
            // Four contending apps, all writing the same 10 keys.
            let apps: Vec<StatesmanClient> = (0..4)
                .map(|i| StatesmanClient::new(format!("app-{i}"), storage.clone(), clock.clone()))
                .collect();
            b.iter(|| {
                for (i, app) in apps.iter().enumerate() {
                    let proposals: Vec<_> = (1..=10u32)
                        .map(|p| {
                            (
                                EntityName::device(dc.clone(), format!("agg-{p}-1")),
                                Attribute::DeviceBootImage,
                                Value::text(format!("img-{i}")),
                            )
                        })
                        .collect();
                    app.propose(proposals).unwrap();
                }
                let report = checker.run_pass(&storage, clock.now()).unwrap();
                assert_eq!(report.proposals_seen, 40);
            });
        });
    }
    group.finish();
}

fn bench_impact_groups(c: &mut Criterion) {
    // §5's scaling rationale: with one impact group per DC, the work one
    // checker instance must do stays constant as the fleet grows (and
    // instances are independent, so they distribute); a single global
    // checker's pass grows with the whole fleet. Measured here by varying
    // the number of datacenters and timing (a) one DC-group pass and (b)
    // one global pass.
    let mut group = c.benchmark_group("impact_groups");
    group.sample_size(10);

    for n_dcs in [2usize, 4, 8] {
        let clock = SimClock::new();
        let dep = DeploymentSpec {
            dcns: (1..=n_dcs)
                .map(|i| DcnSpec::tiny(format!("dc{i}")))
                .collect(),
            wan: Some(WanSpec {
                dc_names: (1..=n_dcs).map(|i| format!("dc{i}")).collect(),
                border_routers_per_dc: 2,
                wan_link_mbps: 100_000.0,
            }),
            br_core_mbps: 100_000.0,
        };
        let graph = dep.build();
        let net = SimNetwork::new(&graph, clock.clone(), SimConfig::ideal());
        let storage = StorageService::new(
            (1..=n_dcs).map(|i| DatacenterId::new(format!("dc{i}"))),
            clock.clone(),
            StorageConfig::default(),
        );
        Monitor::new(net, storage.clone(), graph.clone())
            .run_round()
            .unwrap();

        let dc1_checker = Checker::new(
            CheckerConfig {
                group: ImpactGroup::Datacenter(DatacenterId::new("dc1")),
                policy: MergePolicy::PriorityLock,
            },
            graph.clone(),
        );
        group.bench_function(format!("one_dc_group_pass/{n_dcs}_dcs"), |b| {
            b.iter(|| dc1_checker.run_pass(&storage, clock.now()).unwrap());
        });

        let global_checker = Checker::new(
            CheckerConfig {
                group: ImpactGroup::Global,
                policy: MergePolicy::PriorityLock,
            },
            graph.clone(),
        );
        group.bench_function(format!("global_pass/{n_dcs}_dcs"), |b| {
            b.iter(|| global_checker.run_pass(&storage, clock.now()).unwrap());
        });
    }
    group.finish();
}

fn bench_invariant_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("invariant_incremental");
    group.sample_size(20);
    let graph = DcnSpec::fig7("dc1").build();
    let dc = DatacenterId::new("dc1");
    let pairs = capacity::select_tor_pairs(&graph, &dc, Some(1));
    let baselines = capacity::baselines_for(&graph, &pairs);

    let mut health = HealthView::all_up();
    health.set_device_down(DeviceName::new("agg-3-1"));

    group.bench_function("full_evaluation", |b| {
        b.iter(|| {
            let r = capacity::evaluate_with_baselines(&graph, &health, &pairs, &baselines);
            assert_eq!(r.pairs.len(), 90);
        });
    });

    group.bench_function("incremental_pod_scoped", |b| {
        let base =
            capacity::evaluate_with_baselines(&graph, &HealthView::all_up(), &pairs, &baselines);
        let mut touched = HashSet::new();
        touched.insert((dc.clone(), 3u32));
        b.iter(|| {
            let r = base.evaluate_incremental(&graph, &health, &touched);
            assert_eq!(r.pairs.len(), 90);
        });
    });

    // Cross-check correctness once: incremental == full.
    let base = capacity::evaluate_with_baselines(&graph, &HealthView::all_up(), &pairs, &baselines);
    let mut touched = HashSet::new();
    touched.insert((dc.clone(), 3u32));
    let inc = base.evaluate_incremental(&graph, &health, &touched);
    let full = capacity::evaluate_with_baselines(&graph, &health, &pairs, &baselines);
    for (a, b) in inc.pairs.iter().zip(full.pairs.iter()) {
        assert!((a.current_mbps - b.current_mbps).abs() < 1.0);
    }

    // Verify the TorPairCapacityInvariant wrapper also works both ways.
    let _inv = TorPairCapacityInvariant::paper_default(&graph, dc, Some(1));
    group.finish();
}

criterion_group!(
    benches,
    bench_merge_policies,
    bench_impact_groups,
    bench_invariant_incremental
);
criterion_main!(benches);
