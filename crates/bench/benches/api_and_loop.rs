//! * `table3_api_throughput` — the HTTP read API (Table 3) over real TCP,
//!   up-to-date vs bounded-stale freshness (§6.4's throughput rationale
//!   measured end-to-end through the wire);
//! * `loop_breakdown` — one full monitor→checker→updater round on the
//!   Fig-7 fabric (host compute cost; the modeled I/O split is asserted
//!   in `latency_breakdown`).

use criterion::{criterion_group, criterion_main, Criterion};
use statesman_core::{Coordinator, CoordinatorConfig};
use statesman_httpapi::{ApiClient, ApiServer};
use statesman_net::{SimClock, SimConfig, SimNetwork};
use statesman_storage::{StorageConfig, StorageService, WriteRequest};
use statesman_topology::DcnSpec;
use statesman_types::{
    AppId, Attribute, DatacenterId, EntityName, Freshness, NetworkState, Pool, Value,
};

fn bench_api_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_api_throughput");
    group.sample_size(30);

    let clock = SimClock::new();
    let dc = DatacenterId::new("dc1");
    let storage = StorageService::new([dc.clone()], clock.clone(), StorageConfig::default());
    let rows: Vec<NetworkState> = (0..2_000)
        .map(|i| {
            NetworkState::new(
                EntityName::device("dc1", format!("dev-{i}")),
                Attribute::DeviceFirmwareVersion,
                Value::text("6.0"),
                clock.now(),
                AppId::monitor(),
            )
        })
        .collect();
    storage
        .write(WriteRequest {
            pool: Pool::Observed,
            rows,
        })
        .unwrap();
    let server = ApiServer::start(storage).unwrap();
    let client = ApiClient::new(server.addr());

    for (name, freshness) in [
        ("http_read_up_to_date", Freshness::UpToDate),
        ("http_read_bounded_stale", Freshness::BoundedStale),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let rows = client
                    .read(&dc, &Pool::Observed, freshness, None, None)
                    .unwrap();
                assert_eq!(rows.len(), 2_000);
            });
        });
    }
    group.bench_function("http_write_batch_100", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let rows: Vec<NetworkState> = (0..100)
                .map(|j| {
                    NetworkState::new(
                        EntityName::device("dc1", format!("w-{i}-{j}")),
                        Attribute::DeviceBootImage,
                        Value::text("img"),
                        clock.now(),
                        AppId::monitor(),
                    )
                })
                .collect();
            i += 1;
            client.write(&Pool::Observed, &rows).unwrap();
        });
    });
    group.finish();
    drop(server);
}

fn bench_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("loop_breakdown");
    group.sample_size(10);
    let clock = SimClock::new();
    let graph = DcnSpec::fig7("dc1").build();
    let net = SimNetwork::new(&graph, clock.clone(), SimConfig::ideal());
    let storage = StorageService::new(
        [DatacenterId::new("dc1")],
        clock.clone(),
        StorageConfig::default(),
    );
    let coord = Coordinator::new(&graph, net, storage, CoordinatorConfig::default());
    group.bench_function("full_round_fig7", |b| {
        b.iter(|| {
            coord
                .tick_and_advance(statesman_types::SimDuration::from_mins(5))
                .unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_api_throughput, bench_loop);
criterion_main!(benches);
