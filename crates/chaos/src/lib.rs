//! Composable chaos harness for the Statesman control loop.
//!
//! A [`ChaosPlan`] composes faults across every layer the service touches —
//! device crashes and management-plane outages (network layer), storage
//! partition outages (storage layer), probabilistic command failures and
//! link flapping (device layer), and an application blackout window
//! (client layer) — all derived deterministically from a single seed.
//!
//! [`ChaosScenario`] drives a full Statesman instance (monitor → checkers →
//! updater via [`Coordinator`]) against that plan while a management
//! application keeps proposing changes, and checks the two properties the
//! paper's design is supposed to buy:
//!
//! - **Safety**: at every sampled instant of *ground truth* (not the
//!   possibly-stale observed state), every pod retains at least one
//!   operational aggregation switch. The checker may only ever take down
//!   capacity the invariants allow, no matter which faults fire or how
//!   stale the OS pools get.
//! - **Liveness**: once the last fault heals, the network converges to the
//!   application's target state within a bounded number of rounds, and the
//!   updater goes quiescent (`diffs == 0`).
//!
//! The scenario deliberately splits intent from chaos: the app upgrades
//! firmware on the pod-1 aggs (which chaos never crashes, so any pod-1
//! capacity loss beyond one agg is the checker's fault) and retargets the
//! boot image on `agg-2-1` (which chaos *does* crash, exercising the
//! quarantine-rejection path end to end).

use rand::{rngs::StdRng, Rng, SeedableRng};
use statesman_core::{Coordinator, CoordinatorConfig, MapView, StatesmanClient};
use statesman_httpapi::{ApiClient, ApiServer, ServerConfig};
use statesman_net::{FaultPlan, SimClock, SimConfig, SimNetwork};
use statesman_obs::Obs;
use statesman_storage::{
    DurabilityMode, HashChainChecker, RecoverySafetyChecker, StorageConfig, StorageService,
    WalCorruption,
};
use statesman_topology::DcnSpec;
use statesman_types::{
    Attribute, DatacenterId, DeviceName, EntityName, Freshness, RetryPolicy, SimDuration, SimTime,
    Value, Version,
};

/// A kill -9-style crash of one storage replica: process state is
/// dropped on the floor, durable WAL/snapshot files survive, and the
/// replica restarts through the recovery path at `at + down` — after
/// the scheduled `corruption` (if any) has been injected into its
/// durable files, which recovery must repair (torn tail) or refuse
/// (mid-log bit flip) without losing acknowledged writes.
#[derive(Debug, Clone)]
pub struct ReplicaKill {
    /// Which replica of the partition's ring to kill.
    pub replica: u8,
    /// When the kill fires (absolute simulated time).
    pub at: SimTime,
    /// How long the replica stays down before recovery runs.
    pub down: SimDuration,
    /// Durable-file corruption injected while the replica is down.
    pub corruption: WalCorruption,
}

/// A seeded composition of faults across the network, storage, and
/// application layers. All windows are absolute simulated times.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    /// Seed for the simulator RNG (command failure rolls, link flaps).
    pub seed: u64,
    /// Hard crashes: `(device, at, down)` — restored at `at + down`.
    pub device_outages: Vec<(DeviceName, SimTime, SimDuration)>,
    /// Management-plane-only outages: the device keeps forwarding but
    /// polls fail and commands time out.
    pub mgmt_outages: Vec<(DeviceName, SimTime, SimDuration)>,
    /// Storage partition outages: `(dc, at, down)` — the partition's reads
    /// and writes fail inside the window.
    pub partition_outages: Vec<(DatacenterId, SimTime, SimDuration)>,
    /// Application blackout: the proposing app is down in this window and
    /// neither proposes nor drains receipts (crash/restart).
    pub app_blackout: Option<(SimTime, SimDuration)>,
    /// Storage replica kill -9 + restart events (durable-storage chaos).
    pub replica_kills: Vec<ReplicaKill>,
    /// Probability each device command is rejected outright.
    pub command_failure_prob: f64,
    /// Probability each device command times out.
    pub command_timeout_prob: f64,
    /// Per-minute probability each link starts flapping.
    pub link_flap_prob_per_min: f64,
    /// How long a flap keeps the link down.
    pub link_flap_duration: SimDuration,
}

impl ChaosPlan {
    /// A fault-free plan: the scenario reduces to a plain convergence run.
    pub fn quiet(seed: u64) -> Self {
        ChaosPlan {
            seed,
            device_outages: Vec::new(),
            mgmt_outages: Vec::new(),
            partition_outages: Vec::new(),
            app_blackout: None,
            replica_kills: Vec::new(),
            command_failure_prob: 0.0,
            command_timeout_prob: 0.0,
            link_flap_prob_per_min: 0.0,
            link_flap_duration: SimDuration::ZERO,
        }
    }

    /// The standard multi-layer plan, derived deterministically from
    /// `seed`: crash `agg-2-1`, black out `tor-2-1`'s management plane,
    /// take the `dc1` storage partition down, restart the app, and run
    /// lossy/flappy device interactions throughout.
    pub fn standard(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A05);
        let minute = |m: u64| SimTime::from_secs(60 * m);
        let crash_at = minute(rng.gen_range(4..7u64));
        let crash_down = SimDuration::from_mins(rng.gen_range(6..10u64));
        let mgmt_at = minute(rng.gen_range(2..5u64));
        let part_at = minute(rng.gen_range(8..11u64));
        let app_at = minute(rng.gen_range(3..6u64));
        ChaosPlan {
            seed,
            device_outages: vec![(DeviceName::new("agg-2-1"), crash_at, crash_down)],
            mgmt_outages: vec![(
                DeviceName::new("tor-2-1"),
                mgmt_at,
                SimDuration::from_mins(3),
            )],
            partition_outages: vec![(DatacenterId::new("dc1"), part_at, SimDuration::from_mins(2))],
            app_blackout: Some((app_at, SimDuration::from_mins(3))),
            replica_kills: Vec::new(),
            command_failure_prob: 0.1,
            command_timeout_prob: 0.1,
            link_flap_prob_per_min: 0.01,
            link_flap_duration: SimDuration::from_secs(45),
        }
    }

    /// The upgrade-race plan: the standard multi-layer composition with
    /// link flapping turned up hard (4%/minute, 90-second outages), so
    /// the rolling firmware reboots race real link failures. This is the
    /// scenario the updater's in-flight checks exist for: the checker
    /// validated each upgrade against an observed state that flaps keep
    /// invalidating between acceptance and execution.
    pub fn upgrade_race(seed: u64) -> Self {
        let mut plan = ChaosPlan::standard(seed);
        plan.link_flap_prob_per_min = 0.04;
        plan.link_flap_duration = SimDuration::from_secs(90);
        plan
    }

    /// Install the network-layer slice of this plan into a [`FaultPlan`].
    /// (Partition outages and the app blackout live above the simulator
    /// and are driven by [`ChaosScenario::run`].)
    pub fn install(&self, mut faults: FaultPlan) -> FaultPlan {
        faults.command_failure_prob = self.command_failure_prob;
        faults.command_timeout_prob = self.command_timeout_prob;
        if self.link_flap_prob_per_min > 0.0 {
            faults =
                faults.with_link_flapping(self.link_flap_prob_per_min, self.link_flap_duration);
        }
        for (d, at, down) in &self.device_outages {
            faults = faults.with_device_outage(d, *at, *down);
        }
        for (d, at, down) in &self.mgmt_outages {
            faults = faults.with_mgmt_outage(d, *at, *down);
        }
        faults
    }

    /// The instant the last scheduled (non-probabilistic) fault heals.
    pub fn last_heal(&self) -> SimTime {
        let mut heal = SimTime::ZERO;
        for (_, at, down) in &self.device_outages {
            heal = heal.max(*at + *down);
        }
        for (_, at, down) in &self.mgmt_outages {
            heal = heal.max(*at + *down);
        }
        for (_, at, down) in &self.partition_outages {
            heal = heal.max(*at + *down);
        }
        if let Some((at, down)) = self.app_blackout {
            heal = heal.max(at + down);
        }
        for k in &self.replica_kills {
            heal = heal.max(k.at + k.down);
        }
        heal
    }
}

/// What a scenario run observed. `PartialEq` so determinism can be
/// asserted by comparing two whole runs.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Rounds actually driven.
    pub rounds_run: usize,
    /// First round index at which the target state was realized on the
    /// ground truth AND the updater was quiescent; `None` = never.
    pub converged_at: Option<usize>,
    /// Ground-truth invariant violations, one message per (round, pod)
    /// where a pod lost all aggregation switches. Must stay empty.
    pub safety_violations: Vec<String>,
    /// Rounds that ran in degraded mode (storage partition down).
    pub degraded_rounds: usize,
    /// Peak simultaneous quarantined devices seen in any round.
    pub max_quarantined: usize,
    /// Proposal rows rejected because they touched a quarantined device.
    pub quarantine_rejections: usize,
    /// Device commands that failed (after any in-round retries).
    pub commands_failed: usize,
    /// In-round updater retries performed.
    pub updater_retries: usize,
    /// Circuit breakers opened.
    pub breakers_opened: usize,
    /// Storage-layer submit retries (cumulative at end of run).
    pub storage_retries: u64,
    /// Coordinator ticks that returned an error (must stay 0: faults are
    /// supposed to degrade rounds, not abort them).
    pub tick_errors: usize,
    /// Storage replicas kill -9'd by the plan.
    pub replicas_killed: usize,
    /// Replicas restarted through the recovery path.
    pub recoveries_completed: usize,
    /// Torn tail records truncated and repaired across all recoveries.
    pub recovery_truncated_records: u64,
    /// Recoveries that refused a corrupted log and restarted from the
    /// snapshot alone (rejoining via leader catch-up).
    pub recovery_refusals: usize,
    /// Recovery-safety violations: a restarted replica came back below
    /// its highest observed committed decree. Must stay empty.
    pub recovery_violations: Vec<String>,
    /// Hash-chain violations found by the continuous per-round store
    /// verification. Must stay empty (injected corruption is only ever
    /// present on a killed replica, whose window is excluded).
    pub chain_violations: Vec<String>,
    /// Partition watermark regressions across a kill + recovery: the
    /// post-recovery watermark fell below the pre-kill one, i.e. an
    /// acknowledged write was lost. Must stay empty.
    pub watermark_regressions: Vec<String>,
    /// Update-plan steps synthesized across the run (0 with planning off).
    pub plan_steps: usize,
    /// Peak single-round plan width (available update parallelism).
    pub plan_max_width: usize,
    /// Steps withheld by an in-flight invariant check across the run.
    pub plan_inflight_rejections: usize,
    /// Steps rolled back after every rendered command failed.
    pub plan_rollbacks: usize,
}

/// What the HTTP-layer stress rig observed during a
/// [`ChaosScenario::run_with_api_stress`] run: slow-loris connections,
/// connection churn, and overload bursts hammer an [`ApiServer`] fronting
/// the scenario's storage while the control loop runs. The stress
/// traffic is read-only (health probes and half-sent requests), so the
/// [`ScenarioOutcome`] must stay bit-identical to an unstressed run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ApiStressOutcome {
    /// Health probes answered 200 during the stress (liveness under load).
    pub health_ok: usize,
    /// Requests shed 429 with a `retry-after` header (admission control
    /// answering instead of the OS accept backlog silently dropping).
    pub sheds: usize,
    /// 429 sheds missing the `retry-after` header. Must stay 0.
    pub sheds_missing_retry_after: usize,
    /// TCP connects or mid-request socket failures. Must stay 0: overload
    /// is signalled with responses, not resets.
    pub connect_failures: usize,
    /// Connections opened and immediately dropped by the churn thread.
    pub churned: usize,
    /// Slow-loris connections opened (partial request head, then stall).
    pub loris_conns: usize,
    /// Slow-loris connections the server answered `408` and closed —
    /// the reactor reclaimed them without pinning any worker.
    pub loris_answered_408: usize,
    /// The server still answered a health probe after all stress threads
    /// were joined (the front end survived).
    pub final_health_ok: bool,
}

/// Shared tallies the attack threads bump while the control loop runs.
#[derive(Default)]
struct StressCounters {
    health_ok: std::sync::atomic::AtomicUsize,
    sheds: std::sync::atomic::AtomicUsize,
    sheds_missing_retry_after: std::sync::atomic::AtomicUsize,
    connect_failures: std::sync::atomic::AtomicUsize,
    churned: std::sync::atomic::AtomicUsize,
    loris_conns: std::sync::atomic::AtomicUsize,
    loris_answered_408: std::sync::atomic::AtomicUsize,
}

/// The live half of the stress rig: a deliberately tight [`ApiServer`]
/// over the scenario's storage, plus the three attack threads hammering
/// it — slow-loris, connection churn, and overload bursts.
struct StressRig {
    server: ApiServer,
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    counters: std::sync::Arc<StressCounters>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl StressRig {
    /// Start the stressed server (2 workers, 8-deep queue, 16-connection
    /// limit, 150 ms idle timeout — tight enough that the attacks
    /// actually hit every admission edge) and launch the attack threads.
    fn start(storage: StorageService) -> StressRig {
        use std::io::{Read, Write};
        use std::net::TcpStream;
        use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
        use std::sync::Arc;
        use std::time::Duration;

        let server = ApiServer::start_with_config(
            storage,
            ServerConfig {
                workers: 2,
                queue_depth: 8,
                max_connections: 16,
                idle_timeout: Duration::from_millis(150),
                retry_after: Duration::from_millis(200),
                ..ServerConfig::default()
            },
            None,
        )
        .expect("start stress api server");
        let addr = server.addr();
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(StressCounters::default());
        let mut threads = Vec::new();

        // Slow-loris: half-sent request heads that stall past the idle
        // timeout. The reactor must answer each with 408 and reclaim the
        // socket — no worker ever sees these. One pass: connect while
        // slots are still free (the overload thread waits 100 ms), stall,
        // then read the verdicts.
        {
            let c = counters.clone();
            threads.push(std::thread::spawn(move || {
                let mut conns = Vec::new();
                for _ in 0..8 {
                    match TcpStream::connect(addr) {
                        Ok(mut s) => {
                            if s.write_all(b"GET /v1/health HTT").is_ok() {
                                c.loris_conns.fetch_add(1, Relaxed);
                                conns.push(s);
                            }
                        }
                        Err(_) => {
                            c.connect_failures.fetch_add(1, Relaxed);
                        }
                    }
                }
                std::thread::sleep(Duration::from_millis(400));
                for mut s in conns {
                    let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
                    let mut buf = Vec::new();
                    let _ = s.read_to_end(&mut buf);
                    if buf.starts_with(b"HTTP/1.1 408") {
                        c.loris_answered_408.fetch_add(1, Relaxed);
                    }
                }
            }));
        }

        // Connection churn: connect and drop as fast as possible; the
        // reactor sees EOF and reclaims each slot.
        {
            let c = counters.clone();
            let stop = stop.clone();
            threads.push(std::thread::spawn(move || {
                while !stop.load(Relaxed) {
                    match TcpStream::connect(addr) {
                        Ok(s) => {
                            drop(s);
                            c.churned.fetch_add(1, Relaxed);
                        }
                        Err(_) => {
                            c.connect_failures.fetch_add(1, Relaxed);
                        }
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
            }));
        }

        // Overload bursts: 32 simultaneous clients against a 16-connection
        // limit. Every client must get a real response — 200, or 429
        // carrying retry-after — never a reset. The initial sleep leaves
        // the first free slots to the loris so its 408s are deterministic.
        {
            let c = counters.clone();
            let stop = stop.clone();
            threads.push(std::thread::spawn(move || loop {
                std::thread::sleep(Duration::from_millis(if c.health_ok.load(Relaxed) == 0 {
                    100
                } else {
                    50
                }));
                std::thread::scope(|scope| {
                    for _ in 0..32 {
                        scope.spawn(|| {
                            let Ok(mut s) = TcpStream::connect(addr) else {
                                c.connect_failures.fetch_add(1, Relaxed);
                                return;
                            };
                            let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
                            let req =
                                b"GET /v1/health HTTP/1.1\r\nhost: chaos\r\nconnection: close\r\n\r\n";
                            if s.write_all(req).is_err() {
                                c.connect_failures.fetch_add(1, Relaxed);
                                return;
                            }
                            let mut buf = Vec::new();
                            if s.read_to_end(&mut buf).is_err() || buf.is_empty() {
                                c.connect_failures.fetch_add(1, Relaxed);
                                return;
                            }
                            if buf.starts_with(b"HTTP/1.1 200") {
                                c.health_ok.fetch_add(1, Relaxed);
                            } else if buf.starts_with(b"HTTP/1.1 429") {
                                c.sheds.fetch_add(1, Relaxed);
                                let head = String::from_utf8_lossy(&buf).to_lowercase();
                                if !head.contains("\r\nretry-after:") {
                                    c.sheds_missing_retry_after.fetch_add(1, Relaxed);
                                }
                            }
                        });
                    }
                });
                if stop.load(Relaxed) {
                    break;
                }
            }));
        }

        StressRig {
            server,
            stop,
            counters,
            threads,
        }
    }

    /// Stop the attacks, join every thread, probe the survivor, and fold
    /// the counters into an [`ApiStressOutcome`].
    fn finish(self) -> ApiStressOutcome {
        use std::sync::atomic::Ordering::Relaxed;
        self.stop.store(true, Relaxed);
        for t in self.threads {
            let _ = t.join();
        }
        let final_health_ok = ApiClient::new(self.server.addr())
            .raw_request("GET", "/v1/health", &[])
            .map(|r| r.status == 200)
            .unwrap_or(false);
        let c = &self.counters;
        ApiStressOutcome {
            health_ok: c.health_ok.load(Relaxed),
            sheds: c.sheds.load(Relaxed),
            sheds_missing_retry_after: c.sheds_missing_retry_after.load(Relaxed),
            connect_failures: c.connect_failures.load(Relaxed),
            churned: c.churned.load(Relaxed),
            loris_conns: c.loris_conns.load(Relaxed),
            loris_answered_408: c.loris_answered_408.load(Relaxed),
            final_health_ok,
        }
    }
}

/// What the out-of-process changefeed consumer observed during a
/// [`ChaosScenario::run_with_wire_reader`] run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WireReaderOutcome {
    /// Rounds where the delta-maintained view was cross-checked against a
    /// full wire read.
    pub rounds_compared: usize,
    /// Cross-check failures, one message per diverged round. Must stay
    /// empty: a delta-fed view that drifts from the full read is a
    /// correctness bug, chaos or not.
    pub mismatches: Vec<String>,
    /// Reads the server answered as incremental deltas.
    pub delta_reads: usize,
    /// Reads the server answered as full snapshots (watermark out of the
    /// change index's window).
    pub snapshot_fallbacks: usize,
    /// Rounds where the wire read failed outright (partition down); the
    /// consumer just retries from the same watermark next round.
    pub unavailable_rounds: usize,
}

/// Drives a full Statesman instance on the tiny 2-pod DCN against a
/// [`ChaosPlan`] while an application pursues a fixed intent.
#[derive(Debug, Clone)]
pub struct ChaosScenario {
    /// The fault composition to run under.
    pub plan: ChaosPlan,
    /// Maximum rounds to drive.
    pub rounds: usize,
    /// Simulated time advanced per round.
    pub step: SimDuration,
    /// When the application starts pursuing its intent. Deliberately
    /// inside the fault windows, so the upgrade campaign has to run
    /// *through* the chaos rather than finishing before it starts.
    pub intent_at: SimTime,
    /// Storage durability backend for the scenario's rings. `Memory` (the
    /// default) keeps the historical logical event store; crash-restart
    /// scenarios use `FramedMemory` or `Dir` so kills exercise the real
    /// byte-framed WAL + snapshot + recovery path.
    pub durability: DurabilityMode,
    /// Print a one-line summary per round (for debugging chaos runs).
    pub verbose: bool,
    /// State-plane representation for the scenario's coordinator: dense
    /// columnar slots (the default) or the hashmap reference. Equivalence
    /// tests run the same seed under both and demand identical outcomes.
    pub columnar_state: bool,
    /// Run the updater's plan synthesizer (dependency-ordered waves with
    /// in-flight invariant checks) instead of the legacy chain walk.
    /// Equivalence tests run the same seed under both.
    pub plan_synthesis: bool,
    /// Flash-crowd TE churn: while the upgrade campaign runs, a traffic
    /// app keeps re-routing a pod-1 path between the two aggs (the
    /// devices mid-reboot), alternating every other round until a fixed
    /// cutoff, so routing updates race the firmware rolls.
    pub te_churn: bool,
    /// Pin the round engine's worker pool (`None`: the coordinator
    /// default). Determinism tests run the same seed at 1 and N workers
    /// and demand identical outcomes.
    pub worker_threads: Option<usize>,
}

impl ChaosScenario {
    /// The standard scenario: 30 one-minute rounds under
    /// [`ChaosPlan::standard`].
    pub fn standard(seed: u64) -> Self {
        ChaosScenario {
            plan: ChaosPlan::standard(seed),
            rounds: 30,
            step: SimDuration::from_mins(1),
            intent_at: SimTime::from_secs(3 * 60),
            durability: DurabilityMode::Memory,
            verbose: false,
            columnar_state: true,
            plan_synthesis: true,
            te_churn: false,
            worker_threads: None,
        }
    }

    /// The upgrade-race scenario: [`ChaosPlan::upgrade_race`] (heavy
    /// link flapping under the rolling firmware campaign) plus
    /// flash-crowd TE churn re-routing traffic between the rebooting
    /// aggs, with extra rounds so convergence is still reachable after
    /// the churn cutoff.
    pub fn upgrade_race(seed: u64) -> Self {
        ChaosScenario {
            plan: ChaosPlan::upgrade_race(seed),
            rounds: 36,
            step: SimDuration::from_mins(1),
            intent_at: SimTime::from_secs(3 * 60),
            durability: DurabilityMode::Memory,
            verbose: false,
            columnar_state: true,
            plan_synthesis: true,
            te_churn: true,
            worker_threads: None,
        }
    }

    /// The crash-restart scenario: the standard multi-layer plan plus a
    /// kill -9 of *each* storage replica once the other fault windows
    /// have healed — one with a torn-tail injection (recovery repairs
    /// it), one with a mid-log bit flip (recovery refuses the log and
    /// the replica rejoins via leader catch-up), one clean. Kills are
    /// spaced so the windows never overlap, and the run gets extra
    /// rounds so convergence is re-checked after the last restart.
    pub fn crash_restart(seed: u64, durability: DurabilityMode) -> Self {
        let mut plan = ChaosPlan::standard(seed);
        let minute = |m: u64| SimTime::from_secs(60 * m);
        let down = SimDuration::from_mins(1);
        plan.replica_kills = vec![
            ReplicaKill {
                replica: 0,
                at: minute(14),
                down,
                // Seed-varied torn length, derived without consuming RNG
                // draws (the standard plan's derivation must not shift).
                corruption: WalCorruption::TornTail {
                    bytes: 7 + (seed % 17) as usize,
                },
            },
            ReplicaKill {
                replica: 1,
                at: minute(16),
                down,
                corruption: WalCorruption::BitFlip,
            },
            ReplicaKill {
                replica: 2,
                at: minute(18),
                down,
                corruption: WalCorruption::None,
            },
        ];
        ChaosScenario {
            plan,
            rounds: 36,
            step: SimDuration::from_mins(1),
            intent_at: SimTime::from_secs(3 * 60),
            durability,
            verbose: false,
            columnar_state: true,
            plan_synthesis: true,
            te_churn: false,
            worker_threads: None,
        }
    }

    /// Run the scenario to completion and report what happened. Does not
    /// assert anything itself — tests decide which outcome fields matter.
    pub fn run(&self) -> ScenarioOutcome {
        self.run_inner(None, None, None)
    }

    /// Like [`ChaosScenario::run`], but with an observability handle wired
    /// through the whole stack: the coordinator records per-round metrics
    /// and traces into `obs`, and attaches the same registry to the
    /// storage service and network simulator. Afterwards the caller can
    /// scrape `obs` (or serve it over `/v1/metrics`) and cross-check the
    /// registry against the returned [`ScenarioOutcome`].
    pub fn run_with_obs(&self, obs: &Obs) -> ScenarioOutcome {
        self.run_inner(Some(obs.clone()), None, None)
    }

    /// Like [`ChaosScenario::run`], but with an out-of-process changefeed
    /// consumer riding along: an [`ApiServer`] fronts the scenario's
    /// storage, and every round a wire client advances a [`MapView`] of
    /// the observed state via `GET /v1/read?since=<watermark>` and
    /// cross-checks it against a full wire read. This is the §6.4 pull
    /// path under chaos — partition outages, quarantines, and change-index
    /// evictions all happen mid-feed.
    pub fn run_with_wire_reader(&self) -> (ScenarioOutcome, WireReaderOutcome) {
        let mut wire = WireReaderOutcome::default();
        let outcome = self.run_inner(None, Some(&mut wire), None);
        (outcome, wire)
    }

    /// Like [`ChaosScenario::run`], but with an HTTP-layer stress rig
    /// riding along: an [`ApiServer`] (small pool, tight admission
    /// limits, short idle timeout) fronts the scenario's storage, and
    /// real threads run three attack shapes against it for the duration
    /// of the run — **slow-loris** (half-sent request heads that stall),
    /// **connection churn** (connect/close as fast as possible), and
    /// **overload bursts** (more simultaneous keep-alive clients than
    /// the connection limit admits). All stress traffic is read-only, so
    /// the control loop's [`ScenarioOutcome`] must stay bit-identical to
    /// an unstressed run — the assertion that wire-layer abuse cannot
    /// leak into control-plane behavior.
    pub fn run_with_api_stress(&self) -> (ScenarioOutcome, ApiStressOutcome) {
        let mut stress = ApiStressOutcome::default();
        let outcome = self.run_inner(None, None, Some(&mut stress));
        (outcome, stress)
    }

    fn run_inner(
        &self,
        obs: Option<Obs>,
        mut wire: Option<&mut WireReaderOutcome>,
        api_stress: Option<&mut ApiStressOutcome>,
    ) -> ScenarioOutcome {
        let clock = SimClock::new();
        let graph = DcnSpec::tiny("dc1").build();
        let mut cfg = SimConfig::ideal();
        cfg.seed = self.plan.seed;
        cfg.faults.command_latency_ms = 200;
        cfg.faults.reboot_window_ms = 90_000;
        cfg.faults = self.plan.install(cfg.faults);
        let net = SimNetwork::new(&graph, clock.clone(), cfg);
        let mut scfg = StorageConfig::default();
        scfg.ring.durability = self.durability.clone();
        if !self.plan.replica_kills.is_empty() {
            // Tight snapshot cadence so kill windows land on logs that
            // have both a snapshot and a tail to replay.
            scfg.ring.snapshot_every = 24;
        }
        let storage = StorageService::new([DatacenterId::new("dc1")], clock.clone(), scfg);
        let coordinator = Coordinator::new(
            &graph,
            net.clone(),
            storage.clone(),
            CoordinatorConfig {
                obs,
                quarantine_cooldown: Some(SimDuration::from_mins(2)),
                updater_retry: Some(RetryPolicy {
                    max_attempts: 2,
                    base_backoff: SimDuration::from_secs(1),
                    max_backoff: SimDuration::from_secs(4),
                    jitter_frac: 0.5,
                }),
                updater_breaker: Some((3, SimDuration::from_mins(3))),
                columnar_state: self.columnar_state,
                plan_synthesis: self.plan_synthesis,
                worker_threads: self.worker_threads,
                ..CoordinatorConfig::default()
            },
        );
        let app = StatesmanClient::new("chaos-app", storage.clone(), clock.clone());

        // The intent. Firmware upgrades (reboot ~90s each) land on pod-1
        // aggs only, so pod-1 capacity is entirely in the checker's hands;
        // the boot-image retarget lands on the agg chaos crashes, so its
        // proposals must ride out quarantine rejections until the device
        // heals and is re-probed.
        let firmware_targets = [DeviceName::new("agg-1-1"), DeviceName::new("agg-1-2")];
        let boot_targets = [DeviceName::new("agg-2-1")];
        let dc = DatacenterId::new("dc1");

        let mut outcome = ScenarioOutcome {
            rounds_run: 0,
            converged_at: None,
            safety_violations: Vec::new(),
            degraded_rounds: 0,
            max_quarantined: 0,
            quarantine_rejections: 0,
            commands_failed: 0,
            updater_retries: 0,
            breakers_opened: 0,
            storage_retries: 0,
            tick_errors: 0,
            replicas_killed: 0,
            recoveries_completed: 0,
            recovery_truncated_records: 0,
            recovery_refusals: 0,
            recovery_violations: Vec::new(),
            chain_violations: Vec::new(),
            watermark_regressions: Vec::new(),
            plan_steps: 0,
            plan_max_width: 0,
            plan_inflight_rejections: 0,
            plan_rollbacks: 0,
        };

        // Durable-storage chaos state: per-kill lifecycle phase
        // (0 = pending, 1 = down, 2 = recovered), the pre-kill partition
        // watermark each recovery is checked against, and the two
        // continuously asserted invariant checkers.
        let mut kill_phase = vec![0u8; self.plan.replica_kills.len()];
        let mut pre_watermarks: Vec<Option<Version>> = vec![None; self.plan.replica_kills.len()];
        let mut recovery_checker = RecoverySafetyChecker::default();
        let mut chain_checker = HashChainChecker::default();
        let replicas_per_ring = 3u8;

        // The out-of-process changefeed consumer: an API server over the
        // same storage, and a view advanced purely by `since=` reads.
        let wire_rig = wire.as_ref().map(|_| {
            let server = ApiServer::start(storage.clone()).expect("start api server");
            let client = ApiClient::new(server.addr());
            (server, client)
        });
        let mut wire_view = MapView::new();
        let mut wire_watermark = Version::GENESIS;

        // The HTTP stress rig: real attack threads against a tight API
        // server fronting the same storage, for the whole round loop.
        let stress_rig = api_stress
            .as_ref()
            .map(|_| StressRig::start(storage.clone()));

        let fw_done = |net: &SimNetwork, d: &DeviceName| {
            net.device_snapshot(d)
                .map(|s| s.firmware == "7.0")
                .unwrap_or(false)
        };
        let boot_done = |net: &SimNetwork, d: &DeviceName| {
            net.device_snapshot(d)
                .map(|s| s.boot_image == "golden")
                .unwrap_or(false)
        };

        for round in 0..self.rounds {
            outcome.rounds_run = round + 1;
            let now = clock.now();

            // Storage-layer faults: toggle partition availability per the
            // schedule (the storage service has no scheduler of its own).
            for (part, at, down) in &self.plan.partition_outages {
                storage.set_partition_available(part, !(now >= *at && now < *at + *down));
            }

            // Durable-storage faults: kill -9, corrupt, and restart
            // replicas per the schedule. Completions run before new kills
            // so back-to-back windows never overlap.
            for (k, kill) in self.plan.replica_kills.iter().enumerate() {
                if kill_phase[k] == 1 && now >= kill.at + kill.down {
                    kill_phase[k] = 2;
                    if let Some(summary) = storage.complete_replica_recovery(&dc, kill.replica) {
                        outcome.recoveries_completed += 1;
                        outcome.recovery_truncated_records += summary.truncated_records;
                        if summary.refused {
                            outcome.recovery_refusals += 1;
                        }
                    }
                    // Post-rejoin safety: the replica must be back at or
                    // above the highest committed decree observed live.
                    let through = storage.replica_applied_through(&dc, kill.replica);
                    recovery_checker.check_recovery("dc1", kill.replica, through);
                    // Zero acknowledged-write loss, end to end: the
                    // partition watermark never regresses across a
                    // kill + recovery.
                    if let (Some(pre), Ok(post)) =
                        (pre_watermarks[k], storage.partition_watermark(&dc))
                    {
                        if post < pre {
                            outcome.watermark_regressions.push(format!(
                                "kill {k}: partition watermark regressed {pre:?} -> {post:?} \
                                 across replica {} recovery",
                                kill.replica
                            ));
                        }
                    }
                }
                if kill_phase[k] == 0 && now >= kill.at {
                    kill_phase[k] = 1;
                    outcome.replicas_killed += 1;
                    pre_watermarks[k] = storage.partition_watermark(&dc).ok();
                    for r in 0..replicas_per_ring {
                        recovery_checker.observe_committed(
                            "dc1",
                            r,
                            storage.replica_applied_through(&dc, r),
                        );
                    }
                    storage.begin_replica_recovery(&dc, kill.replica);
                    if kill.corruption != WalCorruption::None {
                        storage.corrupt_replica_wal(&dc, kill.replica, &kill.corruption);
                    }
                }
            }

            // Application layer: while alive, drain receipts and re-propose
            // every not-yet-realized target. Proposals may fail while the
            // partition is down — the app just tries again next round.
            let app_alive = match self.plan.app_blackout {
                Some((at, down)) => !(now >= at && now < at + down),
                None => true,
            };
            if app_alive && now >= self.intent_at {
                let _ = app.take_receipts();
                let mut wanted = Vec::new();
                for d in &firmware_targets {
                    if !fw_done(&net, d) {
                        wanted.push((
                            EntityName::device(dc.clone(), d.clone()),
                            Attribute::DeviceFirmwareVersion,
                            Value::text("7.0"),
                        ));
                    }
                }
                for d in &boot_targets {
                    if !boot_done(&net, d) {
                        wanted.push((
                            EntityName::device(dc.clone(), d.clone()),
                            Attribute::DeviceBootImage,
                            Value::text("golden"),
                        ));
                    }
                }
                if !wanted.is_empty() {
                    let _ = app.propose(wanted);
                }
                // Flash-crowd TE churn: a traffic app keeps re-routing a
                // pod-1 path between the two aggs mid-upgrade, flipping
                // the middle hop (and the allocation) every other round
                // until a fixed cutoff so convergence stays reachable.
                if self.te_churn && round < 14 {
                    let flip = (round / 2) % 2;
                    let mid = if flip == 0 { "agg-1-1" } else { "agg-1-2" };
                    let path = EntityName::path(dc.clone(), "te:flash-crowd");
                    let _ = app.propose([
                        (
                            path.clone(),
                            Attribute::PathSwitches,
                            Value::DeviceList(vec![
                                DeviceName::new("tor-1-1"),
                                DeviceName::new(mid),
                                DeviceName::new("tor-1-2"),
                            ]),
                        ),
                        (
                            path,
                            Attribute::PathTrafficAllocation,
                            Value::Float(if flip == 0 { 500.0 } else { 900.0 }),
                        ),
                    ]);
                }
            }

            // One control-loop round, then advance the world.
            match coordinator.tick_and_advance(self.step) {
                Ok(report) => {
                    if self.verbose {
                        println!(
                            "round {round}: accepted={} rejected={} q_rej={} diffs={} \
                             applied={} failed={} retries={} quarantined={} degraded={:?} \
                             unreachable={}",
                            report.accepted(),
                            report.rejected(),
                            report.quarantine_rejected(),
                            report.updater.diffs,
                            report.updater.commands_applied,
                            report.updater.commands_failed,
                            report.updater.retries,
                            report.devices_quarantined(),
                            report.skipped_groups,
                            report.monitor.devices_unreachable,
                        );
                    }
                    if report.degraded() {
                        outcome.degraded_rounds += 1;
                    }
                    outcome.max_quarantined =
                        outcome.max_quarantined.max(report.devices_quarantined());
                    outcome.quarantine_rejections += report.quarantine_rejected();
                    let (failed, retries, _skips, opened) = report.command_fault_counters();
                    outcome.commands_failed += failed;
                    outcome.updater_retries += retries;
                    outcome.breakers_opened += opened;
                    outcome.storage_retries = report.storage_retries;
                    outcome.plan_steps += report.updater.plan_steps;
                    outcome.plan_max_width =
                        outcome.plan_max_width.max(report.updater.plan_max_width);
                    outcome.plan_inflight_rejections += report.updater.plan_inflight_rejections;
                    outcome.plan_rollbacks += report.updater.plan_rollbacks;

                    // Liveness sample: target realized on ground truth and
                    // the updater has nothing left to do.
                    if outcome.converged_at.is_none()
                        && report.updater.diffs == 0
                        && firmware_targets.iter().all(|d| fw_done(&net, d))
                        && boot_targets.iter().all(|d| boot_done(&net, d))
                    {
                        outcome.converged_at = Some(round);
                    }
                }
                Err(_) => outcome.tick_errors += 1,
            }

            // Wire changefeed consumer: advance the delta-fed view, then
            // cross-check it against a full read over the same transport.
            if let (Some(w), Some((_server, wclient))) = (wire.as_deref_mut(), wire_rig.as_ref()) {
                match wclient.read_os_since(&dc, wire_watermark) {
                    Ok(delta) => {
                        if delta.snapshot {
                            w.snapshot_fallbacks += 1;
                        } else {
                            w.delta_reads += 1;
                        }
                        wire_watermark = delta.watermark;
                        wire_view.apply_delta(delta);
                        match wclient.read_os(&dc, Freshness::UpToDate) {
                            Ok(mut full) => {
                                full.sort_by_key(|r| r.key());
                                let mine = wire_view.clone().into_sorted_rows();
                                w.rounds_compared += 1;
                                if mine != full {
                                    w.mismatches.push(format!(
                                        "round {round}: delta view has {} rows, full read {}",
                                        mine.len(),
                                        full.len()
                                    ));
                                }
                            }
                            Err(_) => w.unavailable_rounds += 1,
                        }
                    }
                    Err(_) => w.unavailable_rounds += 1,
                }
            }

            // Safety sample on ground truth, after the world advanced: no
            // pod may ever lose both its aggregation switches. Chaos only
            // crashes one agg (in pod 2) and the checker's invariants must
            // serialize the pod-1 firmware reboots, so a violation means
            // the control loop took down capacity it shouldn't have.
            for pod in 1..=2u32 {
                let up = (1..=2u32)
                    .filter(|agg| {
                        net.device_operational(&DeviceName::new(format!("agg-{pod}-{agg}")))
                    })
                    .count();
                if up == 0 {
                    outcome.safety_violations.push(format!(
                        "round {round}: pod {pod} lost all aggregation switches at {:?}",
                        clock.now()
                    ));
                }
            }

            // Continuous durable-plane assertions: every live replica's
            // committed frontier feeds the recovery-safety watermark, and
            // every store's snapshot + hash chain verifies end to end —
            // except while an injected corruption deliberately sits on a
            // killed replica's files.
            if !self.plan.replica_kills.is_empty() {
                for r in 0..replicas_per_ring {
                    recovery_checker.observe_committed(
                        "dc1",
                        r,
                        storage.replica_applied_through(&dc, r),
                    );
                }
                let mid_kill = kill_phase.contains(&1);
                if !mid_kill {
                    chain_checker.record("dc1", storage.verify_wal_chains(&dc));
                }
            }
        }

        if let (Some(out), Some(rig)) = (api_stress, stress_rig) {
            *out = rig.finish();
        }
        outcome.recovery_violations = recovery_checker.violations.clone();
        outcome.chain_violations = chain_checker.violations.clone();
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Unique-per-test scratch directory for directory-backed WAL runs:
    /// removed on success, kept (with the path printed) when the test
    /// panics so the durable files can be inspected.
    struct ChaosTempDir {
        path: std::path::PathBuf,
    }

    impl ChaosTempDir {
        fn new(tag: &str) -> Self {
            let path =
                std::env::temp_dir().join(format!("statesman-chaos-{}-{tag}", std::process::id()));
            let _ = std::fs::remove_dir_all(&path);
            ChaosTempDir { path }
        }
    }

    impl Drop for ChaosTempDir {
        fn drop(&mut self) {
            if std::thread::panicking() {
                eprintln!("chaos tempdir kept for inspection: {}", self.path.display());
            } else {
                let _ = std::fs::remove_dir_all(&self.path);
            }
        }
    }

    /// The durable-storage headline, across five fixed seeds on real
    /// directory-backed WALs: every replica is kill -9'd and restarted at
    /// least once (one torn-tail injection repaired, one bit-flip refusal
    /// surviving via catch-up, one clean restart), zero acknowledged-write
    /// loss, both invariant checkers clean throughout, convergence still
    /// reached — and the whole run bit-identical when replayed.
    #[test]
    fn crash_restart_chaos_recovers_durably_across_seeds() {
        for seed in 1..=5u64 {
            let dir = ChaosTempDir::new(&format!("crash-restart-{seed}"));
            let run = |suffix: &str| {
                let d = dir.path.join(suffix);
                ChaosScenario::crash_restart(seed, DurabilityMode::Dir(d)).run()
            };
            let a = run("a");
            let b = run("b");
            assert_eq!(
                a, b,
                "seed {seed}: crash-restart chaos must replay bit-identically"
            );
            assert_eq!(a.replicas_killed, 3, "seed {seed}: {a:?}");
            assert_eq!(a.recoveries_completed, 3, "seed {seed}: {a:?}");
            assert!(
                a.recovery_truncated_records >= 1,
                "seed {seed}: torn-tail injection never repaired: {a:?}"
            );
            assert!(
                a.recovery_refusals >= 1,
                "seed {seed}: bit-flip injection never refused: {a:?}"
            );
            assert!(
                a.recovery_violations.is_empty(),
                "seed {seed}: recovery safety violated: {:?}",
                a.recovery_violations
            );
            assert!(
                a.chain_violations.is_empty(),
                "seed {seed}: hash chain violated: {:?}",
                a.chain_violations
            );
            assert!(
                a.watermark_regressions.is_empty(),
                "seed {seed}: acknowledged writes lost: {:?}",
                a.watermark_regressions
            );
            assert!(a.safety_violations.is_empty(), "seed {seed}: {a:?}");
            assert_eq!(a.tick_errors, 0, "seed {seed}: rounds aborted: {a:?}");
            assert!(
                a.converged_at.is_some(),
                "seed {seed}: never converged: {a:?}"
            );
        }
    }

    /// The headline chaos property, across five fixed seeds: zero
    /// ground-truth invariant violations, zero aborted rounds, and bounded
    /// convergence after the last fault heals.
    #[test]
    fn standard_chaos_is_safe_and_live_across_seeds() {
        for seed in 1..=5u64 {
            let scenario = ChaosScenario::standard(seed);
            let heal = scenario.plan.last_heal();
            let outcome = scenario.run();
            assert!(
                outcome.safety_violations.is_empty(),
                "seed {seed}: safety violated: {:?}",
                outcome.safety_violations
            );
            assert_eq!(outcome.tick_errors, 0, "seed {seed}: rounds aborted");
            let converged = outcome
                .converged_at
                .unwrap_or_else(|| panic!("seed {seed}: never converged: {outcome:?}"));
            // Bounded liveness: the heal instant plus quarantine cooldown
            // and a few working rounds, all inside the 30-round budget.
            let heal_round = (heal.as_millis() / scenario.step.as_millis()) as usize;
            assert!(
                converged <= heal_round + 12,
                "seed {seed}: converged at round {converged}, too long after heal round {heal_round}"
            );
            // The plan must actually have bitten: a quarantine formed and
            // the partition outage degraded at least one round.
            assert!(outcome.max_quarantined >= 1, "seed {seed}: no quarantine");
            assert!(
                outcome.degraded_rounds >= 1,
                "seed {seed}: no degraded round"
            );
            println!(
                "seed {seed}: converged at round {converged} (heal round {heal_round}), \
                 degraded={}, max_quarantined={}, quarantine_rejections={}, \
                 failed={}, retries={}, breakers={}, storage_retries={}",
                outcome.degraded_rounds,
                outcome.max_quarantined,
                outcome.quarantine_rejections,
                outcome.commands_failed,
                outcome.updater_retries,
                outcome.breakers_opened,
                outcome.storage_retries
            );
        }
    }

    /// Same seed → bit-identical outcome, twice over. Chaos runs must be
    /// replayable or failures can't be debugged.
    #[test]
    fn chaos_runs_are_deterministic() {
        let a = ChaosScenario::standard(3).run();
        let b = ChaosScenario::standard(3).run();
        assert_eq!(a, b);
    }

    /// An observed run is bit-identical to an unobserved one (metrics
    /// must never perturb the control loop), and the registry's counters
    /// agree exactly with the outcome the harness tallied independently.
    #[test]
    fn observed_runs_match_and_fill_the_registry() {
        let obs = Obs::new();
        let scenario = ChaosScenario::standard(3);
        let outcome = scenario.run_with_obs(&obs);
        assert_eq!(outcome, scenario.run(), "obs must not perturb the run");

        let reg = &obs.registry;
        assert_eq!(
            reg.counter_value("coordinator_rounds_total"),
            Some(outcome.rounds_run as u64)
        );
        assert_eq!(
            reg.counter_value("coordinator_degraded_rounds_total"),
            Some(outcome.degraded_rounds as u64)
        );
        assert_eq!(
            reg.counter_value("checker_quarantine_rejected_total"),
            Some(outcome.quarantine_rejections as u64)
        );
        assert_eq!(
            reg.counter_value("updater_retries_total"),
            Some(outcome.updater_retries as u64)
        );
        assert_eq!(
            reg.counter_value("updater_commands_failed_total"),
            Some(outcome.commands_failed as u64)
        );
        assert_eq!(
            reg.counter_value("updater_breakers_opened_total"),
            Some(outcome.breakers_opened as u64)
        );
        assert_eq!(
            reg.counter_value("storage_retries_total"),
            Some(outcome.storage_retries)
        );
        // The trace ring and status board were fed every round.
        assert!(!obs.traces.is_empty());
        assert_eq!(obs.status().last_round, Some(outcome.rounds_run as u64 - 1));
        // The network simulator was attached too: chaos fired faults.
        assert!(reg.counter_value("net_faults_fired_total").unwrap_or(0) > 0);
    }

    /// The quarantine-rejection path fires end to end: the app keeps
    /// proposing a boot image for the crashed agg, and while that device
    /// is quarantined the checker must turn those proposals away rather
    /// than act on stale observed state.
    #[test]
    fn quarantine_shields_proposals_against_crashed_devices() {
        let outcome = ChaosScenario::standard(2).run();
        assert!(
            outcome.quarantine_rejections >= 1,
            "expected quarantine rejections: {outcome:?}"
        );
    }

    /// An out-of-process changefeed consumer rides out the standard chaos
    /// plan: its `since=`-maintained view never diverges from a full wire
    /// read, and the chaos outcome itself is unperturbed by the extra
    /// reader. The partition outage makes some reads fail (retried from
    /// the same watermark) — divergence afterwards would mean the
    /// changefeed lost changes across the outage.
    #[test]
    fn wire_changefeed_reader_survives_standard_chaos() {
        let scenario = ChaosScenario::standard(3);
        let (outcome, wire) = scenario.run_with_wire_reader();
        assert_eq!(
            outcome,
            scenario.run(),
            "wire reader must not perturb the run"
        );
        assert!(
            wire.mismatches.is_empty(),
            "delta view diverged: {:?}",
            wire.mismatches
        );
        assert!(wire.rounds_compared >= 20, "{wire:?}");
        assert!(wire.delta_reads >= 10, "{wire:?}");
        assert!(
            wire.unavailable_rounds >= 1,
            "the partition outage should have cost the reader at least one round: {wire:?}"
        );
    }

    /// The API front end under attack while standard chaos runs: slow-loris
    /// heads are 408'd by the reactor, overload bursts shed 429 + retry-after
    /// (never a reset), churn is absorbed — and the control loop's outcome
    /// stays bit-identical to an unstressed run.
    #[test]
    fn api_stress_does_not_perturb_the_control_loop() {
        let scenario = ChaosScenario::standard(3);
        let (outcome, stress) = scenario.run_with_api_stress();
        assert_eq!(
            outcome,
            scenario.run(),
            "HTTP stress must not perturb the run"
        );
        assert!(stress.health_ok >= 1, "{stress:?}");
        assert!(
            stress.sheds >= 1,
            "32-client bursts against 16 slots must shed: {stress:?}"
        );
        assert_eq!(
            stress.sheds_missing_retry_after, 0,
            "every 429 carries retry-after: {stress:?}"
        );
        assert_eq!(
            stress.connect_failures, 0,
            "overload answers, it never resets: {stress:?}"
        );
        assert!(stress.churned >= 1, "{stress:?}");
        assert_eq!(stress.loris_conns, 8, "{stress:?}");
        assert!(
            stress.loris_answered_408 >= 1,
            "the reactor reclaims stalled heads with 408: {stress:?}"
        );
        assert!(stress.final_health_ok, "{stress:?}");
    }

    /// A fault-free plan converges quickly with no failed commands, no
    /// degraded rounds, and no breakers — the harness itself adds no
    /// faults. (The quarantine *does* briefly engage even here: a firmware
    /// upgrade's own reboot window makes the device legitimately
    /// unreachable for a poll or two, which is exactly the conservative
    /// behavior we want around rebooting devices.)
    #[test]
    fn quiet_plan_converges_without_degradation() {
        let scenario = ChaosScenario {
            plan: ChaosPlan::quiet(7),
            rounds: 15,
            step: SimDuration::from_mins(1),
            intent_at: SimTime::ZERO,
            durability: DurabilityMode::Memory,
            verbose: false,
            columnar_state: true,
            plan_synthesis: true,
            te_churn: false,
            worker_threads: None,
        };
        let outcome = scenario.run();
        assert!(outcome.safety_violations.is_empty());
        assert!(
            outcome.converged_at.is_some(),
            "quiet run never converged: {outcome:?}"
        );
        assert_eq!(outcome.degraded_rounds, 0);
        assert_eq!(outcome.commands_failed, 0);
        assert_eq!(outcome.breakers_opened, 0);
        assert_eq!(outcome.storage_retries, 0);
        assert_eq!(outcome.tick_errors, 0);
    }
}
