//! Update-plan synthesis: ordered, minimal, maximally-parallel transitions.
//!
//! The paper's updater walks the Fig-4 dependency chain one impact group
//! at a time, which guarantees safety only *between* rounds — the
//! intermediate states a transition passes through are unchecked. This
//! module closes that gap in the spirit of "Toward Synthesis of Network
//! Updates" (ordering commands so invariants hold *during* the
//! transition) and ez-Segway (independent segments proceed without
//! central serialization): a round's TS−OS difference set is compiled
//! into an [`UpdatePlan`] — an explicit partial order (DAG) of command
//! steps.
//!
//! Two properties matter:
//!
//! * **Ordered**: steps touching the same device (or a link and its
//!   endpoint devices) are sequenced bottom-up along the Fig-4 chains —
//!   device power before OS setup before device configuration before
//!   routing control; link power after both endpoints' device
//!   configuration and before link interface configuration. The legacy
//!   executor's key order sorts attributes by catalogue position, which
//!   can issue a routing change *before* the power-on it depends on; the
//!   plan cannot.
//! * **Maximally parallel**: steps with no chain between them — distinct
//!   devices, distinct pods, distinct datacenters (the per-partition
//!   boundary of the diff stage, and the per-pod boundary of
//!   [`crate::deps::blast_radius`]) — share a wave. Waves are antichains
//!   of the DAG; the plan's width is the measured parallelism the
//!   topology permits. Execution of network effects stays single-threaded
//!   and seeded (see `updater.rs`) so chaos double-run determinism is
//!   preserved; the waves record what *could* run concurrently and bound
//!   what must not.
//!
//! Cycles cannot arise from the built-in Fig-4 edges (they always point
//! from a strictly lower chain rank to a higher one), but callers may
//! inject custom edges via [`UpdatePlan::from_steps`]; a cycle among
//! those is broken deterministically at the lowest-index member and
//! counted in [`UpdatePlan::cycles_broken`], so a malformed dependency
//! set degrades to a deterministic order instead of wedging the round.

use crate::deps::{blast_radius, BlastRadius};
use statesman_topology::NetworkGraph;
use statesman_types::entity::EntityBody;
use statesman_types::{DependencyLevel, DeviceName, EntityName, NetworkState};
use std::collections::BTreeMap;

/// One command step of an [`UpdatePlan`]: a single differing variable,
/// the device that will carry its commands, its blast radius (for
/// pod-scoped in-flight invariant checks), and the indices of the steps
/// that must commit before it may.
#[derive(Debug)]
pub struct PlanStep {
    /// The TS row to realize (owned — plans outlive the round's borrows).
    pub row: NetworkState,
    /// The device the rendered commands land on (`None` for rows with no
    /// reachable carrier; they surface as unrenderable at execution).
    pub device: Option<DeviceName>,
    /// The step's blast radius: which pods/datacenters its transition can
    /// reach, gating which invariants are re-checked in flight.
    pub radius: BlastRadius,
    /// Indices (into [`UpdatePlan::steps`]) of prerequisite steps.
    pub deps: Vec<usize>,
}

impl PlanStep {
    /// A step for `row` carried by `device`, with its radius derived from
    /// `graph` and no dependencies yet.
    pub fn new(graph: &NetworkGraph, row: NetworkState, device: Option<DeviceName>) -> Self {
        let radius = blast_radius(graph, [(&row.entity, Some(&row.value))]);
        PlanStep {
            row,
            device,
            radius,
            deps: Vec::new(),
        }
    }
}

/// An explicit partial order of command steps for one update round:
/// `waves[0]` holds every step with no prerequisites, `waves[k]` every
/// step whose prerequisites all sit in earlier waves. Step indices within
/// a wave are ascending, which is the synthesis input order — partition
/// order, then global key order — so a dependency-free plan executes in
/// exactly the legacy chain-walk order.
#[derive(Debug, Default)]
pub struct UpdatePlan {
    /// All steps, in synthesis input order.
    pub steps: Vec<PlanStep>,
    /// Antichain layering of the DAG (indices into `steps`).
    pub waves: Vec<Vec<usize>>,
    /// Dependency cycles broken during layering (always zero for plans
    /// synthesized from the Fig-4 edges alone).
    pub cycles_broken: usize,
}

/// Rank of a device-chain level along Fig 4, bottom-up. Link and path
/// levels are `None`: their cross-entity edges are added explicitly.
fn device_rank(level: DependencyLevel) -> Option<u8> {
    match level {
        DependencyLevel::DevicePower => Some(0),
        DependencyLevel::OperatingSystemSetup => Some(1),
        DependencyLevel::DeviceConfiguration => Some(2),
        DependencyLevel::RoutingControl => Some(3),
        _ => None,
    }
}

impl UpdatePlan {
    /// Synthesize a plan from a round's difference set. `rows` must be in
    /// the round's deterministic order (partition order, then key order);
    /// each entry carries the row and its carrier device.
    pub fn synthesize(graph: &NetworkGraph, rows: Vec<(NetworkState, Option<DeviceName>)>) -> Self {
        let mut steps: Vec<PlanStep> = rows
            .into_iter()
            .map(|(row, device)| PlanStep::new(graph, row, device))
            .collect();
        fig4_deps(&mut steps);
        Self::from_steps(steps)
    }

    /// Layer pre-built steps (with `deps` already filled) into waves.
    /// This is the entry point for custom dependency sets; cycles are
    /// broken deterministically (lowest-index member first) and counted.
    pub fn from_steps(steps: Vec<PlanStep>) -> Self {
        let n = steps.len();
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut indeg: Vec<usize> = vec![0; n];
        for (i, step) in steps.iter().enumerate() {
            for &d in &step.deps {
                if d < n && d != i {
                    succ[d].push(i);
                    indeg[i] += 1;
                }
            }
        }
        let mut placed = vec![false; n];
        let mut waves: Vec<Vec<usize>> = Vec::new();
        let mut remaining = n;
        let mut cycles_broken = 0usize;
        while remaining > 0 {
            let mut wave: Vec<usize> = (0..n).filter(|&i| !placed[i] && indeg[i] == 0).collect();
            if wave.is_empty() {
                // Every remaining step waits on another remaining step:
                // a cycle. Break it at the lowest-index member so the
                // result is a pure function of the input.
                let victim = (0..n).find(|&i| !placed[i]).expect("remaining > 0");
                cycles_broken += 1;
                wave.push(victim);
            }
            for &i in &wave {
                placed[i] = true;
                remaining -= 1;
            }
            for &i in &wave {
                for &s in &succ[i] {
                    if !placed[s] {
                        indeg[s] -= 1;
                    }
                }
            }
            waves.push(wave);
        }
        UpdatePlan {
            steps,
            waves,
            cycles_broken,
        }
    }

    /// Total steps in the plan.
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }

    /// Number of execution waves (the DAG's depth).
    pub fn wave_count(&self) -> usize {
        self.waves.len()
    }

    /// The widest wave — the measured parallelism the dependency
    /// structure permits.
    pub fn max_width(&self) -> usize {
        self.waves.iter().map(|w| w.len()).max().unwrap_or(0)
    }

    /// True when the difference set was empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Distinct independence segments the steps fall into: one per
    /// reachable `(datacenter, pod)` pair, plus one shared segment for
    /// steps with fabric-wide reach (pod-less or unknown devices).
    pub fn segment_count(&self) -> usize {
        let mut segments: std::collections::BTreeSet<Option<(String, u32)>> =
            std::collections::BTreeSet::new();
        for step in &self.steps {
            match &step.radius.pods {
                Some(pods) => {
                    for (dc, pod) in pods {
                        segments.insert(Some((dc.to_string(), *pod)));
                    }
                }
                None => {
                    segments.insert(None);
                }
            }
        }
        segments.len()
    }
}

/// Fill `deps` from the Fig-4 chains:
///
/// * same-device steps: lower device rank before higher (power → OS
///   setup → configuration → routing control);
/// * link steps: after both endpoints' device-chain steps up to
///   `DeviceConfiguration` ("link power depends on the device
///   configuration of both ends");
/// * `LinkInterfaceConfig` steps: additionally after the same link's
///   `LinkPower` steps.
fn fig4_deps(steps: &mut [PlanStep]) {
    let mut by_device: BTreeMap<DeviceName, Vec<(usize, u8)>> = BTreeMap::new();
    let mut by_link: BTreeMap<EntityName, Vec<usize>> = BTreeMap::new();
    for (i, step) in steps.iter().enumerate() {
        match &step.row.entity.body {
            EntityBody::Device(d) => {
                if let Some(rank) = device_rank(step.row.attribute.dependency_level()) {
                    by_device.entry(d.clone()).or_default().push((i, rank));
                }
            }
            EntityBody::Link(_) => {
                by_link.entry(step.row.entity.clone()).or_default().push(i);
            }
            EntityBody::Path(_) => {}
        }
    }
    // Device chains: each step depends on every strictly-lower-rank step
    // of the same device.
    for chain in by_device.values() {
        for &(i, rank_i) in chain {
            for &(j, rank_j) in chain {
                if rank_j < rank_i {
                    steps[i].deps.push(j);
                }
            }
        }
    }
    // Link steps: depend on both endpoints' device-chain steps at or
    // below DeviceConfiguration, and LinkInterfaceConfig on the link's
    // own LinkPower steps.
    for (entity, link_steps) in &by_link {
        let EntityBody::Link(l) = &entity.body else {
            continue;
        };
        let mut endpoint_deps: Vec<usize> = Vec::new();
        for end in [&l.a, &l.b] {
            if let Some(chain) = by_device.get(end) {
                endpoint_deps.extend(chain.iter().filter(|&&(_, r)| r <= 2).map(|&(j, _)| j));
            }
        }
        for &i in link_steps {
            steps[i].deps.extend(endpoint_deps.iter().copied());
            if steps[i].row.attribute.dependency_level() == DependencyLevel::LinkInterfaceConfig {
                for &j in link_steps {
                    if steps[j].row.attribute.dependency_level() == DependencyLevel::LinkPower {
                        steps[i].deps.push(j);
                    }
                }
            }
        }
    }
    for (i, step) in steps.iter_mut().enumerate() {
        step.deps.retain(|&d| d != i);
        step.deps.sort_unstable();
        step.deps.dedup();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use statesman_topology::DcnSpec;
    use statesman_types::{AppId, Attribute, PowerStatus, SimTime, Value};

    fn graph() -> NetworkGraph {
        DcnSpec::tiny("dc1").build()
    }

    fn row(entity: EntityName, attr: Attribute, v: Value) -> NetworkState {
        NetworkState::new(entity, attr, v, SimTime::default(), AppId::updater())
    }

    fn dev_row(name: &str, attr: Attribute, v: Value) -> (NetworkState, Option<DeviceName>) {
        (
            row(EntityName::device("dc1", name), attr, v),
            Some(DeviceName::new(name)),
        )
    }

    #[test]
    fn empty_difference_set_yields_empty_plan() {
        let plan = UpdatePlan::synthesize(&graph(), Vec::new());
        assert!(plan.is_empty());
        assert_eq!(plan.wave_count(), 0);
        assert_eq!(plan.max_width(), 0);
        assert_eq!(plan.segment_count(), 0);
        assert_eq!(plan.cycles_broken, 0);
    }

    #[test]
    fn independent_devices_share_one_wave_in_legacy_order() {
        // Single partition, no chains: the plan degenerates to the legacy
        // serial order — one wave, indices ascending.
        let plan = UpdatePlan::synthesize(
            &graph(),
            vec![
                dev_row(
                    "agg-1-1",
                    Attribute::DeviceFirmwareVersion,
                    Value::text("7"),
                ),
                dev_row(
                    "agg-1-2",
                    Attribute::DeviceFirmwareVersion,
                    Value::text("7"),
                ),
                dev_row("agg-2-1", Attribute::DeviceBootImage, Value::text("golden")),
            ],
        );
        assert_eq!(plan.wave_count(), 1);
        assert_eq!(plan.waves[0], vec![0, 1, 2]);
        assert_eq!(plan.max_width(), 3);
        assert!(plan.steps.iter().all(|s| s.deps.is_empty()));
        // Two pods touched → two independence segments.
        assert_eq!(plan.segment_count(), 2);
    }

    #[test]
    fn same_device_steps_follow_the_fig4_chain_not_key_order() {
        // Key order sorts DeviceRoutingRules *before* DeviceAdminPower
        // (catalogue position); the plan must invert that: power first,
        // then firmware, then routing.
        let plan = UpdatePlan::synthesize(
            &graph(),
            vec![
                dev_row(
                    "agg-1-1",
                    Attribute::DeviceRoutingRules,
                    Value::Routes(Vec::new()),
                ),
                dev_row(
                    "agg-1-1",
                    Attribute::DeviceFirmwareVersion,
                    Value::text("7.0"),
                ),
                dev_row(
                    "agg-1-1",
                    Attribute::DeviceAdminPower,
                    Value::Power(PowerStatus::On),
                ),
            ],
        );
        assert_eq!(plan.wave_count(), 3);
        assert_eq!(plan.waves, vec![vec![2], vec![1], vec![0]]);
        assert_eq!(plan.steps[0].deps, vec![1, 2]);
        assert_eq!(plan.steps[1].deps, vec![2]);
        assert_eq!(plan.max_width(), 1);
    }

    #[test]
    fn link_steps_wait_for_endpoint_device_config() {
        let link = EntityName::link(
            "dc1",
            DeviceName::new("tor-1-1"),
            DeviceName::new("agg-1-1"),
        );
        let plan = UpdatePlan::synthesize(
            &graph(),
            vec![
                (
                    row(
                        link.clone(),
                        Attribute::LinkAdminPower,
                        Value::Power(PowerStatus::On),
                    ),
                    Some(DeviceName::new("tor-1-1")),
                ),
                (
                    row(
                        link,
                        Attribute::LinkIpAssignment,
                        Value::text("10.0.0.1/31"),
                    ),
                    Some(DeviceName::new("tor-1-1")),
                ),
                dev_row("agg-1-1", Attribute::DeviceMgmtInterface, Value::Bool(true)),
            ],
        );
        // Wave 0: the endpoint's device configuration. Wave 1: link
        // power. Wave 2: link interface config (after link power).
        assert_eq!(plan.waves, vec![vec![2], vec![0], vec![1]]);
        assert_eq!(plan.steps[0].deps, vec![2]);
        assert_eq!(plan.steps[1].deps, vec![0, 2]);
    }

    #[test]
    fn injected_cycles_break_deterministically() {
        let g = graph();
        let mk = |name: &str| {
            PlanStep::new(
                &g,
                row(
                    EntityName::device("dc1", name),
                    Attribute::DeviceFirmwareVersion,
                    Value::text("7"),
                ),
                Some(DeviceName::new(name)),
            )
        };
        let mut steps = vec![mk("agg-1-1"), mk("agg-1-2"), mk("agg-2-1")];
        // 0 → 1 → 2 → 0: a pure cycle.
        steps[0].deps = vec![2];
        steps[1].deps = vec![0];
        steps[2].deps = vec![1];
        let plan = UpdatePlan::from_steps(steps);
        assert_eq!(plan.cycles_broken, 1);
        // Broken at the lowest index: 0 runs first, then the chain drains.
        assert_eq!(plan.waves, vec![vec![0], vec![1], vec![2]]);

        // Re-layering the same input yields the same plan (determinism).
        let mut again = vec![mk("agg-1-1"), mk("agg-1-2"), mk("agg-2-1")];
        again[0].deps = vec![2];
        again[1].deps = vec![0];
        again[2].deps = vec![1];
        let plan2 = UpdatePlan::from_steps(again);
        assert_eq!(plan2.waves, plan.waves);
        assert_eq!(plan2.cycles_broken, 1);
    }

    #[test]
    fn self_and_out_of_range_deps_are_ignored() {
        let g = graph();
        let mut step = PlanStep::new(
            &g,
            row(
                EntityName::device("dc1", "agg-1-1"),
                Attribute::DeviceFirmwareVersion,
                Value::text("7"),
            ),
            Some(DeviceName::new("agg-1-1")),
        );
        step.deps = vec![0, 99];
        let plan = UpdatePlan::from_steps(vec![step]);
        assert_eq!(plan.waves, vec![vec![0]]);
        assert_eq!(plan.cycles_broken, 0);
    }
}
