//! Read views over state pools, and the projection of a target state onto
//! the network graph.
//!
//! The checker never mutates rows in place; it reasons over *views*:
//!
//! * [`StateView`] — anything that can answer "what is the value of
//!   (entity, attribute)?";
//! * [`MapView`] — a materialized snapshot (what a checker pass reads from
//!   storage at its start);
//! * [`OverlayView`] — a proposed/target delta layered over a base view,
//!   used to evaluate "what would the network look like if we accepted
//!   this?" without copying snapshots;
//! * [`project_health`] — the OS→graph projection: derive a
//!   [`HealthView`] (which devices and links are effectively up) from a
//!   state view, treating *pending transitions* pessimistically — a
//!   device whose TS firmware differs from its OS firmware is about to
//!   reboot, so the projection counts it down. This pessimism is what
//!   lets the checker block the Fig-2 disaster before any command is
//!   issued.

use statesman_topology::{HealthView, NetworkGraph};
use statesman_types::{Attribute, Column, EntityName, NetworkState, Pool, StateKey, Value, VarId};
use std::collections::HashMap;

/// Anything that can answer point lookups over one pool of rows.
///
/// The primitive is [`StateView::get_var`] on a compact [`VarId`]; the
/// string-key and (entity, attribute) conveniences intern once and
/// delegate, so no lookup clones an entity name.
pub trait StateView {
    /// The row stored for the variable, if any.
    fn get_var(&self, var: VarId) -> Option<&NetworkState>;

    /// The row stored for `key`, if any.
    fn get(&self, key: &StateKey) -> Option<&NetworkState> {
        self.get_var(key.var_id())
    }

    /// Convenience: the value stored for (entity, attribute).
    fn value_of(&self, entity: &EntityName, attribute: Attribute) -> Option<&Value> {
        self.get_var(VarId::of(entity, attribute)).map(|r| &r.value)
    }
}

/// A materialized snapshot of one pool, in one of two representations:
///
/// * **hash** — `HashMap<VarId, NetworkState>`, the default for small
///   ephemeral views (candidate overlays, per-pass TS upsert staging) and
///   the reference the columnar plane is property-tested against;
/// * **columnar** — a [`Column`] over the process-wide per-pool slot
///   space, used for the long-lived delta-maintained mirrors (checker
///   part cache, updater read mirrors, monitor diff base):
///   [`MapView::apply_delta`] writes straight into slots, deletes are
///   tombstones, and iteration is bitmap-driven.
///
/// Either way the rows keep their entity names, so draining back to a
/// sorted row list never consults the interner.
#[derive(Debug, Clone)]
enum ViewRepr {
    Hash(HashMap<VarId, NetworkState>),
    Columnar(Column),
}

/// A materialized snapshot of one pool. See the representation notes on
/// [`ViewRepr`]: hash-backed by default, columnar (slot-indexed) when
/// built with [`MapView::columnar`].
#[derive(Debug, Clone)]
pub struct MapView {
    repr: ViewRepr,
}

impl Default for MapView {
    fn default() -> Self {
        MapView {
            repr: ViewRepr::Hash(HashMap::new()),
        }
    }
}

impl MapView {
    /// An empty hash-backed view.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty columnar view over `pool`'s slot space.
    pub fn columnar(pool: Pool) -> Self {
        MapView {
            repr: ViewRepr::Columnar(Column::new(pool)),
        }
    }

    /// True when this view is columnar (slot-indexed).
    pub fn is_columnar(&self) -> bool {
        matches!(self.repr, ViewRepr::Columnar(_))
    }

    /// Build a hash-backed view from a row list (later duplicates shadow
    /// earlier ones).
    pub fn from_rows(rows: impl IntoIterator<Item = NetworkState>) -> Self {
        let mut v = MapView::new();
        for r in rows {
            v.upsert(r);
        }
        v
    }

    /// Build a columnar view over `pool` from a row list.
    pub fn columnar_from_rows(pool: Pool, rows: impl IntoIterator<Item = NetworkState>) -> Self {
        let mut v = MapView::columnar(pool);
        for r in rows {
            v.upsert(r);
        }
        v
    }

    /// Insert or replace one row.
    pub fn upsert(&mut self, row: NetworkState) {
        match &mut self.repr {
            ViewRepr::Hash(rows) => {
                rows.insert(row.var_id(), row);
            }
            ViewRepr::Columnar(col) => {
                col.upsert(row);
            }
        }
    }

    /// Remove one row by variable id (a tombstone on columnar views: the
    /// slot is never reclaimed).
    pub fn remove_var(&mut self, var: VarId) -> Option<NetworkState> {
        match &mut self.repr {
            ViewRepr::Hash(rows) => rows.remove(&var),
            ViewRepr::Columnar(col) => col.remove_var(var),
        }
    }

    /// Remove one row.
    pub fn remove(&mut self, key: &StateKey) -> Option<NetworkState> {
        self.remove_var(key.var_id())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match &self.repr {
            ViewRepr::Hash(rows) => rows.len(),
            ViewRepr::Columnar(col) => col.len(),
        }
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remove every row (columnar views keep their slots and arena, so a
    /// rebuild writes straight back into place).
    pub fn clear(&mut self) {
        match &mut self.repr {
            ViewRepr::Hash(rows) => rows.clear(),
            ViewRepr::Columnar(col) => col.clear(),
        }
    }

    /// Iterate all rows (hash: unordered; columnar: slot order).
    pub fn rows(&self) -> RowsIter<'_> {
        match &self.repr {
            ViewRepr::Hash(rows) => RowsIter::Hash(rows.values()),
            ViewRepr::Columnar(col) => RowsIter::Columnar(col.iter()),
        }
    }

    /// Drain into a row list, sorted by string-key order for determinism
    /// (id and slot order are execution-dependent; see
    /// `statesman_types::intern`).
    pub fn into_sorted_rows(self) -> Vec<NetworkState> {
        let mut v: Vec<NetworkState> = match self.repr {
            ViewRepr::Hash(rows) => rows.into_values().collect(),
            ViewRepr::Columnar(col) => col.rows().cloned().collect(),
        };
        v.sort_by(|a, b| a.key_ref().cmp(&b.key_ref()));
        v
    }

    /// Approximate resident bytes (columnar views only; hash views report
    /// zero — the gauge tracks the columnar plane).
    pub fn approx_bytes(&self) -> usize {
        match &self.repr {
            ViewRepr::Hash(_) => 0,
            ViewRepr::Columnar(col) => col.approx_bytes(),
        }
    }

    /// Advance the view by a storage changefeed delta: deletes remove,
    /// upserts replace, and a `snapshot: true` delta rebuilds the view
    /// wholesale (the storage fallback when the change index cannot serve
    /// the gap). Applying deltas in watermark order keeps the view
    /// bit-equal to a fresh full read — the property the delta-driven
    /// state plane is tested against. On columnar views this writes
    /// straight into slots; a snapshot rebuild keeps the arena.
    pub fn apply_delta(&mut self, delta: statesman_types::StateDelta) {
        if delta.snapshot {
            self.clear();
        }
        for key in &delta.deletes {
            self.remove_var(key.var_id());
        }
        for row in delta.upserts {
            self.upsert(row);
        }
    }
}

/// Iterator over a [`MapView`]'s rows, either representation.
pub enum RowsIter<'a> {
    /// Hash-backed iteration (unordered).
    Hash(std::collections::hash_map::Values<'a, VarId, NetworkState>),
    /// Columnar iteration (slot order, bitmap-driven).
    Columnar(statesman_types::ColumnIter<'a>),
}

impl<'a> Iterator for RowsIter<'a> {
    type Item = &'a NetworkState;

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            RowsIter::Hash(it) => it.next(),
            RowsIter::Columnar(it) => it.next().map(|(_, r)| r),
        }
    }
}

impl StateView for MapView {
    fn get_var(&self, var: VarId) -> Option<&NetworkState> {
        match &self.repr {
            ViewRepr::Hash(rows) => rows.get(&var),
            ViewRepr::Columnar(col) => col.get_var(var),
        }
    }
}

/// A delta layered over a base view. Lookups hit the overlay first.
pub struct OverlayView<'a, B: StateView + ?Sized> {
    base: &'a B,
    overlay: &'a MapView,
}

impl<'a, B: StateView + ?Sized> OverlayView<'a, B> {
    /// Layer `overlay` over `base`.
    pub fn new(base: &'a B, overlay: &'a MapView) -> Self {
        OverlayView { base, overlay }
    }
}

impl<B: StateView + ?Sized> StateView for OverlayView<'_, B> {
    fn get_var(&self, var: VarId) -> Option<&NetworkState> {
        self.overlay.get_var(var).or_else(|| self.base.get_var(var))
    }
}

/// Derive the effective health of every device and link in `graph` from an
/// observed-state view `os`, optionally projecting a target-state view
/// `ts` over it.
///
/// Rules (pessimistic about transitions):
///
/// * a device is down if its (projected) `DeviceAdminPower` is off;
/// * a device is *transitioning* — counted down — if the TS proposes a
///   different `DeviceFirmwareVersion` or `DeviceBootImage` than the OS
///   observes (the updater will reboot it);
/// * a link is down if its (projected) `LinkAdminPower` is off, or the OS
///   reports `LinkOperStatus` down (covers physical faults and
///   unreachable endpoints);
/// * down devices take their links down implicitly via
///   [`HealthView::link_usable`].
pub fn project_health(
    graph: &NetworkGraph,
    os: &dyn StateView,
    ts: Option<&dyn StateView>,
) -> HealthView {
    let mut health = HealthView::all_up();

    for (_, node) in graph.nodes() {
        let entity = EntityName::device(node.datacenter.clone(), node.name.clone());
        if device_projected_down(&entity, os, ts) {
            health.set_device_down(node.name.clone());
        }
    }

    for (_, edge) in graph.edges() {
        let entity = EntityName::link_named(edge.datacenter.clone(), edge.name.clone());
        if link_projected_down(&entity, os, ts) {
            health.set_link_down(edge.name.clone());
        }
    }

    health
}

/// The device projection rule (see [`project_health`]): admin power off,
/// or a pending firmware/boot transition (TS differs from OS).
pub fn device_projected_down(
    entity: &EntityName,
    os: &dyn StateView,
    ts: Option<&dyn StateView>,
) -> bool {
    // Projected admin power: TS wins if it says anything.
    let admin = ts
        .and_then(|t| t.value_of(entity, Attribute::DeviceAdminPower))
        .or_else(|| os.value_of(entity, Attribute::DeviceAdminPower));
    if let Some(v) = admin {
        if v.as_power().map(|p| !p.is_on()).unwrap_or(false) {
            return true;
        }
    }
    // Pending firmware/boot transitions imply an upcoming reboot.
    if let Some(ts) = ts {
        for attr in [Attribute::DeviceFirmwareVersion, Attribute::DeviceBootImage] {
            let target = ts.value_of(entity, attr);
            let observed = os.value_of(entity, attr);
            if let Some(target) = target {
                if Some(target) != observed {
                    return true;
                }
            }
        }
    }
    false
}

/// The link projection rule (see [`project_health`]): projected admin
/// power off, or observed oper-down.
pub fn link_projected_down(
    entity: &EntityName,
    os: &dyn StateView,
    ts: Option<&dyn StateView>,
) -> bool {
    let admin = ts
        .and_then(|t| t.value_of(entity, Attribute::LinkAdminPower))
        .or_else(|| os.value_of(entity, Attribute::LinkAdminPower));
    if let Some(v) = admin {
        if v.as_power().map(|p| !p.is_on()).unwrap_or(false) {
            return true;
        }
    }
    if let Some(v) = os.value_of(entity, Attribute::LinkOperStatus) {
        if v.as_oper().map(|o| !o.is_up()).unwrap_or(false) {
            return true;
        }
    }
    false
}

/// Re-run the projection rules for just `entities` against the current
/// OS/TS views, updating `health` in place — the blast-radius analogue of
/// a full [`project_health`]. Entities absent from the graph (and paths,
/// which carry no health) are skipped. Re-projection is idempotent, so
/// covering an entity that did not actually change is harmless.
pub fn reproject_entities(
    graph: &NetworkGraph,
    os: &dyn StateView,
    ts: &dyn StateView,
    entities: &[EntityName],
    health: &mut HealthView,
) {
    for entity in entities {
        match entity.kind() {
            statesman_types::EntityKind::Device => {
                let Some(dev) = entity.as_device() else {
                    continue;
                };
                if graph.node_id(dev).is_none() {
                    continue;
                }
                if device_projected_down(entity, os, Some(ts)) {
                    health.set_device_down(dev.clone());
                } else {
                    health.set_device_up(dev);
                }
            }
            statesman_types::EntityKind::Link => {
                let Some(link) = entity.as_link() else {
                    continue;
                };
                if graph.edge_id(link).is_none() {
                    continue;
                }
                if link_projected_down(entity, os, Some(ts)) {
                    health.set_link_down(link.clone());
                } else {
                    health.set_link_up(link);
                }
            }
            statesman_types::EntityKind::Path => {}
        }
    }
}

/// A reversible, entity-scoped health update: re-evaluate the projection
/// for just the entities a candidate touches, remembering prior states so
/// a rejected candidate can be rolled back. This keeps checker passes
/// linear in proposal count instead of O(proposals × topology).
#[derive(Debug, Default)]
pub struct HealthDelta {
    devices: Vec<(statesman_types::DeviceName, bool)>,
    links: Vec<(statesman_types::LinkName, bool)>,
}

impl HealthDelta {
    /// Apply the projection rules for the entities of `rows` against
    /// `health`, recording prior states.
    pub fn apply(
        graph: &NetworkGraph,
        os: &dyn StateView,
        ts_with_candidate: &dyn StateView,
        rows: &[NetworkState],
        health: &mut HealthView,
    ) -> HealthDelta {
        let mut delta = HealthDelta::default();
        let mut seen_devices = std::collections::HashSet::new();
        let mut seen_links = std::collections::HashSet::new();
        for row in rows {
            match row.entity.kind() {
                statesman_types::EntityKind::Device => {
                    let Some(dev) = row.entity.as_device() else {
                        continue;
                    };
                    if !seen_devices.insert(dev.clone()) || graph.node_id(dev).is_none() {
                        continue;
                    }
                    let was_down = !health.device_up(dev);
                    let now_down = device_projected_down(&row.entity, os, Some(ts_with_candidate));
                    if was_down != now_down {
                        delta.devices.push((dev.clone(), was_down));
                        if now_down {
                            health.set_device_down(dev.clone());
                        } else {
                            health.set_device_up(dev);
                        }
                    }
                }
                statesman_types::EntityKind::Link => {
                    let Some(link) = row.entity.as_link() else {
                        continue;
                    };
                    if !seen_links.insert(link.clone()) || graph.edge_id(link).is_none() {
                        continue;
                    }
                    let was_down = !health.link_up(link);
                    let now_down = link_projected_down(&row.entity, os, Some(ts_with_candidate));
                    if was_down != now_down {
                        delta.links.push((link.clone(), was_down));
                        if now_down {
                            health.set_link_down(link.clone());
                        } else {
                            health.set_link_up(link);
                        }
                    }
                }
                statesman_types::EntityKind::Path => {
                    // Path rows do not change device/link health.
                }
            }
        }
        delta
    }

    /// Roll the delta back (restore the recorded prior states).
    pub fn revert(self, health: &mut HealthView) {
        for (dev, was_down) in self.devices {
            if was_down {
                health.set_device_down(dev);
            } else {
                health.set_device_up(&dev);
            }
        }
        for (link, was_down) in self.links {
            if was_down {
                health.set_link_down(link);
            } else {
                health.set_link_up(&link);
            }
        }
    }

    /// True if the delta changed nothing.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty() && self.links.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use statesman_topology::DcnSpec;
    use statesman_types::{AppId, SimTime};

    fn os_row(entity: EntityName, attr: Attribute, value: Value) -> NetworkState {
        NetworkState::new(entity, attr, value, SimTime::ZERO, AppId::monitor())
    }

    fn dev(name: &str) -> EntityName {
        EntityName::device("dc1", name)
    }

    #[test]
    fn map_view_lookup_and_shadowing() {
        let v = MapView::from_rows([
            os_row(dev("a"), Attribute::DeviceFirmwareVersion, Value::text("1")),
            os_row(dev("a"), Attribute::DeviceFirmwareVersion, Value::text("2")),
        ]);
        assert_eq!(v.len(), 1);
        assert_eq!(
            v.value_of(&dev("a"), Attribute::DeviceFirmwareVersion),
            Some(&Value::text("2"))
        );
        assert_eq!(v.value_of(&dev("a"), Attribute::DeviceBootImage), None);
    }

    #[test]
    fn columnar_view_round_trip() {
        let mut v = MapView::columnar(Pool::Observed);
        assert!(v.is_columnar() && v.is_empty());
        v.upsert(os_row(
            dev("a"),
            Attribute::DeviceFirmwareVersion,
            Value::text("1"),
        ));
        v.upsert(os_row(
            dev("a"),
            Attribute::DeviceFirmwareVersion,
            Value::text("2"),
        ));
        v.upsert(os_row(
            dev("b"),
            Attribute::DeviceBootImage,
            Value::text("x"),
        ));
        assert_eq!(v.len(), 2);
        assert_eq!(
            v.value_of(&dev("a"), Attribute::DeviceFirmwareVersion),
            Some(&Value::text("2"))
        );
        assert!(v.approx_bytes() > 0);

        // Tombstone via var id (the mirror-delete path) and via key.
        let var = StateKey::new(dev("a"), Attribute::DeviceFirmwareVersion).var_id();
        assert_eq!(v.remove_var(var).map(|r| r.value), Some(Value::text("2")));
        assert_eq!(v.remove_var(var), None);
        let removed = v.remove(&StateKey::new(dev("b"), Attribute::DeviceBootImage));
        assert_eq!(removed.map(|r| r.value), Some(Value::text("x")));
        assert!(v.is_empty());

        // Clear keeps the representation columnar.
        v.upsert(os_row(
            dev("c"),
            Attribute::DeviceBootImage,
            Value::text("y"),
        ));
        v.clear();
        assert!(v.is_columnar() && v.is_empty());
    }

    #[test]
    fn columnar_view_snapshot_delta_replaces_contents() {
        let mut v = MapView::columnar_from_rows(
            Pool::Observed,
            [os_row(
                dev("a"),
                Attribute::DeviceFirmwareVersion,
                Value::text("1"),
            )],
        );
        let snap = statesman_types::StateDelta::full_snapshot(
            vec![os_row(
                dev("b"),
                Attribute::DeviceBootImage,
                Value::text("x"),
            )],
            statesman_types::Version(9),
        );
        v.apply_delta(snap);
        assert!(v.is_columnar());
        assert_eq!(v.len(), 1);
        assert_eq!(
            v.value_of(&dev("a"), Attribute::DeviceFirmwareVersion),
            None
        );
        assert_eq!(
            v.value_of(&dev("b"), Attribute::DeviceBootImage),
            Some(&Value::text("x"))
        );
    }

    #[test]
    fn overlay_shadows_base() {
        let base = MapView::from_rows([os_row(
            dev("a"),
            Attribute::DeviceFirmwareVersion,
            Value::text("6.0"),
        )]);
        let over = MapView::from_rows([os_row(
            dev("a"),
            Attribute::DeviceFirmwareVersion,
            Value::text("7.0"),
        )]);
        let o = OverlayView::new(&base, &over);
        assert_eq!(
            o.value_of(&dev("a"), Attribute::DeviceFirmwareVersion),
            Some(&Value::text("7.0"))
        );
        // Fall-through for keys absent in overlay.
        let empty = MapView::new();
        let o2 = OverlayView::new(&base, &empty);
        assert_eq!(
            o2.value_of(&dev("a"), Attribute::DeviceFirmwareVersion),
            Some(&Value::text("6.0"))
        );
    }

    #[test]
    fn projection_all_up_by_default() {
        let g = DcnSpec::tiny("dc1").build();
        let os = MapView::new();
        let h = project_health(&g, &os, None);
        assert_eq!(h.outage_count(), 0);
    }

    #[test]
    fn projection_honors_admin_power() {
        let g = DcnSpec::tiny("dc1").build();
        let os = MapView::from_rows([os_row(
            dev("agg-1-1"),
            Attribute::DeviceAdminPower,
            Value::power(false),
        )]);
        let h = project_health(&g, &os, None);
        assert!(!h.device_up(&"agg-1-1".into()));
    }

    #[test]
    fn pending_firmware_transition_counts_device_down() {
        // The heart of safe upgrade merging: a TS firmware differing from
        // OS means the device is about to reboot.
        let g = DcnSpec::tiny("dc1").build();
        let os = MapView::from_rows([os_row(
            dev("agg-1-1"),
            Attribute::DeviceFirmwareVersion,
            Value::text("6.0"),
        )]);
        let ts = MapView::from_rows([os_row(
            dev("agg-1-1"),
            Attribute::DeviceFirmwareVersion,
            Value::text("7.0"),
        )]);
        let h = project_health(&g, &os, Some(&ts));
        assert!(!h.device_up(&"agg-1-1".into()));

        // Once OS catches up, the projection is clean again.
        let os2 = MapView::from_rows([os_row(
            dev("agg-1-1"),
            Attribute::DeviceFirmwareVersion,
            Value::text("7.0"),
        )]);
        let h2 = project_health(&g, &os2, Some(&ts));
        assert!(h2.device_up(&"agg-1-1".into()));
    }

    #[test]
    fn projection_honors_link_state() {
        let g = DcnSpec::tiny("dc1").build();
        let link = statesman_types::LinkName::between("tor-1-1", "agg-1-1");
        let le = EntityName::link_named("dc1", link.clone());
        // Oper-down from the OS.
        let os = MapView::from_rows([os_row(
            le.clone(),
            Attribute::LinkOperStatus,
            Value::oper(false),
        )]);
        let h = project_health(&g, &os, None);
        assert!(!h.link_up(&link));

        // Admin-down proposed in the TS.
        let os2 = MapView::new();
        let ts = MapView::from_rows([os_row(le, Attribute::LinkAdminPower, Value::power(false))]);
        let h2 = project_health(&g, &os2, Some(&ts));
        assert!(!h2.link_up(&link));
    }

    #[test]
    fn apply_delta_upserts_deletes_and_snapshots() {
        let mut v = MapView::from_rows([
            os_row(dev("a"), Attribute::DeviceFirmwareVersion, Value::text("1")),
            os_row(dev("b"), Attribute::DeviceFirmwareVersion, Value::text("1")),
        ]);
        // Incremental: update a, delete b, add c.
        v.apply_delta(statesman_types::StateDelta::incremental(
            vec![
                os_row(dev("a"), Attribute::DeviceFirmwareVersion, Value::text("2")),
                os_row(dev("c"), Attribute::DeviceFirmwareVersion, Value::text("1")),
            ],
            vec![StateKey::new(dev("b"), Attribute::DeviceFirmwareVersion)],
            statesman_types::Version(7),
        ));
        assert_eq!(v.len(), 2);
        assert_eq!(
            v.value_of(&dev("a"), Attribute::DeviceFirmwareVersion),
            Some(&Value::text("2"))
        );
        assert_eq!(
            v.value_of(&dev("b"), Attribute::DeviceFirmwareVersion),
            None
        );
        // Snapshot: wholesale replacement.
        v.apply_delta(statesman_types::StateDelta::full_snapshot(
            vec![os_row(
                dev("z"),
                Attribute::DeviceFirmwareVersion,
                Value::text("9"),
            )],
            statesman_types::Version(9),
        ));
        assert_eq!(v.len(), 1);
        assert_eq!(
            v.value_of(&dev("z"), Attribute::DeviceFirmwareVersion),
            Some(&Value::text("9"))
        );
    }

    #[test]
    fn sorted_rows_are_deterministic() {
        let v = MapView::from_rows([
            os_row(dev("b"), Attribute::DeviceFirmwareVersion, Value::text("1")),
            os_row(dev("a"), Attribute::DeviceFirmwareVersion, Value::text("1")),
        ]);
        let rows = v.into_sorted_rows();
        assert!(rows[0].entity < rows[1].entity);
    }
}
