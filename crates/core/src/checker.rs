//! The checker: conflict resolver and invariant guardian (paper §3, §4.2).
//!
//! One checker pass, for one impact group:
//!
//! 1. **Read** the group's observed state (OS), every application's
//!    proposed state (PS), and the current target state (TS) from the
//!    storage service.
//! 2. **Reconcile TS against the changing OS**: a TS row whose variable
//!    has become uncontrollable (per the dependency model) is dropped —
//!    "conflicts due to the changing OS ... solution: simply reject".
//!    Satisfied TS rows are kept: the TS is "the accumulation of all
//!    accepted in the past", and the updater derives work from the OS−TS
//!    *difference*, so satisfied rows are simply quiescent.
//! 3. **Process proposals** grouped by (application, entity) in
//!    deterministic order: validate well-formedness and permissions,
//!    detect already-satisfied proposals, check controllability against
//!    the OS, arbitrate entity locks, resolve same-key conflicts by the
//!    configured [`MergePolicy`], and finally check every operator
//!    invariant against the *projected* network state (OS + TS + this
//!    candidate). Groups that survive merge into the working TS; each row
//!    gets a [`WriteReceipt`].
//! 4. **Persist**: write TS upserts/deletes, clear the consumed PS rows,
//!    and post receipts for applications to poll.
//!
//! The pass is synchronous and deterministic; its wall-clock time is the
//! checker latency the paper reports (<10 s at 394K variables, §8).

use crate::deps::{blast_radius, DependencyModel};
use crate::engine::WorkerPool;
use crate::groups::ImpactGroup;
use crate::invariants::{Invariant, InvariantContext, Violation};
use crate::locks;
use crate::view::{project_health, reproject_entities, MapView, OverlayView, StateView};
use parking_lot::Mutex;
use statesman_storage::{ReadRequest, StorageService, WriteRequest};
use statesman_topology::{HealthView, NetworkGraph};
use statesman_types::{
    AppId, DatacenterId, DependencyLevel, DeviceName, Freshness, NetworkState, Pool, SimTime,
    StateKey, StateResult, Value, VarId, Version, WriteOutcome, WriteReceipt,
};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::time::{Duration, Instant};

/// How same-key conflicts between applications are resolved (§4.2: "one
/// of two configurable mechanisms").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergePolicy {
    /// The proposal with the newer timestamp wins; older same-key
    /// proposals are rejected as conflicts.
    LastWriterWins,
    /// Entity locks gate writes (Fig 10); keys on unlocked entities fall
    /// back to last-writer-wins.
    PriorityLock,
}

/// Checker construction knobs.
pub struct CheckerConfig {
    /// This checker's scope.
    pub group: ImpactGroup,
    /// Conflict-resolution policy.
    pub policy: MergePolicy,
}

/// One pass's outcome.
#[derive(Debug, Clone)]
pub struct CheckerPassReport {
    /// The group this pass covered.
    pub group: String,
    /// Proposal rows read.
    pub proposals_seen: usize,
    /// Rows merged into the TS.
    pub accepted: usize,
    /// Rows rejected (all reasons).
    pub rejected: usize,
    /// Rows whose proposed value already matched the OS.
    pub already_satisfied: usize,
    /// TS rows dropped because the changing OS made them uncontrollable.
    pub ts_pruned: usize,
    /// Proposal rows rejected because they touch a quarantined device
    /// (its OS rows are stale, so the checker refuses to act on them).
    pub quarantine_rejected: usize,
    /// Every receipt issued this pass.
    pub receipts: Vec<WriteReceipt>,
    /// Wall-clock time of the pass (the §8 checker latency).
    pub elapsed: Duration,
    /// State variables read at pass start (scale metric).
    pub variables_read: usize,
}

impl CheckerPassReport {
    /// Receipts for one application.
    pub fn receipts_for(&self, app: &AppId) -> Vec<&WriteReceipt> {
        self.receipts.iter().filter(|r| &r.app == app).collect()
    }
}

/// One partition's pool, mirrored checker-side and advanced by storage
/// changefeed deltas between passes. `group_rows` counts the mirror rows
/// that belong to this checker's group — maintained incrementally so the
/// zero-copy columnar read path can report `variables_read` without a
/// scan.
#[derive(Default)]
struct CachedPart {
    view: MapView,
    watermark: Version,
    group_rows: usize,
}

/// The change footprint accumulated while advancing mirrors for one pass:
/// the group rows the round's deltas upserted (current values) and
/// deleted (keys). Feeds [`blast_radius`]. `full` means tracking was
/// abandoned — a snapshot-fallback delta arrived (the mirror was
/// rebuilt wholesale, e.g. after a change-index compaction) or the churn
/// exceeded [`SEED_TRACK_LIMIT`] — and the pass must reseed from scratch.
#[derive(Default)]
struct ChangeTrack {
    rows: Vec<NetworkState>,
    keys: Vec<StateKey>,
    full: bool,
}

/// Above this many tracked changes a full reseed is cheaper than
/// radius-by-radius re-projection.
const SEED_TRACK_LIMIT: usize = 8_192;

/// The previous pass's seed, carried across passes by the incremental
/// checker: the projected health of the whole group and every
/// invariant's verdict against it. A pass whose change track is exact
/// re-projects only the blast radius and re-evaluates only the affected
/// invariants; everything else keeps these cached values. Taken (and
/// thus invalidated) at the start of every non-skipped pass and only
/// stored back after the pass fully persists, so an error mid-pass
/// forces the next pass to reseed.
struct SeedCache {
    health: HealthView,
    verdicts: Vec<Option<Violation>>,
}

/// The observed-state view a pass reasons over: an owned copy (hash
/// path, quarantine fallback) or zero-copy references into the columnar
/// partition mirrors. The mirrors hold every row of their partitions, so
/// the zero-copy lookup re-applies the group filter per hit — DC groups
/// exclude border devices homed in their own partition.
enum OsView<'a> {
    Owned(MapView),
    Mirrors(Vec<&'a MapView>, &'a ImpactGroup),
}

impl StateView for OsView<'_> {
    fn get_var(&self, var: VarId) -> Option<&NetworkState> {
        match self {
            OsView::Owned(v) => v.get_var(var),
            OsView::Mirrors(parts, group) => {
                for p in parts {
                    if let Some(r) = p.get_var(var) {
                        // A variable is homed in exactly one partition.
                        return group.contains(&r.entity).then_some(r);
                    }
                }
                None
            }
        }
    }
}

/// Evidence that the last pass was a pure no-op: the partition-level
/// watermarks it ran against, and the variables it read. While every
/// watermark stays put, re-running the pass is provably the same no-op
/// (the pass is a deterministic function of pool contents), so it can be
/// skipped outright. Lock rows are the one time-dependent input — a pass
/// over a lock-bearing TS is never recorded as skippable.
#[derive(PartialEq)]
struct QuiescentMark {
    marks: Vec<(DatacenterId, Version)>,
    variables_read: usize,
}

/// The checker for one impact group.
pub struct Checker {
    config: CheckerConfig,
    model: DependencyModel,
    invariants: Vec<Box<dyn Invariant>>,
    graph: NetworkGraph,
    /// Read pools incrementally via `read_since` (default). Disabled, the
    /// checker re-reads full pools every pass — the pre-delta behavior.
    delta_reads: bool,
    /// Columnar state plane (default). Partition mirrors are slot-indexed
    /// [`Column`](statesman_types::Column)s read zero-copy, and the seed
    /// evaluation is blast-radius incremental. Disabled, mirrors are hash
    /// maps, the OS is copied out per pass, and every pass seeds with a
    /// full projection + invariant sweep — the pre-columnar behavior the
    /// equivalence suite compares against.
    columnar_state: bool,
    /// Per-(pool, partition) mirror advanced by deltas. Entries are
    /// invalidated whenever a pass cannot use the delta path, so the next
    /// delta pass re-seeds from a consistent `read_since` reply.
    part_cache: Mutex<HashMap<(Pool, DatacenterId), CachedPart>>,
    /// Pool for the pure fan-out stages (seed invariant sweeps). The
    /// per-candidate gate below stays serial: invariant caches make
    /// evaluation *order* observable once a candidate is rejected, and
    /// the determinism contract forbids that. Seed sweeps evaluate every
    /// invariant unconditionally, so order cannot leak there.
    workers: WorkerPool,
    /// Carried-over seed for the blast-radius incremental checker.
    seed_cache: Mutex<Option<SeedCache>>,
    /// Set iff the previous pass was a recorded no-op (see
    /// [`QuiescentMark`]); cleared by quarantine passes, disabled delta
    /// reads, or any pass that did work.
    quiescent: Mutex<Option<QuiescentMark>>,
    /// Times a pass's [`ChangeTrack`] silently degraded to a full reseed:
    /// churn beyond [`SEED_TRACK_LIMIT`], or a snapshot-fallback delta on
    /// an established mirror. Cumulative; surfaced by the coordinator as
    /// `checker_full_degrades_total` and on `/v1/status`, so blast-radius
    /// scoped checks can't quietly go whole-network.
    full_degrades: std::sync::atomic::AtomicU64,
}

impl Checker {
    /// Build a checker with the standard dependency model.
    pub fn new(config: CheckerConfig, graph: NetworkGraph) -> Self {
        Checker {
            config,
            model: DependencyModel::standard(),
            invariants: Vec::new(),
            graph,
            delta_reads: true,
            columnar_state: true,
            workers: WorkerPool::default(),
            part_cache: Mutex::new(HashMap::new()),
            seed_cache: Mutex::new(None),
            quiescent: Mutex::new(None),
            full_degrades: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Cumulative count of change-track degradations to a full reseed
    /// (see the `full_degrades` field). Monotone over this checker's life.
    pub fn full_degrades(&self) -> u64 {
        self.full_degrades
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Replace the dependency model (ablations / extensions).
    pub fn with_model(mut self, model: DependencyModel) -> Self {
        self.model = model;
        self
    }

    /// Enable or disable incremental pool reads (`true` by default).
    pub fn with_delta_reads(mut self, enabled: bool) -> Self {
        self.delta_reads = enabled;
        self
    }

    /// Enable or disable the columnar state plane — slot-indexed zero-copy
    /// mirrors plus the blast-radius incremental seed (`true` by default).
    pub fn with_columnar_state(mut self, enabled: bool) -> Self {
        self.columnar_state = enabled;
        self
    }

    /// Set the worker-thread count for the pure parallel stages (seed
    /// invariant sweeps). Defaults to `STATESMAN_WORKER_THREADS` / host
    /// parallelism; `1` forces the serial reference path.
    pub fn with_worker_threads(mut self, threads: usize) -> Self {
        self.workers = WorkerPool::new(threads);
        self
    }

    /// Install an operator invariant.
    pub fn add_invariant(&mut self, inv: Box<dyn Invariant>) {
        self.invariants.push(inv);
    }

    /// The group this checker covers.
    pub fn group(&self) -> &ImpactGroup {
        &self.config.group
    }

    fn group_ref(&self) -> &ImpactGroup {
        &self.config.group
    }

    /// Partition-level watermarks for every partition this group reads,
    /// or `None` when any is unreadable (offline partitions make
    /// quiescence unprovable — the pass must run and find out).
    fn partition_marks(&self, storage: &StorageService) -> Option<Vec<(DatacenterId, Version)>> {
        self.group_partitions(storage)
            .into_iter()
            .map(|dc| storage.partition_watermark(&dc).ok().map(|v| (dc, v)))
            .collect()
    }

    /// The partitions this group's entities are homed in.
    fn group_partitions(&self, storage: &StorageService) -> Vec<DatacenterId> {
        match self.group_ref() {
            // A DC group's entities are all homed in its own partition.
            ImpactGroup::Datacenter(dc) => vec![dc.clone()],
            // The WAN group spans the WAN partition (inter-DC links) and
            // every DC partition (border routers are homed at home); the
            // global group spans everything by definition.
            ImpactGroup::Wan | ImpactGroup::Global => storage.partitions(),
        }
    }

    /// Read every row of `pool` that belongs to this group. With
    /// `use_delta`, each partition's pool is mirrored checker-side and
    /// advanced by `read_since` deltas — pass cost scales with churn, not
    /// pool size. Without it (quarantine passes, or delta reads disabled)
    /// the pool is re-read in full and the mirror invalidated, so the
    /// next delta pass re-seeds from one consistent changefeed reply.
    fn read_group_pool(
        &self,
        cache: &mut HashMap<(Pool, DatacenterId), CachedPart>,
        storage: &StorageService,
        pool: &Pool,
        use_delta: bool,
        mut track: Option<&mut ChangeTrack>,
    ) -> StateResult<Vec<NetworkState>> {
        let mut rows = Vec::new();
        for dc in self.group_partitions(storage) {
            if use_delta {
                self.advance_partition(cache, storage, pool, &dc, track.as_deref_mut())?;
                let entry = &cache[&(pool.clone(), dc)];
                rows.extend(
                    entry
                        .view
                        .rows()
                        .filter(|r| self.group_ref().contains(&r.entity))
                        .cloned(),
                );
            } else {
                cache.remove(&(pool.clone(), dc.clone()));
                let part_rows = storage.read(ReadRequest {
                    datacenter: dc,
                    pool: pool.clone(),
                    freshness: Freshness::UpToDate,
                    entity: None,
                    attribute: None,
                })?;
                rows.extend(
                    part_rows
                        .into_iter()
                        .filter(|r| self.group_ref().contains(&r.entity)),
                );
            }
        }
        Ok(rows)
    }

    /// Advance one partition mirror by its `read_since` delta, keeping the
    /// group-row count exact and (when `track` is given) recording the
    /// group rows the delta changed — the input to [`blast_radius`]. A
    /// snapshot-fallback delta rebuilds the mirror wholesale and abandons
    /// tracking: the change set is unknowable, so the pass must reseed.
    fn advance_partition(
        &self,
        cache: &mut HashMap<(Pool, DatacenterId), CachedPart>,
        storage: &StorageService,
        pool: &Pool,
        dc: &DatacenterId,
        mut track: Option<&mut ChangeTrack>,
    ) -> StateResult<()> {
        let key = (pool.clone(), dc.clone());
        let since = cache.get(&key).map(|e| e.watermark).unwrap_or_default();
        let delta = storage.read_since(dc, pool, since)?;
        let entry = cache.entry(key).or_insert_with(|| CachedPart {
            view: if self.columnar_state {
                MapView::columnar(pool.clone())
            } else {
                MapView::new()
            },
            watermark: Version::default(),
            group_rows: 0,
        });
        entry.watermark = delta.watermark;
        if delta.snapshot {
            if let Some(t) = track.as_deref_mut() {
                // A snapshot on an established mirror (change-index
                // compaction fallback) is a silent whole-network degrade;
                // the very first seed of a fresh mirror is not.
                if !t.full && since != Version::default() {
                    self.full_degrades
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
                t.full = true;
                t.rows.clear();
                t.keys.clear();
            }
            entry.view.apply_delta(delta);
            entry.group_rows = entry
                .view
                .rows()
                .filter(|r| self.group_ref().contains(&r.entity))
                .count();
            return Ok(());
        }
        // Counter-level variables (cpu/mem telemetry) never enter the
        // health projection or any invariant — see `project_health` —
        // so they contribute nothing to the blast radius. Filtering
        // them here keeps the steady-state radius empty under pure
        // telemetry churn (every device's counters walk every round,
        // which would otherwise touch every pod and re-solve the whole
        // capacity panel) and keeps heavy telemetry rounds under
        // `SEED_TRACK_LIMIT`.
        let radius_relevant =
            |attr: statesman_types::Attribute| attr.dependency_level() != DependencyLevel::Counter;
        for k in &delta.deletes {
            if let Some(old) = entry.view.get_var(k.var_id()) {
                if self.group_ref().contains(&old.entity) {
                    entry.group_rows -= 1;
                    if let Some(t) = track.as_deref_mut() {
                        if !t.full && radius_relevant(k.attribute) {
                            t.keys.push(k.clone());
                        }
                    }
                }
            }
        }
        for row in &delta.upserts {
            if self.group_ref().contains(&row.entity) {
                if entry.view.get_var(row.var_id()).is_none() {
                    entry.group_rows += 1;
                }
                if let Some(t) = track.as_deref_mut() {
                    if !t.full && radius_relevant(row.attribute) {
                        t.rows.push(row.clone());
                    }
                }
            }
        }
        if let Some(t) = track {
            if !t.full && t.rows.len() + t.keys.len() > SEED_TRACK_LIMIT {
                self.full_degrades
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                t.full = true;
                t.rows.clear();
                t.keys.clear();
            }
        }
        entry.view.apply_delta(delta);
        Ok(())
    }

    /// The set of applications with proposals touching this group.
    fn proposing_apps(&self, storage: &StorageService) -> Vec<AppId> {
        let partitions: Vec<DatacenterId> = match self.group_ref() {
            ImpactGroup::Datacenter(dc) => vec![dc.clone()],
            ImpactGroup::Wan | ImpactGroup::Global => storage.partitions(),
        };
        let mut apps: Vec<AppId> = partitions
            .iter()
            .flat_map(|dc| storage.proposing_apps(dc))
            .collect();
        apps.sort();
        apps.dedup();
        apps
    }

    /// Pods touched by a set of entities (for incremental invariant
    /// evaluation).
    /// Returns `None` when any touched device is pod-less (core/border)
    /// or unknown — such changes can have fabric-wide blast radius, so
    /// invariants must evaluate fully.
    fn touched_pods(&self, entities: &[&NetworkState]) -> Option<HashSet<(DatacenterId, u32)>> {
        let mut pods = HashSet::new();
        let mut global = false;
        let mut add_device = |name: &statesman_types::DeviceName| match self.graph.node_id(name) {
            Some(id) => {
                let info = self.graph.node(id);
                match info.pod {
                    Some(pod) => {
                        pods.insert((info.datacenter.clone(), pod));
                    }
                    None => global = true,
                }
            }
            None => global = true,
        };
        for row in entities {
            match &row.entity.body {
                statesman_types::entity::EntityBody::Device(d) => add_device(d),
                statesman_types::entity::EntityBody::Link(l) => {
                    add_device(&l.a);
                    add_device(&l.b);
                }
                statesman_types::entity::EntityBody::Path(_) => {
                    if let Some(list) = row.value.as_device_list() {
                        for d in list {
                            add_device(d);
                        }
                    }
                }
            }
        }
        if global {
            None
        } else {
            Some(pods)
        }
    }

    /// Run one checker pass against the storage service.
    pub fn run_pass(
        &self,
        storage: &StorageService,
        now: SimTime,
    ) -> StateResult<CheckerPassReport> {
        self.run_pass_with_unreachable(storage, now, &BTreeSet::new())
    }

    /// Run one checker pass treating `unreachable` devices (quarantined by
    /// the monitor; their OS rows are stale) conservatively: proposals
    /// touching them are rejected as uncontrollable, and unsatisfied TS
    /// rows on them are *kept* rather than pruned — stale observations can
    /// neither justify new actions nor revoke past decisions.
    pub fn run_pass_with_unreachable(
        &self,
        storage: &StorageService,
        now: SimTime,
        unreachable: &BTreeSet<DeviceName>,
    ) -> StateResult<CheckerPassReport> {
        let started = Instant::now();

        // ---- 0. quiescence short-circuit ----
        // If every partition's machine-wide watermark sits exactly where
        // the last recorded no-op pass left it, nothing any pool read
        // could return has changed, and this pass — a deterministic
        // function of pool contents — would repeat that no-op. Skip it.
        let use_delta = self.delta_reads && unreachable.is_empty();
        let marks = if use_delta {
            self.partition_marks(storage)
        } else {
            None
        };
        if let (Some(m), Some(prev)) = (marks.as_ref(), self.quiescent.lock().as_ref()) {
            if *m == prev.marks {
                return Ok(CheckerPassReport {
                    group: self.group_ref().name(),
                    proposals_seen: 0,
                    accepted: 0,
                    rejected: 0,
                    already_satisfied: 0,
                    ts_pruned: 0,
                    quarantine_rejected: 0,
                    receipts: Vec::new(),
                    elapsed: started.elapsed(),
                    variables_read: prev.variables_read,
                });
            }
        }

        // ---- 1. read OS, TS, PSes ----
        // Quarantine passes force the full-read fallback: stale-device
        // rounds are exactly when the mirror must not drift from storage.
        // The part-cache lock is held for the whole pass: the columnar
        // path reads the OS zero-copy out of the partition mirrors.
        let columnar_inc = use_delta && self.columnar_state;
        let mut cache = self.part_cache.lock();
        let mut track = ChangeTrack::default();
        let partitions = self.group_partitions(storage);

        let os_rows: Option<Vec<NetworkState>> = if columnar_inc {
            // Zero-copy OS: advance the mirrors in place, tracking the
            // changed group rows for the blast radius; the view is built
            // over mirror references below.
            for dc in &partitions {
                self.advance_partition(&mut cache, storage, &Pool::Observed, dc, Some(&mut track))?;
            }
            None
        } else {
            Some(self.read_group_pool(&mut cache, storage, &Pool::Observed, use_delta, None)?)
        };
        let ts_rows = self.read_group_pool(
            &mut cache,
            storage,
            &Pool::Target,
            use_delta,
            if columnar_inc { Some(&mut track) } else { None },
        )?;
        let apps = self.proposing_apps(storage);
        let mut proposals: Vec<(AppId, Vec<NetworkState>)> = Vec::new();
        for app in &apps {
            let ps = self.read_group_pool(
                &mut cache,
                storage,
                &Pool::Proposed(app.clone()),
                use_delta,
                None,
            )?;
            if !ps.is_empty() {
                proposals.push((app.clone(), ps));
            }
        }
        let os_vars = match &os_rows {
            Some(rows) => rows.len(),
            None => partitions
                .iter()
                .map(|dc| {
                    cache
                        .get(&(Pool::Observed, dc.clone()))
                        .map_or(0, |e| e.group_rows)
                })
                .sum(),
        };
        let variables_read =
            os_vars + ts_rows.len() + proposals.iter().map(|(_, p)| p.len()).sum::<usize>();

        let os: OsView<'_> = match os_rows {
            Some(rows) => OsView::Owned(MapView::from_rows(rows)),
            None => OsView::Mirrors(
                partitions
                    .iter()
                    .filter_map(|dc| cache.get(&(Pool::Observed, dc.clone())))
                    .map(|e| &e.view)
                    .collect(),
                self.group_ref(),
            ),
        };
        let mut ts = MapView::from_rows(ts_rows.clone());
        // Lock rows expire on the wall clock, not on writes — a TS
        // carrying any lock keeps the pass time-dependent and therefore
        // never skippable (see the quiescence short-circuit above).
        let ts_has_locks = ts_rows.iter().any(|r| r.attribute.is_lock());

        // ---- 2. TS ⁄ OS reconciliation ----
        let mut ts_deletes: Vec<StateKey> = Vec::new();
        let mut ts_pruned = 0usize;
        for row in ts_rows {
            if row.attribute.is_lock() {
                // Locks are Statesman metadata; they expire, not prune.
                if row
                    .value
                    .as_lock()
                    .map(|l| l.is_expired(now))
                    .unwrap_or(true)
                {
                    ts.remove_var(row.var_id());
                    if columnar_inc && !track.full {
                        track.keys.push(row.key());
                    }
                    ts_deletes.push(row.key());
                    ts_pruned += 1;
                }
                continue;
            }
            // Unsatisfied TS rows must still be controllable against the
            // latest OS; the changing network can invalidate them.
            let satisfied = os.value_of(&row.entity, row.attribute) == Some(&row.value);
            if satisfied {
                continue;
            }
            // A quarantined device's OS rows are stale: don't let them
            // revoke accepted intent. The row stays and the decision is
            // deferred until the device is polled again.
            if touches_unreachable(&row.entity, &row.value, unreachable) {
                continue;
            }
            if self
                .model
                .check_controllable(&row.key(), &row.value, &os)
                .is_err()
            {
                ts.remove_var(row.var_id());
                if columnar_inc && !track.full {
                    track.keys.push(row.key());
                }
                ts_deletes.push(row.key());
                ts_pruned += 1;
            }
        }

        // ---- 3. process proposals ----
        // Group rows by (app, entity); order groups by (earliest proposal
        // timestamp, app, entity) for deterministic, time-respecting
        // processing (the substrate of last-writer-wins).
        struct Group {
            app: AppId,
            rows: Vec<NetworkState>,
            earliest: SimTime,
        }
        let mut groups: Vec<Group> = Vec::new();
        for (app, rows) in proposals {
            let mut by_entity: BTreeMap<statesman_types::EntityName, Vec<NetworkState>> =
                BTreeMap::new();
            for r in rows {
                by_entity.entry(r.entity.clone()).or_default().push(r);
            }
            for (_, mut rows) in by_entity {
                rows.sort_by(|a, b| a.key_ref().cmp(&b.key_ref()));
                let earliest = rows.iter().map(|r| r.updated_at).min().unwrap();
                groups.push(Group {
                    app: app.clone(),
                    rows,
                    earliest,
                });
            }
        }
        groups.sort_by(|a, b| {
            a.earliest
                .cmp(&b.earliest)
                .then_with(|| a.app.cmp(&b.app))
                .then_with(|| a.rows[0].key_ref().cmp(&b.rows[0].key_ref()))
        });

        let mut receipts: Vec<WriteReceipt> = Vec::new();
        let mut ts_upserts: MapView = MapView::new();
        let mut ps_deletes: Vec<(AppId, StateKey)> = Vec::new();
        let mut accepted = 0usize;
        let mut rejected = 0usize;
        let mut already_satisfied = 0usize;
        let mut quarantine_rejected = 0usize;
        let mut proposals_seen = 0usize;

        // The working projection: OS + reconciled TS, maintained
        // incrementally per candidate via HealthDelta (full recomputation
        // per candidate would make the pass quadratic in topology size).
        //
        // Seeding is where a 4M-variable round lives or dies. The
        // columnar path carries the previous pass's seed forward: from
        // the round's deltas it computes the Fig-4 blast radius,
        // re-projects only the entities inside it, re-evaluates only the
        // invariants it can reach, and keeps cached verdicts for the
        // rest. Taken up front so any failed pass forces a full reseed.
        let cached_seed = self.seed_cache.lock().take();
        let (mut health, verdicts) = if self.invariants.is_empty() {
            // With no invariants installed, nothing ever consults the
            // projection — skip the whole-graph sweep here and every
            // per-candidate health delta below. (This was the
            // parallel-rounds scaling leak: g checkers × one full
            // projection per pass, all of it dead work.)
            (HealthView::all_up(), Vec::new())
        } else {
            match cached_seed {
                Some(seed)
                    if columnar_inc
                        && !track.full
                        && seed.verdicts.len() == self.invariants.len() =>
                {
                    let radius = blast_radius(
                        &self.graph,
                        track
                            .rows
                            .iter()
                            .map(|r| (&r.entity, Some(&r.value)))
                            .chain(track.keys.iter().map(|k| (&k.entity, None))),
                    );
                    let mut health = seed.health;
                    reproject_entities(&self.graph, &os, &ts, &radius.entities, &mut health);
                    let mut verdicts = seed.verdicts;
                    // Affected invariants re-check concurrently: each is
                    // a distinct instance (own cache), every one runs
                    // unconditionally, and results land back in invariant
                    // order — bit-identical to the serial loop.
                    let affected: Vec<usize> = (0..self.invariants.len())
                        .filter(|&i| self.invariants[i].affected_by(&radius))
                        .collect();
                    let rechecked = self.workers.run(&affected, |_, &i| {
                        // A passing cached verdict licenses pod-scoped
                        // re-evaluation (the same contract candidate
                        // checks use); a failing one demands a full look.
                        let ctx = InvariantContext {
                            graph: &self.graph,
                            projected: &health,
                            touched_pods: if verdicts[i].is_none() {
                                radius.pods.as_ref()
                            } else {
                                None
                            },
                        };
                        self.invariants[i].check(&ctx).err()
                    });
                    for (&i, v) in affected.iter().zip(rechecked) {
                        verdicts[i] = v;
                    }
                    (health, verdicts)
                }
                _ => {
                    let health = project_health(&self.graph, &os, Some(&ts as &dyn StateView));
                    let verdicts = self.workers.run(&self.invariants, |_, inv| {
                        inv.check(&InvariantContext {
                            graph: &self.graph,
                            projected: &health,
                            touched_pods: None,
                        })
                        .err()
                    });
                    (health, verdicts)
                }
            }
        };
        let incremental_ok = verdicts.iter().all(|v| v.is_none());

        for group in groups {
            proposals_seen += group.rows.len();
            let decided_at = now;
            // Every processed PS row is consumed regardless of outcome.
            for r in &group.rows {
                ps_deletes.push((group.app.clone(), r.key()));
            }

            let mut receipt = |key: &StateKey, proposed: &Value, outcome: WriteOutcome| {
                receipts.push(WriteReceipt {
                    app: group.app.clone(),
                    key: key.clone(),
                    proposed: proposed.clone(),
                    outcome,
                    decided_at,
                });
            };

            // -- 3a/3b/3c: validate, satisfied, controllable, locks --
            let mut survivors: Vec<NetworkState> = Vec::new();
            let mut group_rejected = false;
            for row in &group.rows {
                let key = row.key();
                if !row.is_well_formed() || !row.attribute.is_proposable() {
                    receipt(
                        &key,
                        &row.value,
                        WriteOutcome::RejectedInvalid {
                            reason: if row.attribute.is_proposable() {
                                format!("malformed row for {}", key)
                            } else {
                                format!("{} is read-only", row.attribute)
                            },
                        },
                    );
                    rejected += 1;
                    group_rejected = true;
                    continue;
                }

                // Lock rows get their own arbitration path.
                if row.attribute.is_lock() {
                    match locks::arbitrate_lock_write(&ts, &row.entity, &group.app, &row.value, now)
                    {
                        locks::LockDecision::Granted(new_rec) => {
                            let key = row.key();
                            match new_rec {
                                Some(rec) => {
                                    let mut stored = row.clone();
                                    stored.value = Value::Lock(rec);
                                    ts.upsert(stored.clone());
                                    ts_upserts.upsert(stored);
                                }
                                None => {
                                    ts.remove(&key);
                                    ts_upserts.remove(&key);
                                    ts_deletes.push(key.clone());
                                }
                            }
                            receipt(&key, &row.value, WriteOutcome::Accepted);
                            accepted += 1;
                        }
                        locks::LockDecision::Refused { holder, reason } => {
                            receipt(
                                &row.key(),
                                &row.value,
                                WriteOutcome::RejectedConflict {
                                    winner: holder,
                                    reason,
                                },
                            );
                            rejected += 1;
                        }
                    }
                    continue;
                }

                if os.value_of(&row.entity, row.attribute) == Some(&row.value) {
                    receipt(&key, &row.value, WriteOutcome::AlreadySatisfied);
                    already_satisfied += 1;
                    continue;
                }

                // Variables on quarantined devices are uncontrollable:
                // the OS rows the controllability and invariant checks
                // would consult are stale.
                if touches_unreachable(&row.entity, &row.value, unreachable) {
                    receipt(
                        &key,
                        &row.value,
                        WriteOutcome::RejectedUncontrollable {
                            reason: "entity touches a quarantined device; observed state is stale"
                                .to_string(),
                        },
                    );
                    rejected += 1;
                    quarantine_rejected += 1;
                    group_rejected = true;
                    continue;
                }

                if let Err(u) = self.model.check_controllable(&key, &row.value, &os) {
                    receipt(
                        &key,
                        &row.value,
                        WriteOutcome::RejectedUncontrollable { reason: u.reason },
                    );
                    rejected += 1;
                    group_rejected = true;
                    continue;
                }

                if self.config.policy == MergePolicy::PriorityLock {
                    if let Err((winner, reason)) =
                        locks::gate_write(&ts, &row.entity, &group.app, now)
                    {
                        receipt(
                            &key,
                            &row.value,
                            WriteOutcome::RejectedConflict { winner, reason },
                        );
                        rejected += 1;
                        group_rejected = true;
                        continue;
                    }
                }

                // Same-key conflict with an existing TS row from another
                // application: last-writer-wins on timestamps.
                if let Some(existing) = ts.get(&key) {
                    if existing.writer != group.app
                        && existing.writer != AppId::checker()
                        && existing.updated_at > row.updated_at
                    {
                        receipt(
                            &key,
                            &row.value,
                            WriteOutcome::RejectedConflict {
                                winner: existing.writer.clone(),
                                reason: format!(
                                    "newer write by {} at {}",
                                    existing.writer, existing.updated_at
                                ),
                            },
                        );
                        rejected += 1;
                        group_rejected = true;
                        continue;
                    }
                }

                survivors.push(row.clone());
            }

            if survivors.is_empty() {
                let _ = group_rejected;
                continue;
            }

            // -- 3f: invariants on the projected candidate --
            // The first violation (in invariant order) is the one that
            // reaches receipts; `first_violation` preserves that while
            // fanning pure invariants out and gating order-sensitive
            // ones exactly as the serial loop would. With no invariants,
            // the projection is never read, so the delta is skipped
            // outright.
            let (delta, violation) = if self.invariants.is_empty() {
                (None, None)
            } else {
                let candidate = MapView::from_rows(survivors.iter().cloned());
                let refs: Vec<&NetworkState> = survivors.iter().collect();
                let touched = self.touched_pods(&refs);
                // Update the working projection for just the touched
                // entities (reversible if the candidate is rejected).
                let delta = {
                    let overlay = OverlayView::new(&ts, &candidate);
                    crate::view::HealthDelta::apply(
                        &self.graph,
                        &os,
                        &overlay,
                        &survivors,
                        &mut health,
                    )
                };
                let ctx = InvariantContext {
                    graph: &self.graph,
                    projected: &health,
                    touched_pods: if incremental_ok {
                        touched.as_ref()
                    } else {
                        None
                    },
                };
                let invs: Vec<&dyn Invariant> =
                    self.invariants.iter().map(|b| b.as_ref()).collect();
                let violation = crate::engine::first_violation(&self.workers, &invs, &ctx);
                (Some(delta), violation)
            };

            match violation {
                Some(v) => {
                    if let Some(delta) = delta {
                        delta.revert(&mut health);
                    }
                    for row in survivors {
                        receipts.push(WriteReceipt {
                            app: group.app.clone(),
                            key: row.key(),
                            proposed: row.value.clone(),
                            outcome: WriteOutcome::RejectedInvariant {
                                invariant: v.invariant.clone(),
                                reason: v.reason.clone(),
                            },
                            decided_at,
                        });
                        rejected += 1;
                    }
                }
                None => {
                    for row in survivors {
                        receipts.push(WriteReceipt {
                            app: group.app.clone(),
                            key: row.key(),
                            proposed: row.value.clone(),
                            outcome: WriteOutcome::Accepted,
                            decided_at,
                        });
                        ts.upsert(row.clone());
                        ts_upserts.upsert(row);
                        accepted += 1;
                    }
                }
            }
        }

        // ---- 4. persist ----
        let upsert_rows = ts_upserts.into_sorted_rows();
        if !upsert_rows.is_empty() {
            storage.write(WriteRequest {
                pool: Pool::Target,
                rows: upsert_rows,
            })?;
        }
        if !ts_deletes.is_empty() {
            ts_deletes.sort();
            ts_deletes.dedup();
            storage.delete(Pool::Target, ts_deletes)?;
        }
        // Clear consumed PS rows, per app.
        let mut by_app: BTreeMap<AppId, Vec<StateKey>> = BTreeMap::new();
        for (app, key) in ps_deletes {
            by_app.entry(app).or_default().push(key);
        }
        for (app, keys) in by_app {
            storage.delete(Pool::Proposed(app), keys)?;
        }
        // Post receipts to the group's primary partition.
        if !receipts.is_empty() {
            storage.post_receipts(&self.group_ref().primary_partition(), receipts.clone())?;
        }

        let report = CheckerPassReport {
            group: self.group_ref().name(),
            proposals_seen,
            accepted,
            rejected,
            already_satisfied,
            ts_pruned,
            quarantine_rejected,
            receipts,
            elapsed: started.elapsed(),
            variables_read,
        };

        // Record provable no-ops for the quiescence short-circuit. A pass
        // that persisted nothing (no proposals consumed, no TS pruned, no
        // receipts posted) left its start-of-pass watermarks intact, so
        // those marks certify "this exact pass, again, does nothing".
        *self.quiescent.lock() = match marks {
            Some(marks)
                if report.proposals_seen == 0
                    && report.ts_pruned == 0
                    && report.receipts.is_empty()
                    && !ts_has_locks =>
            {
                Some(QuiescentMark {
                    marks,
                    variables_read: report.variables_read,
                })
            }
            _ => None,
        };

        // Carry the seed forward: `health` reflects every accepted
        // candidate (rejected ones were reverted) and matches the TS just
        // persisted; verdicts are the seed's. The next delta pass covers
        // this pass's own writes via its changefeed, so re-projection
        // over them is an idempotent no-op.
        if columnar_inc {
            *self.seed_cache.lock() = Some(SeedCache { health, verdicts });
        }
        Ok(report)
    }
}

/// Does a variable on `entity` depend on any device in `unreachable`?
/// Links count through either endpoint; path variables through every
/// listed on-path switch.
fn touches_unreachable(
    entity: &statesman_types::EntityName,
    value: &Value,
    unreachable: &BTreeSet<DeviceName>,
) -> bool {
    if unreachable.is_empty() {
        return false;
    }
    match &entity.body {
        statesman_types::entity::EntityBody::Device(d) => unreachable.contains(d),
        statesman_types::entity::EntityBody::Link(l) => {
            unreachable.contains(&l.a) || unreachable.contains(&l.b)
        }
        statesman_types::entity::EntityBody::Path(_) => value
            .as_device_list()
            .map(|list| list.iter().any(|d| unreachable.contains(d)))
            .unwrap_or(false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariants::TorPairCapacityInvariant;
    use statesman_net::SimClock;
    use statesman_topology::DcnSpec;
    use statesman_types::Attribute;
    use statesman_types::{EntityName, LockPriority};

    fn setup() -> (NetworkGraph, StorageService, SimClock) {
        let clock = SimClock::new();
        let graph = DcnSpec::fig7("dc1").build();
        let storage = StorageService::single_dc("dc1", clock.clone());
        (graph, storage, clock)
    }

    fn os_row(entity: EntityName, attr: Attribute, value: Value, at: SimTime) -> NetworkState {
        NetworkState::new(entity, attr, value, at, AppId::monitor())
    }

    /// Write a minimal healthy OS for the Fig-7 fabric: firmware rows for
    /// every device (enough for controllability and upgrade proposals).
    fn seed_os(graph: &NetworkGraph, storage: &StorageService, at: SimTime) {
        let rows: Vec<NetworkState> = graph
            .nodes()
            .map(|(_, n)| {
                os_row(
                    EntityName::device(n.datacenter.clone(), n.name.clone()),
                    Attribute::DeviceFirmwareVersion,
                    Value::text("6.0"),
                    at,
                )
            })
            .collect();
        storage
            .write(WriteRequest {
                pool: Pool::Observed,
                rows,
            })
            .unwrap();
    }

    fn checker(graph: &NetworkGraph, policy: MergePolicy) -> Checker {
        let mut c = Checker::new(
            CheckerConfig {
                group: ImpactGroup::Datacenter(DatacenterId::new("dc1")),
                policy,
            },
            graph.clone(),
        );
        c.add_invariant(Box::new(TorPairCapacityInvariant::paper_default(
            graph,
            "dc1",
            Some(1),
        )));
        c
    }

    fn propose_upgrade(
        storage: &StorageService,
        app: &AppId,
        dev: &str,
        version: &str,
        at: SimTime,
    ) {
        storage
            .write(WriteRequest {
                pool: Pool::Proposed(app.clone()),
                rows: vec![NetworkState::new(
                    EntityName::device("dc1", dev),
                    Attribute::DeviceFirmwareVersion,
                    Value::text(version),
                    at,
                    app.clone(),
                )],
            })
            .unwrap();
    }

    #[test]
    fn accepts_safe_upgrades_and_caps_parallelism() {
        let (graph, storage, clock) = setup();
        seed_os(&graph, &storage, clock.now());
        let chk = checker(&graph, MergePolicy::LastWriterWins);
        let app = AppId::new("switch-upgrade");

        // Propose upgrading 3 of pod 1's Aggs in parallel.
        for a in 1..=3 {
            propose_upgrade(&storage, &app, &format!("agg-1-{a}"), "7.0", clock.now());
        }
        let report = chk.run_pass(&storage, clock.now()).unwrap();
        assert_eq!(report.proposals_seen, 3);
        // 50% invariant: at most 2 of 4 Aggs may be down at once.
        assert_eq!(report.accepted, 2, "{:?}", report.receipts);
        assert_eq!(report.rejected, 1);
        let rejected: Vec<_> = report
            .receipts
            .iter()
            .filter(|r| r.outcome.is_rejected())
            .collect();
        assert!(matches!(
            rejected[0].outcome,
            WriteOutcome::RejectedInvariant { .. }
        ));
        // PS is consumed.
        assert_eq!(
            storage.pool_len(&DatacenterId::new("dc1"), &Pool::Proposed(app)),
            0
        );
        // TS holds the two accepted upgrades.
        assert_eq!(
            storage.pool_len(&DatacenterId::new("dc1"), &Pool::Target),
            2
        );
    }

    #[test]
    fn already_satisfied_proposals_do_not_enter_ts() {
        let (graph, storage, clock) = setup();
        seed_os(&graph, &storage, clock.now());
        let chk = checker(&graph, MergePolicy::LastWriterWins);
        let app = AppId::new("switch-upgrade");
        propose_upgrade(&storage, &app, "agg-1-1", "6.0", clock.now()); // current version
        let report = chk.run_pass(&storage, clock.now()).unwrap();
        assert_eq!(report.already_satisfied, 1);
        assert_eq!(report.accepted, 0);
        assert_eq!(
            storage.pool_len(&DatacenterId::new("dc1"), &Pool::Target),
            0
        );
    }

    #[test]
    fn quarantined_device_proposals_rejected_and_ts_kept() {
        let (graph, storage, clock) = setup();
        seed_os(&graph, &storage, clock.now());
        let chk = checker(&graph, MergePolicy::LastWriterWins);
        let app = AppId::new("switch-upgrade");

        // An upgrade is accepted while the device is healthy.
        propose_upgrade(&storage, &app, "agg-1-1", "7.0", clock.now());
        let r = chk.run_pass(&storage, clock.now()).unwrap();
        assert_eq!(r.accepted, 1);

        // The device goes dark: its last OS rows claim it is powered off,
        // but the monitor has quarantined it, so those rows are stale.
        storage
            .write(WriteRequest {
                pool: Pool::Observed,
                rows: vec![os_row(
                    EntityName::device("dc1", "agg-1-1"),
                    Attribute::DeviceAdminPower,
                    Value::power(false),
                    clock.now(),
                )],
            })
            .unwrap();
        let quarantined: BTreeSet<DeviceName> = [DeviceName::new("agg-1-1")].into_iter().collect();

        // New proposals on the device are refused...
        propose_upgrade(&storage, &app, "agg-1-1", "8.0", clock.now());
        let r2 = chk
            .run_pass_with_unreachable(&storage, clock.now(), &quarantined)
            .unwrap();
        assert_eq!(r2.quarantine_rejected, 1);
        assert_eq!(r2.rejected, 1);
        assert!(matches!(
            r2.receipts_for(&app)[0].outcome,
            WriteOutcome::RejectedUncontrollable { .. }
        ));
        // ...and the stale power-off row must NOT prune the accepted TS
        // (a plain pass would: firmware is uncontrollable when power is
        // off per the dependency model).
        assert_eq!(r2.ts_pruned, 0, "stale OS must not revoke accepted TS");
        assert_eq!(
            storage.pool_len(&DatacenterId::new("dc1"), &Pool::Target),
            1
        );
    }

    #[test]
    fn uncontrollable_proposals_rejected() {
        let (graph, storage, clock) = setup();
        seed_os(&graph, &storage, clock.now());
        // agg-1-1 is powered off in the OS.
        storage
            .write(WriteRequest {
                pool: Pool::Observed,
                rows: vec![os_row(
                    EntityName::device("dc1", "agg-1-1"),
                    Attribute::DeviceAdminPower,
                    Value::power(false),
                    clock.now(),
                )],
            })
            .unwrap();
        let chk = checker(&graph, MergePolicy::LastWriterWins);
        let app = AppId::new("switch-upgrade");
        propose_upgrade(&storage, &app, "agg-1-1", "7.0", clock.now());
        let report = chk.run_pass(&storage, clock.now()).unwrap();
        assert_eq!(report.rejected, 1);
        assert!(matches!(
            report.receipts[0].outcome,
            WriteOutcome::RejectedUncontrollable { .. }
        ));
    }

    #[test]
    fn read_only_proposals_rejected_invalid() {
        let (graph, storage, clock) = setup();
        seed_os(&graph, &storage, clock.now());
        let chk = checker(&graph, MergePolicy::LastWriterWins);
        let app = AppId::new("rogue");
        storage
            .write(WriteRequest {
                pool: Pool::Proposed(app.clone()),
                rows: vec![NetworkState::new(
                    EntityName::link("dc1", "tor-1-1", "agg-1-1"),
                    Attribute::LinkFcsErrorRate,
                    Value::Float(0.0),
                    clock.now(),
                    app.clone(),
                )],
            })
            .unwrap();
        let report = chk.run_pass(&storage, clock.now()).unwrap();
        assert!(matches!(
            report.receipts[0].outcome,
            WriteOutcome::RejectedInvalid { .. }
        ));
    }

    #[test]
    fn last_writer_wins_on_same_key() {
        let (graph, storage, clock) = setup();
        seed_os(&graph, &storage, clock.now());
        let chk = checker(&graph, MergePolicy::LastWriterWins);
        let early = AppId::new("app-early");
        let late = AppId::new("app-late");
        propose_upgrade(&storage, &early, "agg-1-1", "7.0", SimTime::from_mins(1));
        propose_upgrade(&storage, &late, "agg-1-1", "7.1", SimTime::from_mins(2));
        let report = chk.run_pass(&storage, clock.now()).unwrap();
        // Both accepted (later overwrote), TS holds the later value.
        assert_eq!(report.accepted, 2);
        let ts = storage
            .read_row(
                &Pool::Target,
                &StateKey::new(
                    EntityName::device("dc1", "agg-1-1"),
                    Attribute::DeviceFirmwareVersion,
                ),
            )
            .unwrap()
            .unwrap();
        assert_eq!(ts.value, Value::text("7.1"));
        assert_eq!(ts.writer, late);
    }

    #[test]
    fn older_proposal_against_newer_ts_rejected() {
        let (graph, storage, clock) = setup();
        seed_os(&graph, &storage, clock.now());
        let chk = checker(&graph, MergePolicy::LastWriterWins);
        let a = AppId::new("app-a");
        let b = AppId::new("app-b");
        // Pass 1: b writes at t=10.
        propose_upgrade(&storage, &b, "agg-1-1", "7.1", SimTime::from_mins(10));
        chk.run_pass(&storage, SimTime::from_mins(10)).unwrap();
        // Pass 2: a proposes an *older* write (stale basis).
        propose_upgrade(&storage, &a, "agg-1-1", "7.0", SimTime::from_mins(5));
        let report = chk.run_pass(&storage, SimTime::from_mins(11)).unwrap();
        assert_eq!(report.rejected, 1);
        assert!(matches!(
            &report.receipts[0].outcome,
            WriteOutcome::RejectedConflict { winner, .. } if winner == &b
        ));
    }

    #[test]
    fn priority_lock_gates_writes() {
        let (graph, storage, clock) = setup();
        seed_os(&graph, &storage, clock.now());
        let chk = checker(&graph, MergePolicy::PriorityLock);
        let upgrade = AppId::new("switch-upgrade");
        let te = AppId::new("inter-dc-te");

        // upgrade acquires a high-priority lock on agg-1-1.
        storage
            .write(WriteRequest {
                pool: Pool::Proposed(upgrade.clone()),
                rows: vec![NetworkState::new(
                    EntityName::device("dc1", "agg-1-1"),
                    Attribute::EntityLock,
                    locks::lock_value(&upgrade, LockPriority::High, clock.now(), None),
                    clock.now(),
                    upgrade.clone(),
                )],
            })
            .unwrap();
        let r1 = chk.run_pass(&storage, clock.now()).unwrap();
        assert_eq!(r1.accepted, 1);

        // te's routing write on the locked entity is rejected.
        storage
            .write(WriteRequest {
                pool: Pool::Proposed(te.clone()),
                rows: vec![NetworkState::new(
                    EntityName::device("dc1", "agg-1-1"),
                    Attribute::DeviceRoutingRules,
                    Value::Routes(vec![]),
                    clock.now(),
                    te.clone(),
                )],
            })
            .unwrap();
        let r2 = chk.run_pass(&storage, clock.now()).unwrap();
        assert_eq!(r2.rejected, 1);
        assert!(matches!(
            &r2.receipts[0].outcome,
            WriteOutcome::RejectedConflict { winner, .. } if winner == &upgrade
        ));

        // upgrade releases; te retries and wins.
        storage
            .write(WriteRequest {
                pool: Pool::Proposed(upgrade.clone()),
                rows: vec![NetworkState::new(
                    EntityName::device("dc1", "agg-1-1"),
                    Attribute::EntityLock,
                    Value::None,
                    clock.now(),
                    upgrade.clone(),
                )],
            })
            .unwrap();
        chk.run_pass(&storage, clock.now()).unwrap();
        storage
            .write(WriteRequest {
                pool: Pool::Proposed(te.clone()),
                rows: vec![NetworkState::new(
                    EntityName::device("dc1", "agg-1-1"),
                    Attribute::DeviceRoutingRules,
                    Value::Routes(vec![]),
                    clock.now(),
                    te.clone(),
                )],
            })
            .unwrap();
        let r4 = chk.run_pass(&storage, clock.now()).unwrap();
        assert_eq!(r4.accepted, 1, "{:?}", r4.receipts);
    }

    #[test]
    fn ts_rows_prune_when_os_makes_them_uncontrollable() {
        let (graph, storage, clock) = setup();
        seed_os(&graph, &storage, clock.now());
        let chk = checker(&graph, MergePolicy::LastWriterWins);
        let app = AppId::new("switch-upgrade");
        propose_upgrade(&storage, &app, "agg-1-1", "7.0", clock.now());
        chk.run_pass(&storage, clock.now()).unwrap();
        assert_eq!(
            storage.pool_len(&DatacenterId::new("dc1"), &Pool::Target),
            1
        );

        // The device loses power in the OS → the accepted-but-unsatisfied
        // TS row is no longer controllable and gets pruned.
        storage
            .write(WriteRequest {
                pool: Pool::Observed,
                rows: vec![os_row(
                    EntityName::device("dc1", "agg-1-1"),
                    Attribute::DeviceAdminPower,
                    Value::power(false),
                    clock.now(),
                )],
            })
            .unwrap();
        let report = chk.run_pass(&storage, clock.now()).unwrap();
        assert_eq!(report.ts_pruned, 1);
        assert_eq!(
            storage.pool_len(&DatacenterId::new("dc1"), &Pool::Target),
            0
        );
    }

    #[test]
    fn satisfied_ts_rows_are_kept_as_accumulation() {
        let (graph, storage, clock) = setup();
        seed_os(&graph, &storage, clock.now());
        let chk = checker(&graph, MergePolicy::LastWriterWins);
        let app = AppId::new("switch-upgrade");
        propose_upgrade(&storage, &app, "agg-1-1", "7.0", clock.now());
        chk.run_pass(&storage, clock.now()).unwrap();

        // The upgrade lands: OS now reports 7.0.
        storage
            .write(WriteRequest {
                pool: Pool::Observed,
                rows: vec![os_row(
                    EntityName::device("dc1", "agg-1-1"),
                    Attribute::DeviceFirmwareVersion,
                    Value::text("7.0"),
                    clock.now(),
                )],
            })
            .unwrap();
        let report = chk.run_pass(&storage, clock.now()).unwrap();
        assert_eq!(report.ts_pruned, 0);
        assert_eq!(
            storage.pool_len(&DatacenterId::new("dc1"), &Pool::Target),
            1
        );
        // And with the OS caught up, pod 1 has full capacity again: two
        // more Agg upgrades are accepted.
        propose_upgrade(&storage, &app, "agg-1-2", "7.0", clock.now());
        propose_upgrade(&storage, &app, "agg-1-3", "7.0", clock.now());
        let r2 = chk.run_pass(&storage, clock.now()).unwrap();
        assert_eq!(r2.accepted, 2, "{:?}", r2.receipts);
    }

    #[test]
    fn delta_passes_match_full_read_passes() {
        // Two identical worlds driven through the same multi-pass history:
        // one checker mirrors pools via deltas, the other re-reads in
        // full. Reports and the resulting TS must be identical.
        let run = |delta: bool| {
            let (graph, storage, clock) = setup();
            seed_os(&graph, &storage, clock.now());
            let chk = checker(&graph, MergePolicy::LastWriterWins).with_delta_reads(delta);
            let app = AppId::new("switch-upgrade");
            let mut history = Vec::new();
            // Pass 1: parallel proposals, one rejected by the invariant.
            for a in 1..=3 {
                propose_upgrade(&storage, &app, &format!("agg-1-{a}"), "7.0", clock.now());
            }
            history.push(chk.run_pass(&storage, clock.now()).unwrap());
            // OS catches up on one device; re-propose the rejected one.
            storage
                .write(WriteRequest {
                    pool: Pool::Observed,
                    rows: vec![os_row(
                        EntityName::device("dc1", "agg-1-1"),
                        Attribute::DeviceFirmwareVersion,
                        Value::text("7.0"),
                        clock.now(),
                    )],
                })
                .unwrap();
            propose_upgrade(&storage, &app, "agg-1-3", "7.0", clock.now());
            history.push(chk.run_pass(&storage, clock.now()).unwrap());
            // A quarantine pass in the middle forces the full-read path.
            let q: BTreeSet<DeviceName> = [DeviceName::new("agg-1-2")].into_iter().collect();
            propose_upgrade(&storage, &app, "agg-1-2", "8.0", clock.now());
            history.push(
                chk.run_pass_with_unreachable(&storage, clock.now(), &q)
                    .unwrap(),
            );
            // And a final clean pass back on the delta path.
            propose_upgrade(&storage, &app, "agg-1-4", "7.0", clock.now());
            history.push(chk.run_pass(&storage, clock.now()).unwrap());
            let mut ts = storage
                .read(ReadRequest {
                    datacenter: DatacenterId::new("dc1"),
                    pool: Pool::Target,
                    freshness: Freshness::UpToDate,
                    entity: None,
                    attribute: None,
                })
                .unwrap();
            ts.sort_by_key(|r| r.key());
            let summary: Vec<_> = history
                .iter()
                .map(|r| {
                    (
                        r.proposals_seen,
                        r.accepted,
                        r.rejected,
                        r.already_satisfied,
                        r.ts_pruned,
                        r.quarantine_rejected,
                    )
                })
                .collect();
            (
                summary,
                ts.into_iter()
                    .map(|r| (r.key(), r.value))
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn wall_clock_latency_is_reported() {
        let (graph, storage, clock) = setup();
        seed_os(&graph, &storage, clock.now());
        let chk = checker(&graph, MergePolicy::LastWriterWins);
        let report = chk.run_pass(&storage, clock.now()).unwrap();
        assert!(report.variables_read > 0);
        assert!(report.elapsed.as_nanos() > 0);
    }
}
