//! The coordinator: one Statesman control round, end-to-end.
//!
//! Wires the monitor → checkers (one per impact group) → updater into the
//! round a deployment runs continuously (Fig 6), and accounts per-stage
//! latency: the monitor and updater report modeled device-interaction time
//! (their work is I/O against hundreds of switches), while the checker
//! reports wall-clock compute time (its work is in-memory merging and
//! invariant evaluation). The §8 slide summarizes the resulting breakdown:
//! application share negligible, checker seconds, updater dominating with
//! more than half the loop.

use crate::checker::{Checker, CheckerConfig, CheckerPassReport, MergePolicy};
use crate::groups::ImpactGroup;
use crate::invariants::{ConnectivityInvariant, TorPairCapacityInvariant, WanLinkInvariant};
use crate::monitor::{Monitor, MonitorReport};
use crate::updater::{Updater, UpdaterReport};
use statesman_net::SimNetwork;
use statesman_obs::{Counter, Gauge, Histogram, Obs, RoundTrace, StatusBoard, LATENCY_BUCKETS_MS};
use statesman_storage::StorageService;
use statesman_topology::NetworkGraph;
use statesman_types::{DatacenterId, Pool, RetryPolicy, SimDuration, StateResult};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// Coordinator construction knobs.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Conflict-resolution policy for all checkers.
    pub policy: MergePolicy,
    /// Install the connectivity invariant in every DC group.
    pub connectivity_invariant: bool,
    /// Install the ToR-pair capacity invariant in every DC group:
    /// (capacity threshold, pair fraction, sampled ToRs per pod).
    pub capacity_invariant: Option<(f64, f64, Option<u32>)>,
    /// Cap the capacity invariant's evaluated pair panel per DC
    /// (seeded, deterministic downsample). Sampling one ToR per pod
    /// still grows the panel quadratically in pods — a 4,096-pod fabric
    /// yields 16.8M directional pairs, hours of max-flow per sweep — so
    /// production-scale fabrics must evaluate a fixed-size panel, which
    /// preserves the invariant's statistical phrasing ("99% of pairs").
    /// `None` evaluates every selected pair. The default (65,536) only
    /// bites beyond ~256 pods; fabrics below that are unaffected.
    pub capacity_max_pairs: Option<usize>,
    /// Install the WAN-link invariant on the WAN group with this minimum.
    pub wan_invariant: Option<usize>,
    /// Collect with this many concurrent monitor instances (`None` =
    /// serial). The paper runs one instance per ~1,000 switches (§6.3);
    /// pass `Some(devices / 1000 + 1)` to mirror that.
    pub monitor_instances: Option<usize>,
    /// Run the per-group checker passes on concurrent threads. Groups are
    /// independent by construction (§5 — disjoint entities, disjoint
    /// invariant scopes), so their passes commute; the report order stays
    /// deterministic (group order) either way. Concurrency is bounded by
    /// the round engine's worker pool (`worker_threads`), not one thread
    /// per group.
    pub parallel_checkers: bool,
    /// Worker threads for the round engine's pure fan-out stages
    /// (invariant evaluation, partition diffing, wave pre-rendering, and
    /// the `parallel_checkers` pool). `None` resolves via
    /// `STATESMAN_WORKER_THREADS`, then host parallelism. Results are
    /// bit-identical at every setting; only wall time changes.
    pub worker_threads: Option<usize>,
    /// Monitor quarantine cooldown override (`None` = monitor default).
    pub quarantine_cooldown: Option<SimDuration>,
    /// In-round retry schedule for the updater (`None` = §6.2's pure
    /// cross-round implicit retry).
    pub updater_retry: Option<RetryPolicy>,
    /// Per-device updater circuit breaker: (consecutive-failure
    /// threshold, open cooldown). `None` disables breakers.
    pub updater_breaker: Option<(u32, SimDuration)>,
    /// Run the updater's plan synthesizer: compile each round's
    /// difference set into a dependency-ordered, maximally-parallel
    /// update plan and gate every step on in-flight invariant checks
    /// against the projected intermediate state. `false` restores the
    /// legacy per-device chain walk (no plan, no in-flight checks).
    pub plan_synthesis: bool,
    /// Run the delta-driven state plane: the monitor diffs against its
    /// last-written view and writes only changed rows, and the checker
    /// and updater advance cached views via `read_since` changefeeds.
    /// `false` restores the seed's snapshot-per-round behavior (every
    /// stage reads and writes full pools every round).
    pub delta_state_plane: bool,
    /// Run the columnar state plane: storage pools, checker/updater
    /// mirrors, and the monitor diff base use dense slot-indexed columns,
    /// and the checker seeds each pass blast-radius-incrementally from
    /// the round's deltas. `false` restores hash-map mirrors and a full
    /// projection + invariant sweep per pass — the reference behavior the
    /// columnar plane is property-tested bit-equal against.
    pub columnar_state: bool,
    /// How often the monitor rewrites its full view even when nothing
    /// changed (`None` = monitor default). Ignored when
    /// `delta_state_plane` is false (every round is a full write).
    pub monitor_resync_every: Option<u64>,
    /// Observability handle. When set, every tick records stage metrics
    /// into its registry, pushes a [`RoundTrace`] onto its ring, and
    /// refreshes its status board. `None` records nothing.
    pub obs: Option<Obs>,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            policy: MergePolicy::PriorityLock,
            connectivity_invariant: true,
            capacity_invariant: Some((0.5, 0.99, Some(1))),
            capacity_max_pairs: Some(65_536),
            wan_invariant: Some(1),
            monitor_instances: None,
            parallel_checkers: false,
            worker_threads: None,
            quarantine_cooldown: None,
            updater_retry: None,
            updater_breaker: None,
            plan_synthesis: true,
            delta_state_plane: true,
            columnar_state: true,
            monitor_resync_every: None,
            obs: None,
        }
    }
}

/// Seed for the capacity invariant's deterministic pair-panel
/// downsample: fixed so every coordinator over the same fabric — and
/// both state planes in an equivalence run — evaluates the same panel.
const CAPACITY_PANEL_SEED: u64 = 0x57A7E;

/// Cached metric handles for the control loop, one per series the
/// coordinator records each tick (created once at construction).
struct CoordObs {
    rounds: Counter,
    degraded_rounds: Counter,
    monitor_polled: Counter,
    monitor_unreachable: Counter,
    monitor_quarantined: Gauge,
    monitor_round_ms: Histogram,
    checker_proposals: Counter,
    checker_accepted: Counter,
    checker_rejected: Counter,
    checker_already_satisfied: Counter,
    checker_quarantine_rejected: Counter,
    checker_pass_ms: Histogram,
    updater_diffs: Counter,
    updater_applied: Counter,
    updater_failed: Counter,
    updater_retries: Counter,
    updater_breaker_skips: Counter,
    updater_breakers_opened: Counter,
    updater_round_ms: Histogram,
    updater_plan_steps: Counter,
    updater_plan_waves: Counter,
    /// Widest wave of the last recorded round's update plan (0 when plan
    /// synthesis is off or the round planned nothing).
    updater_plan_max_width: Gauge,
    updater_plan_inflight_rejections: Counter,
    updater_plan_rollbacks: Counter,
    /// Checker change-track full-degrade events (silent fallbacks to a
    /// full reseed). Counted per round as the delta of the summed
    /// per-checker totals against `last_full_degrades`.
    checker_full_degrades: Counter,
    /// The summed per-checker full-degrade total at the end of the last
    /// recorded round.
    last_full_degrades: std::sync::atomic::AtomicU64,
    monitor_rows_written: Counter,
    monitor_writes_suppressed: Counter,
    watermark_lag: Gauge,
    /// Distinct entity names in the process-wide interner.
    interned_entities: Gauge,
    /// Live rows across every pool of every storage partition.
    state_rows: Gauge,
    /// Approximate resident bytes per state variable in the columnar
    /// storage plane (whole bytes; `/v1/status` carries the fraction).
    state_bytes_per_var: Gauge,
    /// Id → name resolutions (edge resolutions: delta tombstones,
    /// receipts). Counted per round as the delta of the process-wide
    /// total against `last_resolutions`.
    key_resolutions: Counter,
    /// The process-wide resolution total at the end of the last recorded
    /// round.
    last_resolutions: std::sync::atomic::AtomicU64,
    /// Cumulative storage partition-lock wait (µs) at the end of the last
    /// recorded round, for the per-round delta in `/v1/status`.
    last_lock_wait_us: std::sync::atomic::AtomicU64,
}

impl CoordObs {
    fn new(obs: &Obs, storage: &StorageService) -> Self {
        let r = &obs.registry;
        CoordObs {
            rounds: r.counter("coordinator_rounds_total"),
            degraded_rounds: r.counter("coordinator_degraded_rounds_total"),
            monitor_polled: r.counter("monitor_devices_polled_total"),
            monitor_unreachable: r.counter("monitor_devices_unreachable_total"),
            monitor_quarantined: r.gauge("monitor_devices_quarantined"),
            monitor_round_ms: r.histogram("monitor_round_ms", LATENCY_BUCKETS_MS),
            checker_proposals: r.counter("checker_proposals_seen_total"),
            checker_accepted: r.counter("checker_accepted_total"),
            checker_rejected: r.counter("checker_rejected_total"),
            checker_already_satisfied: r.counter("checker_already_satisfied_total"),
            checker_quarantine_rejected: r.counter("checker_quarantine_rejected_total"),
            checker_pass_ms: r.histogram("checker_pass_ms", LATENCY_BUCKETS_MS),
            updater_diffs: r.counter("updater_diffs_total"),
            updater_applied: r.counter("updater_commands_applied_total"),
            updater_failed: r.counter("updater_commands_failed_total"),
            updater_retries: r.counter("updater_retries_total"),
            updater_breaker_skips: r.counter("updater_breaker_skips_total"),
            updater_breakers_opened: r.counter("updater_breakers_opened_total"),
            updater_round_ms: r.histogram("updater_round_ms", LATENCY_BUCKETS_MS),
            updater_plan_steps: r.counter("updater_plan_steps_total"),
            updater_plan_waves: r.counter("updater_plan_waves_total"),
            updater_plan_max_width: r.gauge("updater_plan_max_width"),
            updater_plan_inflight_rejections: r.counter("updater_plan_inflight_rejections_total"),
            updater_plan_rollbacks: r.counter("updater_plan_rollbacks_total"),
            checker_full_degrades: r.counter("checker_full_degrades_total"),
            last_full_degrades: std::sync::atomic::AtomicU64::new(0),
            monitor_rows_written: r.counter("monitor_rows_written_total"),
            monitor_writes_suppressed: r.counter("monitor_writes_suppressed_total"),
            watermark_lag: r.gauge("state_watermark_lag"),
            interned_entities: r.gauge("interned_entities"),
            state_rows: r.gauge("state_rows"),
            state_bytes_per_var: r.gauge("state_bytes_per_var"),
            key_resolutions: r.counter("key_resolutions_total"),
            last_resolutions: std::sync::atomic::AtomicU64::new(statesman_types::key_resolutions()),
            // Seed from the live counter, like `last_resolutions` above:
            // obs attached after the service has already done work must
            // not fold pre-attach lock wait into the first round's delta.
            last_lock_wait_us: std::sync::atomic::AtomicU64::new(storage.lock_wait_stats()),
        }
    }
}

/// One full round's reports.
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// Monitor stage.
    pub monitor: MonitorReport,
    /// Checker stage, one report per impact group (group order); skipped
    /// groups have no entry here.
    pub checkers: Vec<CheckerPassReport>,
    /// Updater stage.
    pub updater: UpdaterReport,
    /// Impact groups skipped this round because their storage partition
    /// was unavailable (degraded mode).
    pub skipped_groups: Vec<String>,
    /// Cumulative storage-layer submit retries at round end.
    pub storage_retries: u64,
    /// Cumulative storage submits that exhausted their retry budget.
    pub storage_retries_exhausted: u64,
    /// OS rows the monitor actually wrote this round.
    pub rows_written: usize,
    /// OS rows the monitor skipped as value-identical this round.
    pub writes_suppressed: usize,
    /// Cumulative storage reads served from the change index at round end.
    pub delta_reads: u64,
    /// Cumulative delta reads that fell back to a full snapshot.
    pub full_fallbacks: u64,
    /// Worst-case version gap between a live partition's OS watermark and
    /// the updater's cached view of it at round end (0 when the delta
    /// plane is off or every cache is current).
    pub watermark_lag: u64,
}

impl RoundReport {
    /// Per-stage latency in milliseconds: (monitor, checker, updater).
    /// Monitor/updater latency is modeled device I/O; checker latency is
    /// measured compute (its I/O is against in-memory storage leaders).
    pub fn latency_breakdown_ms(&self) -> (f64, f64, f64) {
        let monitor = self.monitor.sim_io.as_millis() as f64;
        let checker: f64 = self
            .checkers
            .iter()
            .map(|c| c.elapsed.as_secs_f64() * 1e3)
            .sum();
        let updater = self.updater.sim_io.as_millis() as f64;
        (monitor, checker, updater)
    }

    /// Updater share of the loop, in `[0,1]`.
    pub fn updater_share(&self) -> f64 {
        let (m, c, u) = self.latency_breakdown_ms();
        let total = m + c + u;
        if total <= 0.0 {
            0.0
        } else {
            u / total
        }
    }

    /// Total proposals accepted across groups.
    pub fn accepted(&self) -> usize {
        self.checkers.iter().map(|c| c.accepted).sum()
    }

    /// Total proposals rejected across groups.
    pub fn rejected(&self) -> usize {
        self.checkers.iter().map(|c| c.rejected).sum()
    }

    /// True if any part of the round ran in degraded mode (a storage
    /// partition was down and its impact groups were skipped).
    pub fn degraded(&self) -> bool {
        !self.skipped_groups.is_empty()
    }

    /// Devices whose polls were skipped this round under quarantine.
    pub fn devices_quarantined(&self) -> usize {
        self.monitor.devices_quarantined
    }

    /// Proposal rows rejected across groups because they touched a
    /// quarantined device.
    pub fn quarantine_rejected(&self) -> usize {
        self.checkers.iter().map(|c| c.quarantine_rejected).sum()
    }

    /// Command failures + in-round retries + breaker activity, rolled up
    /// for dashboards: (failed, retries, breaker_skips, breakers_opened).
    pub fn command_fault_counters(&self) -> (usize, usize, usize, usize) {
        (
            self.updater.commands_failed,
            self.updater.retries,
            self.updater.breaker_skips,
            self.updater.breakers_opened,
        )
    }
}

/// The wired-up Statesman instance.
pub struct Coordinator {
    monitor: Monitor,
    checkers: Vec<Checker>,
    updater: Updater,
    storage: StorageService,
    net: SimNetwork,
    monitor_instances: Option<usize>,
    parallel_checkers: bool,
    /// Bounds the `parallel_checkers` fan-out (no thread-per-group
    /// spawning on large fleets).
    workers: crate::engine::WorkerPool,
    obs: Option<(Obs, CoordObs)>,
    round: AtomicU64,
}

impl Coordinator {
    /// Build a coordinator over a deployment: one checker per datacenter
    /// found in `graph` plus the WAN group (if any border routers or WAN
    /// links exist).
    pub fn new(
        graph: &NetworkGraph,
        net: SimNetwork,
        storage: StorageService,
        config: CoordinatorConfig,
    ) -> Self {
        let mut dcs: BTreeSet<DatacenterId> = BTreeSet::new();
        let mut has_wan = false;
        for (_, n) in graph.nodes() {
            if n.datacenter.is_wan() {
                has_wan = true;
            } else if n.role == statesman_types::DeviceRole::Border {
                has_wan = true;
                dcs.insert(n.datacenter.clone());
            } else {
                dcs.insert(n.datacenter.clone());
            }
        }
        for (_, e) in graph.edges() {
            if e.datacenter.is_wan() {
                has_wan = true;
            }
        }

        let mut checkers = Vec::new();
        for dc in &dcs {
            let mut c = Checker::new(
                CheckerConfig {
                    group: ImpactGroup::Datacenter(dc.clone()),
                    policy: config.policy,
                },
                graph.clone(),
            );
            if config.connectivity_invariant {
                c.add_invariant(Box::new(ConnectivityInvariant::new(dc.clone())));
            }
            if let Some((threshold, fraction, sample)) = config.capacity_invariant {
                let inv = match config.capacity_max_pairs {
                    Some(cap) => TorPairCapacityInvariant::sampled(
                        graph,
                        dc.clone(),
                        threshold,
                        fraction,
                        sample,
                        cap,
                        CAPACITY_PANEL_SEED,
                    ),
                    None => TorPairCapacityInvariant::new(
                        graph,
                        dc.clone(),
                        threshold,
                        fraction,
                        sample,
                    ),
                };
                if inv.pair_count() > 0 {
                    c.add_invariant(Box::new(inv));
                }
            }
            let mut c = c
                .with_delta_reads(config.delta_state_plane)
                .with_columnar_state(config.columnar_state);
            if let Some(n) = config.worker_threads {
                c = c.with_worker_threads(n);
            }
            checkers.push(c);
        }
        if has_wan {
            let mut c = Checker::new(
                CheckerConfig {
                    group: ImpactGroup::Wan,
                    policy: config.policy,
                },
                graph.clone(),
            );
            if let Some(min) = config.wan_invariant {
                c.add_invariant(Box::new(WanLinkInvariant::new(min)));
            }
            let mut c = c
                .with_delta_reads(config.delta_state_plane)
                .with_columnar_state(config.columnar_state);
            if let Some(n) = config.worker_threads {
                c = c.with_worker_threads(n);
            }
            checkers.push(c);
        }

        let mut monitor = Monitor::new(net.clone(), storage.clone(), graph.clone())
            .with_columnar_state(config.columnar_state);
        if let Some(cooldown) = config.quarantine_cooldown {
            monitor = monitor.with_quarantine_cooldown(cooldown);
        }
        monitor = if config.delta_state_plane {
            match config.monitor_resync_every {
                Some(every) => monitor.with_resync_every(every),
                None => monitor,
            }
        } else {
            // Snapshot mode: every round is a full rewrite.
            monitor.with_resync_every(1)
        };
        let mut updater = Updater::new(net.clone(), storage.clone(), graph.clone())
            .with_delta_reads(config.delta_state_plane)
            .with_columnar_state(config.columnar_state);
        if let Some(n) = config.worker_threads {
            updater = updater.with_worker_threads(n);
        }
        if let Some(policy) = config.updater_retry.clone() {
            updater = updater.with_retry(policy);
        }
        if let Some((threshold, cooldown)) = config.updater_breaker {
            updater = updater.with_circuit_breaker(threshold, cooldown);
        }
        updater = updater.with_plan_synthesis(config.plan_synthesis);
        if config.plan_synthesis {
            // The updater gets its own invariant instances (mirroring the
            // checker set) for the per-step in-flight checks: the checker
            // validated the full target state, but the observed state can
            // shift between acceptance and execution, so each step is
            // re-checked against the projected intermediate network.
            let mut invs: Vec<Box<dyn crate::invariants::Invariant>> = Vec::new();
            for dc in &dcs {
                if config.connectivity_invariant {
                    invs.push(Box::new(ConnectivityInvariant::new(dc.clone())));
                }
                if let Some((threshold, fraction, sample)) = config.capacity_invariant {
                    let inv = match config.capacity_max_pairs {
                        Some(cap) => TorPairCapacityInvariant::sampled(
                            graph,
                            dc.clone(),
                            threshold,
                            fraction,
                            sample,
                            cap,
                            CAPACITY_PANEL_SEED,
                        ),
                        None => TorPairCapacityInvariant::new(
                            graph,
                            dc.clone(),
                            threshold,
                            fraction,
                            sample,
                        ),
                    };
                    if inv.pair_count() > 0 {
                        invs.push(Box::new(inv));
                    }
                }
            }
            if has_wan {
                if let Some(min) = config.wan_invariant {
                    invs.push(Box::new(WanLinkInvariant::new(min)));
                }
            }
            updater = updater.with_plan_invariants(invs);
        }

        // Instrument the shared services against the same registry the
        // loop records into, so one scrape covers every layer.
        if let Some(obs) = &config.obs {
            storage.attach_obs(&obs.registry);
            net.attach_obs(&obs.registry);
        }
        let obs = config.obs.map(|o| {
            let handles = CoordObs::new(&o, &storage);
            (o, handles)
        });

        Coordinator {
            monitor,
            checkers,
            updater,
            storage,
            net,
            monitor_instances: config.monitor_instances,
            parallel_checkers: config.parallel_checkers,
            workers: config
                .worker_threads
                .map(crate::engine::WorkerPool::new)
                .unwrap_or_default(),
            obs,
            round: AtomicU64::new(0),
        }
    }

    /// The observability handle, if one was configured.
    pub fn obs(&self) -> Option<&Obs> {
        self.obs.as_ref().map(|(o, _)| o)
    }

    /// The impact groups this coordinator runs checkers for.
    pub fn groups(&self) -> Vec<String> {
        self.checkers.iter().map(|c| c.group().name()).collect()
    }

    /// The storage service handle.
    pub fn storage(&self) -> &StorageService {
        &self.storage
    }

    /// Run one full round at the current simulated time: collect, check
    /// every group, update.
    ///
    /// The round is *degraded-mode tolerant*: impact groups whose storage
    /// partition is unavailable are skipped (and reported), the monitor
    /// skips entities homed in those partitions, and quarantined devices
    /// are passed to every checker as uncontrollable. A partition outage
    /// therefore shrinks the round instead of failing it.
    pub fn tick(&self) -> StateResult<RoundReport> {
        let down: BTreeSet<DatacenterId> = self
            .storage
            .partitions()
            .into_iter()
            .filter(|dc| !self.storage.partition_available(dc))
            .collect();

        let monitor = if !down.is_empty() {
            self.monitor.run_round_excluding(&down)?
        } else {
            match self.monitor_instances {
                Some(n) => self.monitor.run_round_parallel(n)?,
                None => self.monitor.run_round()?,
            }
        };
        let now = self.net.clock().now();
        let quarantined = self.monitor.quarantined_devices(now);

        let mut skipped_groups = Vec::new();
        let live: Vec<&Checker> = self
            .checkers
            .iter()
            .filter(|c| {
                if down.contains(&c.group().primary_partition()) {
                    skipped_groups.push(c.group().name());
                    false
                } else {
                    true
                }
            })
            .collect();

        let checkers = if self.parallel_checkers {
            // Groups fan out across the bounded worker pool; results
            // come back in group order so the report stays deterministic.
            let results: Vec<StateResult<CheckerPassReport>> = self.workers.run(&live, |_, c| {
                c.run_pass_with_unreachable(&self.storage, now, &quarantined)
            });
            results.into_iter().collect::<StateResult<Vec<_>>>()?
        } else {
            let mut reports = Vec::with_capacity(live.len());
            for c in &live {
                reports.push(c.run_pass_with_unreachable(&self.storage, now, &quarantined)?);
            }
            reports
        };
        // The updater honors the quarantine too: commanding a device whose
        // OS is stale can re-disturb it (reboot loops) and starve the
        // monitor of the fresh poll that would clear the diff.
        let updater = self.updater.run_round_excluding(&quarantined)?;
        let (storage_retries, storage_retries_exhausted) = self.storage.retry_stats();
        let (delta_reads, full_fallbacks, _suppressed) = self.storage.delta_stats();
        // How far behind the freshest OS is the updater's cached mirror,
        // in versions, across live partitions. A healthy delta plane
        // keeps this at 0; a gap means the next round falls back.
        let watermark_lag = self
            .storage
            .partitions()
            .into_iter()
            .filter(|dc| self.storage.partition_available(dc))
            .filter_map(|dc| {
                let head = self.storage.pool_watermark(&dc, &Pool::Observed).ok()?;
                let cached = self.updater.cached_watermark(&Pool::Observed, &dc)?;
                Some(head.0.saturating_sub(cached.0))
            })
            .max()
            .unwrap_or(0);
        let report = RoundReport {
            rows_written: monitor.rows_written,
            writes_suppressed: monitor.writes_suppressed,
            monitor,
            checkers,
            updater,
            skipped_groups,
            storage_retries,
            storage_retries_exhausted,
            delta_reads,
            full_fallbacks,
            watermark_lag,
        };
        self.record_round(&report);
        Ok(report)
    }

    /// Record one finished round into the observability handle (metrics,
    /// a [`RoundTrace`], and the status board). No-op without one.
    fn record_round(&self, report: &RoundReport) {
        let Some((obs, m)) = &self.obs else {
            return;
        };
        let round = self.round.fetch_add(1, Ordering::Relaxed);
        let now = self.net.clock().now();
        let (monitor_ms, checker_ms, updater_ms) = report.latency_breakdown_ms();

        m.rounds.inc();
        if report.degraded() {
            m.degraded_rounds.inc();
        }
        m.monitor_polled.add(report.monitor.devices_polled as u64);
        m.monitor_unreachable
            .add(report.monitor.devices_unreachable as u64);
        m.monitor_quarantined
            .set(report.monitor.devices_quarantined as i64);
        m.monitor_round_ms.observe(monitor_ms);
        let mut reject_reasons: BTreeMap<String, usize> = BTreeMap::new();
        let mut proposals_seen = 0usize;
        let mut already_satisfied = 0usize;
        for pass in &report.checkers {
            proposals_seen += pass.proposals_seen;
            already_satisfied += pass.already_satisfied;
            m.checker_pass_ms.observe(pass.elapsed.as_secs_f64() * 1e3);
            for receipt in &pass.receipts {
                if receipt.outcome.is_rejected() {
                    *reject_reasons
                        .entry(receipt.outcome.tag().to_string())
                        .or_insert(0) += 1;
                }
            }
        }
        m.checker_proposals.add(proposals_seen as u64);
        m.checker_accepted.add(report.accepted() as u64);
        m.checker_rejected.add(report.rejected() as u64);
        m.checker_already_satisfied.add(already_satisfied as u64);
        m.checker_quarantine_rejected
            .add(report.quarantine_rejected() as u64);
        m.updater_diffs.add(report.updater.diffs as u64);
        m.updater_applied
            .add(report.updater.commands_applied as u64);
        m.updater_failed.add(report.updater.commands_failed as u64);
        m.updater_retries.add(report.updater.retries as u64);
        m.updater_breaker_skips
            .add(report.updater.breaker_skips as u64);
        m.updater_breakers_opened
            .add(report.updater.breakers_opened as u64);
        m.updater_plan_steps.add(report.updater.plan_steps as u64);
        m.updater_plan_waves.add(report.updater.plan_waves as u64);
        m.updater_plan_max_width
            .set(report.updater.plan_max_width as i64);
        m.updater_plan_inflight_rejections
            .add(report.updater.plan_inflight_rejections as u64);
        m.updater_plan_rollbacks
            .add(report.updater.plan_rollbacks as u64);
        m.updater_round_ms.observe(updater_ms);
        let full_degrades_total: u64 = self.checkers.iter().map(|c| c.full_degrades()).sum();
        let prev_degrades = m
            .last_full_degrades
            .swap(full_degrades_total, Ordering::Relaxed);
        m.checker_full_degrades
            .add(full_degrades_total.saturating_sub(prev_degrades));
        m.monitor_rows_written.add(report.rows_written as u64);
        m.monitor_writes_suppressed
            .add(report.writes_suppressed as u64);
        m.watermark_lag.set(report.watermark_lag as i64);
        let interned = statesman_types::interned_count() as u64;
        m.interned_entities.set(interned as i64);
        let total = statesman_types::key_resolutions();
        let prev = m.last_resolutions.swap(total, Ordering::Relaxed);
        let resolved_this_round = total.saturating_sub(prev);
        m.key_resolutions.add(resolved_this_round);
        let lock_wait_total = self.storage.lock_wait_stats();
        let prev_wait = m.last_lock_wait_us.swap(lock_wait_total, Ordering::Relaxed);
        let lock_wait_this_round = lock_wait_total.saturating_sub(prev_wait);
        let (state_bytes, state_rows) = self.storage.state_bytes();
        let state_bytes_per_var = if state_rows > 0 {
            state_bytes as f64 / state_rows as f64
        } else {
            0.0
        };
        m.state_rows.set(state_rows as i64);
        m.state_bytes_per_var.set(state_bytes_per_var as i64);
        let pool_rows: Vec<(String, u64)> = self
            .storage
            .pool_row_stats()
            .into_iter()
            .map(|(p, n)| (p.wire_name().into_owned(), n))
            .collect();

        let quarantined: Vec<String> = self
            .monitor
            .quarantined_devices(now)
            .into_iter()
            .map(|d| d.to_string())
            .collect();
        let breakers_open: Vec<String> = self
            .updater
            .open_breakers(now)
            .into_iter()
            .map(|d| d.to_string())
            .collect();

        obs.traces.push(RoundTrace {
            round,
            at_ms: now.as_millis(),
            monitor_ms,
            checker_ms,
            updater_ms,
            devices_polled: report.monitor.devices_polled,
            devices_unreachable: report.monitor.devices_unreachable,
            devices_quarantined: report.monitor.devices_quarantined,
            quarantined: quarantined.clone(),
            skipped_groups: report.skipped_groups.clone(),
            degraded: report.degraded(),
            proposals_seen,
            accepted: report.accepted(),
            rejected: report.rejected(),
            already_satisfied,
            quarantine_rejected: report.quarantine_rejected(),
            reject_reasons,
            updater_diffs: report.updater.diffs,
            commands_applied: report.updater.commands_applied,
            commands_failed: report.updater.commands_failed,
            updater_retries: report.updater.retries,
            breaker_skips: report.updater.breaker_skips,
            breakers_opened: report.updater.breakers_opened,
            breakers_open: breakers_open.clone(),
            storage_retries: report.storage_retries,
            storage_retries_exhausted: report.storage_retries_exhausted,
            rows_written: report.rows_written,
            writes_suppressed: report.writes_suppressed,
            delta_reads: report.delta_reads,
            full_fallbacks: report.full_fallbacks,
            watermark_lag: report.watermark_lag,
            plan_steps: report.updater.plan_steps,
            plan_waves: report.updater.plan_waves,
            plan_max_width: report.updater.plan_max_width,
            plan_inflight_rejections: report.updater.plan_inflight_rejections,
            plan_rollbacks: report.updater.plan_rollbacks,
            updater_stage_read_ms: report.updater.stage_read.as_secs_f64() * 1e3,
            updater_stage_diff_ms: report.updater.stage_diff.as_secs_f64() * 1e3,
            updater_stage_exec_ms: report.updater.stage_exec.as_secs_f64() * 1e3,
            monitor_stage_poll_ms: report.monitor.stage_poll.as_secs_f64() * 1e3,
            monitor_stage_diff_ms: report.monitor.stage_diff.as_secs_f64() * 1e3,
            monitor_stage_write_ms: report.monitor.stage_write.as_secs_f64() * 1e3,
        });
        obs.set_status(StatusBoard {
            quarantined,
            breakers_open,
            degraded_partitions: report.skipped_groups.clone(),
            last_round: Some(round),
            interned_entities: interned,
            key_resolutions_last_round: resolved_this_round,
            storage_lock_wait_us_last_round: lock_wait_this_round,
            last_recovery: self.storage.last_recovery(),
            pool_rows,
            state_bytes_per_var,
            plan_steps_last_round: report.updater.plan_steps,
            plan_waves_last_round: report.updater.plan_waves,
            plan_max_width_last_round: report.updater.plan_max_width,
            plan_inflight_rejections_last_round: report.updater.plan_inflight_rejections,
            plan_rollbacks_last_round: report.updater.plan_rollbacks,
            checker_full_degrades: full_degrades_total,
        });
    }

    /// Run one round and then advance the simulation by `step`, letting
    /// issued commands land (the cadence applications are told to expect:
    /// "their control loops should operate at the time scale of minutes",
    /// §7.1).
    pub fn tick_and_advance(&self, step: SimDuration) -> StateResult<RoundReport> {
        let report = self.tick()?;
        self.net.step(step);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::StatesmanClient;
    use statesman_net::{SimClock, SimConfig};
    use statesman_topology::DcnSpec;
    use statesman_types::{Attribute, EntityName, Value};

    fn setup() -> (NetworkGraph, SimNetwork, StorageService, SimClock) {
        let clock = SimClock::new();
        let graph = DcnSpec::tiny("dc1").build();
        let mut cfg = SimConfig::ideal();
        cfg.faults.command_latency_ms = 500;
        cfg.faults.reboot_window_ms = 2 * 60_000;
        let net = SimNetwork::new(&graph, clock.clone(), cfg);
        let storage = StorageService::single_dc("dc1", clock.clone());
        (graph, net, storage, clock)
    }

    #[test]
    fn groups_cover_dc() {
        let (graph, net, storage, _clock) = setup();
        let coord = Coordinator::new(&graph, net, storage, CoordinatorConfig::default());
        assert_eq!(coord.groups(), vec!["dc:dc1".to_string()]);
    }

    #[test]
    fn end_to_end_upgrade_converges() {
        let (graph, net, storage, clock) = setup();
        let coord = Coordinator::new(
            &graph,
            net.clone(),
            storage.clone(),
            CoordinatorConfig {
                // tiny fabric has 2 aggs/pod: 50% threshold allows 1 down.
                capacity_invariant: Some((0.5, 0.99, Some(1))),
                ..Default::default()
            },
        );
        let app = StatesmanClient::new("switch-upgrade", storage.clone(), clock.clone());

        // Round 0: populate the OS.
        coord.tick_and_advance(SimDuration::from_mins(1)).unwrap();

        // Propose one Agg upgrade.
        app.propose([(
            EntityName::device("dc1", "agg-1-1"),
            Attribute::DeviceFirmwareVersion,
            Value::text("7.0"),
        )])
        .unwrap();
        let r = coord.tick_and_advance(SimDuration::from_mins(5)).unwrap();
        assert_eq!(r.accepted(), 1);
        assert!(r.updater.commands_applied >= 1);

        // After the reboot window, the device runs 7.0 and the loop is
        // quiescent.
        let r2 = coord.tick_and_advance(SimDuration::from_mins(5)).unwrap();
        let _ = r2;
        let r3 = coord.tick_and_advance(SimDuration::from_mins(5)).unwrap();
        assert_eq!(r3.updater.diffs, 0, "converged: {:?}", r3.updater);
        assert_eq!(
            net.device_snapshot(&"agg-1-1".into())
                .unwrap()
                .observed_firmware(),
            "7.0"
        );
        let receipts = app.take_receipts().unwrap();
        assert!(receipts.iter().any(|x| x.outcome.is_accepted()));
    }

    #[test]
    fn latency_breakdown_has_all_stages() {
        let (graph, net, storage, _clock) = setup();
        let coord = Coordinator::new(&graph, net, storage, CoordinatorConfig::default());
        let r = coord.tick().unwrap();
        let (m, c, u) = r.latency_breakdown_ms();
        assert!(m > 0.0);
        assert!(c > 0.0);
        // No TS yet → no updater work this round.
        assert_eq!(u, 0.0);
        assert!(r.updater_share() < 0.5);
    }

    #[test]
    fn degraded_tick_skips_down_partition_groups() {
        let clock = SimClock::new();
        let mut graph = NetworkGraph::new();
        DcnSpec::tiny("dc1").build_prefixed_into(&mut graph);
        DcnSpec::tiny("dc2").build_prefixed_into(&mut graph);
        let net = SimNetwork::new(&graph, clock.clone(), SimConfig::ideal());
        let storage = StorageService::new(
            [DatacenterId::new("dc1"), DatacenterId::new("dc2")],
            clock.clone(),
            statesman_storage::StorageConfig::default(),
        );
        let coord = Coordinator::new(&graph, net, storage.clone(), CoordinatorConfig::default());
        assert_eq!(coord.groups().len(), 2);

        let r0 = coord.tick().unwrap();
        assert!(!r0.degraded());
        assert_eq!(r0.checkers.len(), 2);

        // dc2's partition goes down: its group is skipped, dc1's work
        // continues, and the round completes instead of erroring.
        storage.set_partition_available(&DatacenterId::new("dc2"), false);
        clock.advance(SimDuration::from_mins(1));
        let r1 = coord.tick().unwrap();
        assert!(r1.degraded());
        assert_eq!(r1.skipped_groups, vec!["dc:dc2".to_string()]);
        assert_eq!(r1.checkers.len(), 1);
        assert_eq!(r1.monitor.devices_polled, graph.node_count() / 2);

        // Heal: full service resumes.
        storage.set_partition_available(&DatacenterId::new("dc2"), true);
        clock.advance(SimDuration::from_mins(1));
        let r2 = coord.tick().unwrap();
        assert!(!r2.degraded());
        assert_eq!(r2.checkers.len(), 2);
        assert_eq!(r2.monitor.devices_polled, graph.node_count());
    }

    #[test]
    fn round_report_exposes_fault_and_quarantine_counters() {
        use statesman_net::FaultEvent;
        let clock = SimClock::new();
        let graph = DcnSpec::tiny("dc1").build();
        let mut cfg = SimConfig::ideal();
        cfg.faults = cfg.faults.with_event(
            statesman_types::SimTime::from_secs(30),
            FaultEvent::CrashDevice {
                device: statesman_types::DeviceName::new("agg-1-1"),
            },
        );
        let net = SimNetwork::new(&graph, clock.clone(), cfg);
        let storage = StorageService::single_dc("dc1", clock.clone());
        let coord = Coordinator::new(
            &graph,
            net,
            storage.clone(),
            CoordinatorConfig {
                quarantine_cooldown: Some(SimDuration::from_mins(30)),
                updater_breaker: Some((1, SimDuration::from_mins(30))),
                ..Default::default()
            },
        );
        let app = StatesmanClient::new("switch-upgrade", storage, clock);

        // Round 0 seeds the OS; the crash fires during the advance.
        coord.tick_and_advance(SimDuration::from_mins(1)).unwrap();
        // Round 1 discovers the dead device and quarantines it.
        let r1 = coord.tick_and_advance(SimDuration::from_mins(1)).unwrap();
        assert_eq!(r1.monitor.devices_unreachable, 1);

        // Round 2: the device is under quarantine, and a proposal
        // touching it is refused — all visible in the round report.
        app.propose([(
            EntityName::device("dc1", "agg-1-1"),
            Attribute::DeviceFirmwareVersion,
            Value::text("7.0"),
        )])
        .unwrap();
        let r2 = coord.tick_and_advance(SimDuration::from_mins(1)).unwrap();
        assert_eq!(r2.devices_quarantined(), 1);
        assert_eq!(r2.quarantine_rejected(), 1);
        assert_eq!(r2.accepted(), 0);
        assert!(!r2.degraded());
        assert_eq!(r2.storage_retries, 0);
        let (failed, retries, skips, opened) = r2.command_fault_counters();
        assert_eq!(
            (failed, retries, skips, opened),
            (0, 0, 0, 0),
            "quarantine kept the updater from ever touching the dead device"
        );
    }

    #[test]
    fn obs_records_metrics_trace_and_status_each_tick() {
        let (graph, net, storage, clock) = setup();
        let obs = Obs::new();
        let coord = Coordinator::new(
            &graph,
            net,
            storage.clone(),
            CoordinatorConfig {
                obs: Some(obs.clone()),
                ..Default::default()
            },
        );
        let app = StatesmanClient::new("switch-upgrade", storage, clock);
        coord.tick_and_advance(SimDuration::from_mins(1)).unwrap();
        app.propose([(
            EntityName::device("dc1", "agg-1-1"),
            Attribute::DeviceFirmwareVersion,
            Value::text("7.0"),
        )])
        .unwrap();
        let r = coord.tick_and_advance(SimDuration::from_mins(1)).unwrap();

        // Metrics mirror the round reports.
        let reg = &obs.registry;
        assert_eq!(reg.counter_value("coordinator_rounds_total"), Some(2));
        assert!(reg.counter_value("monitor_devices_polled_total").unwrap() > 0);
        assert_eq!(reg.counter_value("checker_accepted_total"), Some(1));
        assert!(reg.counter_value("updater_commands_applied_total").unwrap() >= 1);
        // Storage was auto-attached to the same registry.
        assert!(reg.counter_value("storage_reads_total").unwrap() > 0);

        // The last trace matches the report's latency breakdown exactly.
        let trace = obs.traces.last().unwrap();
        assert_eq!(trace.round, 1);
        assert_eq!(trace.latency_breakdown_ms(), r.latency_breakdown_ms());
        assert_eq!(trace.accepted, 1);
        assert_eq!(
            trace.proposals_seen,
            trace.accepted + trace.rejected + trace.already_satisfied
        );
        assert_eq!(obs.traces.len(), 2);
        assert_eq!(obs.status().last_round, Some(1));
    }

    #[test]
    fn quiescent_rounds_ride_the_delta_plane() {
        let (graph, net, storage, _clock) = setup();
        let obs = Obs::new();
        let coord = Coordinator::new(
            &graph,
            net,
            storage.clone(),
            CoordinatorConfig {
                obs: Some(obs.clone()),
                ..Default::default()
            },
        );

        // Round 0 seeds the OS: everything is new, nothing suppressed.
        let r0 = coord.tick_and_advance(SimDuration::from_mins(1)).unwrap();
        assert!(r0.rows_written > 0);
        assert_eq!(r0.writes_suppressed, 0);

        // Quiescent round: no topology or config changed, so only live
        // telemetry (cpu/mem utilization) is rewritten and everything
        // else is suppressed.
        let r1 = coord.tick_and_advance(SimDuration::from_mins(1)).unwrap();
        assert_eq!(r1.rows_written + r1.writes_suppressed, r0.rows_written);
        assert!(
            r1.rows_written * 4 < r0.rows_written,
            "quiescent round rewrote most of the pool: {r1:?}"
        );
        assert!(r1.delta_reads > r0.delta_reads);
        assert_eq!(r1.watermark_lag, 0);

        // All of it is visible on the trace ring (and thus /v1/status).
        let trace = obs.traces.last().unwrap();
        assert_eq!(trace.rows_written, r1.rows_written);
        assert_eq!(trace.writes_suppressed, r1.writes_suppressed);
        assert_eq!(trace.delta_reads, r1.delta_reads);
        assert_eq!(trace.full_fallbacks, r1.full_fallbacks);
        assert_eq!(trace.watermark_lag, 0);
        let reg = &obs.registry;
        assert_eq!(
            reg.counter_value("monitor_writes_suppressed_total"),
            Some(r1.writes_suppressed as u64)
        );
        assert!(reg.counter_value("monitor_rows_written_total").unwrap() > 0);
        assert_eq!(reg.gauge("state_watermark_lag").get(), 0);

        // The interned state plane is observable: every entity this
        // deployment touched sits in the symbol table, and the gauge and
        // status board both report it.
        let interned = reg.gauge("interned_entities").get();
        assert!(
            interned >= (graph.node_count() + graph.edge_count()) as i64,
            "every polled entity should be interned: {interned}"
        );
        assert_eq!(obs.status().interned_entities, interned as u64);
        // Edge resolutions stay rare on the hot path: the counter exists
        // and quiescent rounds resolve (at most) a handful of keys.
        assert!(reg.counter_value("key_resolutions_total").is_some());
        assert!(
            obs.status().key_resolutions_last_round < 100,
            "resolution crept into a hot loop: {}",
            obs.status().key_resolutions_last_round
        );
    }

    #[test]
    fn disabling_the_delta_plane_restores_snapshot_rounds() {
        let (graph, net, storage, _clock) = setup();
        let coord = Coordinator::new(
            &graph,
            net,
            storage,
            CoordinatorConfig {
                delta_state_plane: false,
                ..Default::default()
            },
        );
        let r0 = coord.tick_and_advance(SimDuration::from_mins(1)).unwrap();
        let r1 = coord.tick_and_advance(SimDuration::from_mins(1)).unwrap();
        // Snapshot mode: the quiescent round still rewrites everything
        // and never touches the change index.
        assert_eq!(r1.rows_written, r0.rows_written);
        assert_eq!(r1.writes_suppressed, 0);
        assert_eq!(r1.delta_reads, 0);
        assert_eq!(r1.watermark_lag, 0);
    }

    #[test]
    fn delta_plane_converges_like_the_snapshot_plane() {
        // The end-to-end upgrade scenario, once per plane; both must land
        // the same final device state and proposal outcome.
        for delta in [true, false] {
            let (graph, net, storage, clock) = setup();
            let coord = Coordinator::new(
                &graph,
                net.clone(),
                storage.clone(),
                CoordinatorConfig {
                    delta_state_plane: delta,
                    ..Default::default()
                },
            );
            let app = StatesmanClient::new("switch-upgrade", storage, clock);
            coord.tick_and_advance(SimDuration::from_mins(1)).unwrap();
            app.propose([(
                EntityName::device("dc1", "agg-1-1"),
                Attribute::DeviceFirmwareVersion,
                Value::text("7.0"),
            )])
            .unwrap();
            let r = coord.tick_and_advance(SimDuration::from_mins(5)).unwrap();
            assert_eq!(r.accepted(), 1, "delta={delta}");
            coord.tick_and_advance(SimDuration::from_mins(5)).unwrap();
            let r3 = coord.tick_and_advance(SimDuration::from_mins(5)).unwrap();
            assert_eq!(r3.updater.diffs, 0, "delta={delta}: {:?}", r3.updater);
            assert_eq!(
                net.device_snapshot(&"agg-1-1".into())
                    .unwrap()
                    .observed_firmware(),
                "7.0",
                "delta={delta}"
            );
        }
    }

    #[test]
    fn plan_synthesis_converges_like_the_chain_walk() {
        // The end-to-end upgrade scenario, once per execution mode; both
        // must land the same final device state, and the planned run must
        // report its plan shape.
        for planned in [true, false] {
            let (graph, net, storage, clock) = setup();
            let coord = Coordinator::new(
                &graph,
                net.clone(),
                storage.clone(),
                CoordinatorConfig {
                    plan_synthesis: planned,
                    ..Default::default()
                },
            );
            let app = StatesmanClient::new("switch-upgrade", storage, clock);
            coord.tick_and_advance(SimDuration::from_mins(1)).unwrap();
            app.propose([(
                EntityName::device("dc1", "agg-1-1"),
                Attribute::DeviceFirmwareVersion,
                Value::text("7.0"),
            )])
            .unwrap();
            let r = coord.tick_and_advance(SimDuration::from_mins(5)).unwrap();
            assert_eq!(r.accepted(), 1, "planned={planned}");
            if planned {
                assert!(r.updater.plan_steps >= 1, "planned: {:?}", r.updater);
                assert!(r.updater.plan_waves >= 1);
                assert_eq!(r.updater.plan_inflight_rejections, 0);
            } else {
                assert_eq!(r.updater.plan_steps, 0);
            }
            coord.tick_and_advance(SimDuration::from_mins(5)).unwrap();
            let r3 = coord.tick_and_advance(SimDuration::from_mins(5)).unwrap();
            assert_eq!(r3.updater.diffs, 0, "planned={planned}: {:?}", r3.updater);
            assert_eq!(
                net.device_snapshot(&"agg-1-1".into())
                    .unwrap()
                    .observed_firmware(),
                "7.0",
                "planned={planned}"
            );
        }
    }

    #[test]
    fn unsafe_parallel_upgrades_blocked_end_to_end() {
        let (graph, net, storage, clock) = setup();
        let coord = Coordinator::new(&graph, net, storage.clone(), CoordinatorConfig::default());
        let app = StatesmanClient::new("switch-upgrade", storage, clock);
        coord.tick_and_advance(SimDuration::from_mins(1)).unwrap();

        // Tiny fabric: 2 aggs per pod. Upgrading both at once would cut
        // pod 1's ToRs off (0% capacity) — one must be rejected.
        app.propose([
            (
                EntityName::device("dc1", "agg-1-1"),
                Attribute::DeviceFirmwareVersion,
                Value::text("7.0"),
            ),
            (
                EntityName::device("dc1", "agg-1-2"),
                Attribute::DeviceFirmwareVersion,
                Value::text("7.0"),
            ),
        ])
        .unwrap();
        let r = coord.tick_and_advance(SimDuration::from_mins(1)).unwrap();
        assert_eq!(r.accepted(), 1);
        assert_eq!(r.rejected(), 1);
    }
}
