//! The coordinator: one Statesman control round, end-to-end.
//!
//! Wires the monitor → checkers (one per impact group) → updater into the
//! round a deployment runs continuously (Fig 6), and accounts per-stage
//! latency: the monitor and updater report modeled device-interaction time
//! (their work is I/O against hundreds of switches), while the checker
//! reports wall-clock compute time (its work is in-memory merging and
//! invariant evaluation). The §8 slide summarizes the resulting breakdown:
//! application share negligible, checker seconds, updater dominating with
//! more than half the loop.

use crate::checker::{Checker, CheckerConfig, CheckerPassReport, MergePolicy};
use crate::groups::ImpactGroup;
use crate::invariants::{ConnectivityInvariant, TorPairCapacityInvariant, WanLinkInvariant};
use crate::monitor::{Monitor, MonitorReport};
use crate::updater::{Updater, UpdaterReport};
use statesman_net::SimNetwork;
use statesman_storage::StorageService;
use statesman_topology::NetworkGraph;
use statesman_types::{DatacenterId, SimDuration, StateResult};
use std::collections::BTreeSet;

/// Coordinator construction knobs.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Conflict-resolution policy for all checkers.
    pub policy: MergePolicy,
    /// Install the connectivity invariant in every DC group.
    pub connectivity_invariant: bool,
    /// Install the ToR-pair capacity invariant in every DC group:
    /// (capacity threshold, pair fraction, sampled ToRs per pod).
    pub capacity_invariant: Option<(f64, f64, Option<u32>)>,
    /// Install the WAN-link invariant on the WAN group with this minimum.
    pub wan_invariant: Option<usize>,
    /// Collect with this many concurrent monitor instances (`None` =
    /// serial). The paper runs one instance per ~1,000 switches (§6.3);
    /// pass `Some(devices / 1000 + 1)` to mirror that.
    pub monitor_instances: Option<usize>,
    /// Run the per-group checker passes on concurrent threads. Groups are
    /// independent by construction (§5 — disjoint entities, disjoint
    /// invariant scopes), so their passes commute; the report order stays
    /// deterministic (group order) either way.
    pub parallel_checkers: bool,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            policy: MergePolicy::PriorityLock,
            connectivity_invariant: true,
            capacity_invariant: Some((0.5, 0.99, Some(1))),
            wan_invariant: Some(1),
            monitor_instances: None,
            parallel_checkers: false,
        }
    }
}

/// One full round's reports.
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// Monitor stage.
    pub monitor: MonitorReport,
    /// Checker stage, one report per impact group (group order).
    pub checkers: Vec<CheckerPassReport>,
    /// Updater stage.
    pub updater: UpdaterReport,
}

impl RoundReport {
    /// Per-stage latency in milliseconds: (monitor, checker, updater).
    /// Monitor/updater latency is modeled device I/O; checker latency is
    /// measured compute (its I/O is against in-memory storage leaders).
    pub fn latency_breakdown_ms(&self) -> (f64, f64, f64) {
        let monitor = self.monitor.sim_io.as_millis() as f64;
        let checker: f64 = self
            .checkers
            .iter()
            .map(|c| c.elapsed.as_secs_f64() * 1e3)
            .sum();
        let updater = self.updater.sim_io.as_millis() as f64;
        (monitor, checker, updater)
    }

    /// Updater share of the loop, in `[0,1]`.
    pub fn updater_share(&self) -> f64 {
        let (m, c, u) = self.latency_breakdown_ms();
        let total = m + c + u;
        if total <= 0.0 {
            0.0
        } else {
            u / total
        }
    }

    /// Total proposals accepted across groups.
    pub fn accepted(&self) -> usize {
        self.checkers.iter().map(|c| c.accepted).sum()
    }

    /// Total proposals rejected across groups.
    pub fn rejected(&self) -> usize {
        self.checkers.iter().map(|c| c.rejected).sum()
    }
}

/// The wired-up Statesman instance.
pub struct Coordinator {
    monitor: Monitor,
    checkers: Vec<Checker>,
    updater: Updater,
    storage: StorageService,
    net: SimNetwork,
    monitor_instances: Option<usize>,
    parallel_checkers: bool,
}

impl Coordinator {
    /// Build a coordinator over a deployment: one checker per datacenter
    /// found in `graph` plus the WAN group (if any border routers or WAN
    /// links exist).
    pub fn new(
        graph: &NetworkGraph,
        net: SimNetwork,
        storage: StorageService,
        config: CoordinatorConfig,
    ) -> Self {
        let mut dcs: BTreeSet<DatacenterId> = BTreeSet::new();
        let mut has_wan = false;
        for (_, n) in graph.nodes() {
            if n.datacenter.is_wan() {
                has_wan = true;
            } else if n.role == statesman_types::DeviceRole::Border {
                has_wan = true;
                dcs.insert(n.datacenter.clone());
            } else {
                dcs.insert(n.datacenter.clone());
            }
        }
        for (_, e) in graph.edges() {
            if e.datacenter.is_wan() {
                has_wan = true;
            }
        }

        let mut checkers = Vec::new();
        for dc in &dcs {
            let mut c = Checker::new(
                CheckerConfig {
                    group: ImpactGroup::Datacenter(dc.clone()),
                    policy: config.policy,
                },
                graph.clone(),
            );
            if config.connectivity_invariant {
                c.add_invariant(Box::new(ConnectivityInvariant::new(dc.clone())));
            }
            if let Some((threshold, fraction, sample)) = config.capacity_invariant {
                let inv =
                    TorPairCapacityInvariant::new(graph, dc.clone(), threshold, fraction, sample);
                if inv.pair_count() > 0 {
                    c.add_invariant(Box::new(inv));
                }
            }
            checkers.push(c);
        }
        if has_wan {
            let mut c = Checker::new(
                CheckerConfig {
                    group: ImpactGroup::Wan,
                    policy: config.policy,
                },
                graph.clone(),
            );
            if let Some(min) = config.wan_invariant {
                c.add_invariant(Box::new(WanLinkInvariant::new(min)));
            }
            checkers.push(c);
        }

        Coordinator {
            monitor: Monitor::new(net.clone(), storage.clone(), graph.clone()),
            checkers,
            updater: Updater::new(net.clone(), storage.clone(), graph.clone()),
            storage,
            net,
            monitor_instances: config.monitor_instances,
            parallel_checkers: config.parallel_checkers,
        }
    }

    /// The impact groups this coordinator runs checkers for.
    pub fn groups(&self) -> Vec<String> {
        self.checkers.iter().map(|c| c.group().name()).collect()
    }

    /// The storage service handle.
    pub fn storage(&self) -> &StorageService {
        &self.storage
    }

    /// Run one full round at the current simulated time: collect, check
    /// every group, update.
    pub fn tick(&self) -> StateResult<RoundReport> {
        let monitor = match self.monitor_instances {
            Some(n) => self.monitor.run_round_parallel(n)?,
            None => self.monitor.run_round()?,
        };
        let now = self.net.clock().now();
        let checkers = if self.parallel_checkers {
            // One thread per impact group; results collected in group
            // order so the report stays deterministic.
            let results: Vec<StateResult<CheckerPassReport>> = std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .checkers
                    .iter()
                    .map(|c| scope.spawn(|| c.run_pass(&self.storage, now)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("checker thread panicked"))
                    .collect()
            });
            results.into_iter().collect::<StateResult<Vec<_>>>()?
        } else {
            let mut reports = Vec::with_capacity(self.checkers.len());
            for c in &self.checkers {
                reports.push(c.run_pass(&self.storage, now)?);
            }
            reports
        };
        let updater = self.updater.run_round()?;
        Ok(RoundReport {
            monitor,
            checkers,
            updater,
        })
    }

    /// Run one round and then advance the simulation by `step`, letting
    /// issued commands land (the cadence applications are told to expect:
    /// "their control loops should operate at the time scale of minutes",
    /// §7.1).
    pub fn tick_and_advance(&self, step: SimDuration) -> StateResult<RoundReport> {
        let report = self.tick()?;
        self.net.step(step);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::StatesmanClient;
    use statesman_net::{SimClock, SimConfig};
    use statesman_topology::DcnSpec;
    use statesman_types::{Attribute, EntityName, Value};

    fn setup() -> (NetworkGraph, SimNetwork, StorageService, SimClock) {
        let clock = SimClock::new();
        let graph = DcnSpec::tiny("dc1").build();
        let mut cfg = SimConfig::ideal();
        cfg.faults.command_latency_ms = 500;
        cfg.faults.reboot_window_ms = 2 * 60_000;
        let net = SimNetwork::new(&graph, clock.clone(), cfg);
        let storage = StorageService::single_dc("dc1", clock.clone());
        (graph, net, storage, clock)
    }

    #[test]
    fn groups_cover_dc() {
        let (graph, net, storage, _clock) = setup();
        let coord = Coordinator::new(&graph, net, storage, CoordinatorConfig::default());
        assert_eq!(coord.groups(), vec!["dc:dc1".to_string()]);
    }

    #[test]
    fn end_to_end_upgrade_converges() {
        let (graph, net, storage, clock) = setup();
        let coord = Coordinator::new(
            &graph,
            net.clone(),
            storage.clone(),
            CoordinatorConfig {
                // tiny fabric has 2 aggs/pod: 50% threshold allows 1 down.
                capacity_invariant: Some((0.5, 0.99, Some(1))),
                ..Default::default()
            },
        );
        let app = StatesmanClient::new("switch-upgrade", storage.clone(), clock.clone());

        // Round 0: populate the OS.
        coord.tick_and_advance(SimDuration::from_mins(1)).unwrap();

        // Propose one Agg upgrade.
        app.propose([(
            EntityName::device("dc1", "agg-1-1"),
            Attribute::DeviceFirmwareVersion,
            Value::text("7.0"),
        )])
        .unwrap();
        let r = coord.tick_and_advance(SimDuration::from_mins(5)).unwrap();
        assert_eq!(r.accepted(), 1);
        assert!(r.updater.commands_applied >= 1);

        // After the reboot window, the device runs 7.0 and the loop is
        // quiescent.
        let r2 = coord.tick_and_advance(SimDuration::from_mins(5)).unwrap();
        let _ = r2;
        let r3 = coord.tick_and_advance(SimDuration::from_mins(5)).unwrap();
        assert_eq!(r3.updater.diffs, 0, "converged: {:?}", r3.updater);
        assert_eq!(
            net.device_snapshot(&"agg-1-1".into())
                .unwrap()
                .observed_firmware(),
            "7.0"
        );
        let receipts = app.take_receipts().unwrap();
        assert!(receipts.iter().any(|x| x.outcome.is_accepted()));
    }

    #[test]
    fn latency_breakdown_has_all_stages() {
        let (graph, net, storage, _clock) = setup();
        let coord = Coordinator::new(&graph, net, storage, CoordinatorConfig::default());
        let r = coord.tick().unwrap();
        let (m, c, u) = r.latency_breakdown_ms();
        assert!(m > 0.0);
        assert!(c > 0.0);
        // No TS yet → no updater work this round.
        assert_eq!(u, 0.0);
        assert!(r.updater_share() < 0.5);
    }

    #[test]
    fn unsafe_parallel_upgrades_blocked_end_to_end() {
        let (graph, net, storage, clock) = setup();
        let coord = Coordinator::new(&graph, net, storage.clone(), CoordinatorConfig::default());
        let app = StatesmanClient::new("switch-upgrade", storage, clock);
        coord.tick_and_advance(SimDuration::from_mins(1)).unwrap();

        // Tiny fabric: 2 aggs per pod. Upgrading both at once would cut
        // pod 1's ToRs off (0% capacity) — one must be rejected.
        app.propose([
            (
                EntityName::device("dc1", "agg-1-1"),
                Attribute::DeviceFirmwareVersion,
                Value::text("7.0"),
            ),
            (
                EntityName::device("dc1", "agg-1-2"),
                Attribute::DeviceFirmwareVersion,
                Value::text("7.0"),
            ),
        ])
        .unwrap();
        let r = coord.tick_and_advance(SimDuration::from_mins(1)).unwrap();
        assert_eq!(r.accepted(), 1);
        assert_eq!(r.rejected(), 1);
    }
}
