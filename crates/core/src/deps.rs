//! The state dependency model (paper §4.1, Fig 4).
//!
//! "B depends on A: A is a prerequisite for writing B states; B is
//! controllable only if A's value is appropriate." The model is the
//! checker's first gate: a proposal for a variable whose ancestors are not
//! in an appropriate *observed* state is rejected outright
//! (`RejectedUncontrollable`), because no command sequence could realize
//! it right now.
//!
//! The Fig-4 chains:
//!
//! ```text
//!   Path/Traffic Setup ──▶ Routing Control (of every on-path switch)
//!   Link Interface Config ──▶ Link Power ──▶ Device Configuration (both ends)
//!   Routing Control ──▶ Device Configuration ──▶ OS Setup ──▶ Device Power
//! ```
//!
//! The model is deliberately *data*, not code: a list of [`DependencyRule`]s
//! keyed by the level of the proposed variable. Operators extend it by
//! pushing rules (the lecture slides ask exactly this — "how to extend the
//! dependency model?"); tests exercise a custom rule.

use crate::view::StateView;
use statesman_types::{Attribute, DependencyLevel, EntityName, StateKey, Value};
use std::fmt;

/// Why a variable is uncontrollable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Uncontrollable {
    /// The failing prerequisite, human-readable.
    pub reason: String,
}

impl fmt::Display for Uncontrollable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.reason)
    }
}

/// One dependency rule: given a proposed (key, value) and the observed
/// state, decide whether the prerequisite holds.
pub trait DependencyRule: Send + Sync {
    /// The level this rule guards (rules fire for proposals at this level).
    fn guards(&self) -> DependencyLevel;
    /// Check the prerequisite. `Ok(())` = controllable so far.
    fn check(
        &self,
        key: &StateKey,
        proposed: &Value,
        os: &dyn StateView,
    ) -> Result<(), Uncontrollable>;
    /// Rule name for diagnostics.
    fn name(&self) -> &'static str;
}

/// The model: an ordered rule list. All rules guarding the proposal's
/// level must pass.
///
/// ```
/// use statesman_core::deps::DependencyModel;
/// use statesman_core::MapView;
/// use statesman_types::{Attribute, EntityName, StateKey, Value};
///
/// let model = DependencyModel::standard();
/// let os = MapView::new(); // empty OS: bootstrap defaults apply
/// let key = StateKey::new(
///     EntityName::device("dc1", "agg-1-1"),
///     Attribute::DeviceAdminPower,
/// );
/// assert!(model.check_controllable(&key, &Value::power(true), &os).is_ok());
/// ```
pub struct DependencyModel {
    rules: Vec<Box<dyn DependencyRule>>,
}

impl DependencyModel {
    /// An empty model (everything controllable) — for tests and ablations.
    pub fn permissive() -> Self {
        DependencyModel { rules: Vec::new() }
    }

    /// The standard Fig-4 model.
    pub fn standard() -> Self {
        let mut m = DependencyModel::permissive();
        m.add_rule(Box::new(rules::DevicePowerNeedsPdu));
        m.add_rule(Box::new(rules::OsSetupNeedsPower));
        m.add_rule(Box::new(rules::DeviceConfigNeedsFirmware));
        m.add_rule(Box::new(rules::RoutingNeedsDeviceConfig));
        m.add_rule(Box::new(rules::LinkPowerNeedsEndpointConfig));
        m.add_rule(Box::new(rules::LinkConfigNeedsLinkAdminUp));
        m.add_rule(Box::new(rules::PathNeedsOnPathRouting));
        m
    }

    /// Extend the model with a custom rule (operator extension point).
    pub fn add_rule(&mut self, rule: Box<dyn DependencyRule>) {
        self.rules.push(rule);
    }

    /// Number of installed rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Is the proposed write controllable given the observed state?
    ///
    /// Counters and read-only variables are never proposable — that is
    /// enforced by permission checks upstream; this function only encodes
    /// prerequisite structure. Lock writes are always controllable (locks
    /// are Statesman metadata, not device state).
    pub fn check_controllable(
        &self,
        key: &StateKey,
        proposed: &Value,
        os: &dyn StateView,
    ) -> Result<(), Uncontrollable> {
        let level = key.attribute.dependency_level();
        if matches!(level, DependencyLevel::Meta | DependencyLevel::Counter) {
            return Ok(());
        }
        for rule in &self.rules {
            if rule.guards() == level {
                rule.check(key, proposed, os)?;
            }
        }
        Ok(())
    }
}

/// Helpers shared by the standard rules.
mod helpers {
    use super::*;

    /// Device admin power observed on (defaults to on when unobserved —
    /// a fresh deployment bootstraps bottom-up and the monitor fills the
    /// OS quickly; absent rows must not wedge the first pass).
    pub fn device_power_on(os: &dyn StateView, dev: &EntityName) -> bool {
        os.value_of(dev, Attribute::DeviceAdminPower)
            .and_then(|v| v.as_power())
            .map(|p| p.is_on())
            .unwrap_or(true)
    }

    /// Firmware observed present and non-empty.
    pub fn firmware_running(os: &dyn StateView, dev: &EntityName) -> bool {
        os.value_of(dev, Attribute::DeviceFirmwareVersion)
            .and_then(|v| v.as_text())
            .map(|s| !s.is_empty())
            .unwrap_or(false)
    }

    /// Management interface observed configured (defaults true when
    /// unobserved, same bootstrap rationale as power).
    pub fn mgmt_configured(os: &dyn StateView, dev: &EntityName) -> bool {
        os.value_of(dev, Attribute::DeviceMgmtInterface)
            .and_then(|v| v.as_bool())
            .unwrap_or(true)
    }

    /// The device entity for a device name in the same datacenter.
    pub fn device_entity(of: &EntityName, name: &statesman_types::DeviceName) -> EntityName {
        EntityName::device(of.datacenter.clone(), name.clone())
    }
}

/// The standard Fig-4 rules.
pub mod rules {
    use super::helpers::*;
    use super::*;

    /// Device power is controllable only if the PDU answers.
    pub struct DevicePowerNeedsPdu;
    impl DependencyRule for DevicePowerNeedsPdu {
        fn guards(&self) -> DependencyLevel {
            DependencyLevel::DevicePower
        }
        fn check(
            &self,
            key: &StateKey,
            _proposed: &Value,
            os: &dyn StateView,
        ) -> Result<(), Uncontrollable> {
            let reachable = os
                .value_of(&key.entity, Attribute::DevicePowerUnitReachable)
                .and_then(|v| v.as_bool())
                .unwrap_or(true);
            if reachable {
                Ok(())
            } else {
                Err(Uncontrollable {
                    reason: format!("power unit of {} unreachable", key.entity),
                })
            }
        }
        fn name(&self) -> &'static str {
            "device-power-needs-pdu"
        }
    }

    /// Firmware/boot-image changes need the device powered.
    pub struct OsSetupNeedsPower;
    impl DependencyRule for OsSetupNeedsPower {
        fn guards(&self) -> DependencyLevel {
            DependencyLevel::OperatingSystemSetup
        }
        fn check(
            &self,
            key: &StateKey,
            _proposed: &Value,
            os: &dyn StateView,
        ) -> Result<(), Uncontrollable> {
            if device_power_on(os, &key.entity) {
                Ok(())
            } else {
                Err(Uncontrollable {
                    reason: format!("{} is powered off", key.entity),
                })
            }
        }
        fn name(&self) -> &'static str {
            "os-setup-needs-power"
        }
    }

    /// Device configuration needs a running firmware (and power,
    /// transitively observed through firmware presence).
    pub struct DeviceConfigNeedsFirmware;
    impl DependencyRule for DeviceConfigNeedsFirmware {
        fn guards(&self) -> DependencyLevel {
            DependencyLevel::DeviceConfiguration
        }
        fn check(
            &self,
            key: &StateKey,
            _proposed: &Value,
            os: &dyn StateView,
        ) -> Result<(), Uncontrollable> {
            if !device_power_on(os, &key.entity) {
                return Err(Uncontrollable {
                    reason: format!("{} is powered off", key.entity),
                });
            }
            if firmware_running(os, &key.entity) {
                Ok(())
            } else {
                Err(Uncontrollable {
                    reason: format!("{} has no observed running firmware", key.entity),
                })
            }
        }
        fn name(&self) -> &'static str {
            "device-config-needs-firmware"
        }
    }

    /// Routing control needs the device configuration level healthy:
    /// management reachable, and (for OpenFlow-controlled devices) the
    /// agent observed running.
    pub struct RoutingNeedsDeviceConfig;
    impl DependencyRule for RoutingNeedsDeviceConfig {
        fn guards(&self) -> DependencyLevel {
            DependencyLevel::RoutingControl
        }
        fn check(
            &self,
            key: &StateKey,
            _proposed: &Value,
            os: &dyn StateView,
        ) -> Result<(), Uncontrollable> {
            if !device_power_on(os, &key.entity) {
                return Err(Uncontrollable {
                    reason: format!("{} is powered off", key.entity),
                });
            }
            if !mgmt_configured(os, &key.entity) {
                return Err(Uncontrollable {
                    reason: format!("{} management interface not configured", key.entity),
                });
            }
            // If the OS records an OpenFlow agent at all, it must be
            // running; devices without the row are BGP-controlled.
            if let Some(v) = os.value_of(&key.entity, Attribute::DeviceOpenFlowAgent) {
                if v.as_bool() == Some(false) {
                    return Err(Uncontrollable {
                        reason: format!("{} OpenFlow agent is down", key.entity),
                    });
                }
            }
            Ok(())
        }
        fn name(&self) -> &'static str {
            "routing-needs-device-config"
        }
    }

    /// Link power is controllable only when both endpoint devices are
    /// configured (Fig 4's cross-entity edge).
    pub struct LinkPowerNeedsEndpointConfig;
    impl DependencyRule for LinkPowerNeedsEndpointConfig {
        fn guards(&self) -> DependencyLevel {
            DependencyLevel::LinkPower
        }
        fn check(
            &self,
            key: &StateKey,
            _proposed: &Value,
            os: &dyn StateView,
        ) -> Result<(), Uncontrollable> {
            let Some(link) = key.entity.as_link() else {
                return Err(Uncontrollable {
                    reason: format!("{} is not a link", key.entity),
                });
            };
            for end in [&link.a, &link.b] {
                let dev = device_entity(&key.entity, end);
                if !device_power_on(os, &dev) {
                    return Err(Uncontrollable {
                        reason: format!("endpoint {end} is powered off"),
                    });
                }
                if !mgmt_configured(os, &dev) {
                    return Err(Uncontrollable {
                        reason: format!("endpoint {end} management not configured"),
                    });
                }
            }
            Ok(())
        }
        fn name(&self) -> &'static str {
            "link-power-needs-endpoint-config"
        }
    }

    /// Link interface configuration follows link power: the interface must
    /// be admin-up to be configured.
    pub struct LinkConfigNeedsLinkAdminUp;
    impl DependencyRule for LinkConfigNeedsLinkAdminUp {
        fn guards(&self) -> DependencyLevel {
            DependencyLevel::LinkInterfaceConfig
        }
        fn check(
            &self,
            key: &StateKey,
            _proposed: &Value,
            os: &dyn StateView,
        ) -> Result<(), Uncontrollable> {
            let admin_up = os
                .value_of(&key.entity, Attribute::LinkAdminPower)
                .and_then(|v| v.as_power())
                .map(|p| p.is_on())
                .unwrap_or(true);
            if admin_up {
                Ok(())
            } else {
                Err(Uncontrollable {
                    reason: format!("{} is admin-down", key.entity),
                })
            }
        }
        fn name(&self) -> &'static str {
            "link-config-needs-admin-up"
        }
    }

    /// Path/traffic setup requires every on-path switch's routing level to
    /// be controllable. The switch list comes from the proposed
    /// `PathSwitches` value, or from the observed path row when the
    /// proposal only changes traffic allocation.
    pub struct PathNeedsOnPathRouting;
    impl DependencyRule for PathNeedsOnPathRouting {
        fn guards(&self) -> DependencyLevel {
            DependencyLevel::PathTrafficSetup
        }
        fn check(
            &self,
            key: &StateKey,
            proposed: &Value,
            os: &dyn StateView,
        ) -> Result<(), Uncontrollable> {
            let switches: Vec<statesman_types::DeviceName> = match proposed.as_device_list() {
                Some(list) => list.to_vec(),
                None => os
                    .value_of(&key.entity, Attribute::PathSwitches)
                    .and_then(|v| v.as_device_list().map(|l| l.to_vec()))
                    .unwrap_or_default(),
            };
            let routing_rule = RoutingNeedsDeviceConfig;
            for sw in &switches {
                let dev = device_entity(&key.entity, sw);
                let pseudo_key = StateKey::new(dev, Attribute::DeviceRoutingRules);
                routing_rule
                    .check(&pseudo_key, &Value::None, os)
                    .map_err(|u| Uncontrollable {
                        reason: format!("on-path switch {sw}: {u}"),
                    })?;
            }
            Ok(())
        }
        fn name(&self) -> &'static str {
            "path-needs-on-path-routing"
        }
    }
}

/// The blast radius of one round's state changes, derived from the Fig-4
/// dependency model: a changed variable can only shift the health
/// projection of its own entity, and through it the invariants scoped to
/// the pods and datacenters that entity (or, for links and paths, its
/// endpoint devices) lives in. The incremental checker re-projects only
/// [`BlastRadius::entities`] and re-evaluates only the invariants for
/// which [`crate::invariants::Invariant::affected_by`] returns true;
/// everything outside the radius keeps its cached verdict.
#[derive(Debug, Clone, Default)]
pub struct BlastRadius {
    /// Device and link entities whose projection inputs changed
    /// (deduplicated; paths never enter — they carry no health).
    pub entities: Vec<EntityName>,
    /// Pods the changes can reach, mirroring the checker's touched-pod
    /// attribution; `None` when any changed device is pod-less
    /// (core/border) or unknown — fabric-wide reach.
    pub pods: Option<std::collections::HashSet<(statesman_types::DatacenterId, u32)>>,
    /// Datacenters the changes can reach. Complete even when `pods` is
    /// `None`, so DC-scoped invariants outside it stay safely skippable.
    pub dcs: std::collections::HashSet<statesman_types::DatacenterId>,
    /// True when a WAN-homed entity or a border device changed — the WAN
    /// link invariant's support.
    pub wan: bool,
}

impl BlastRadius {
    /// Can the changes reach `dc`?
    pub fn affects_dc(&self, dc: &statesman_types::DatacenterId) -> bool {
        self.dcs.contains(dc)
    }

    /// Can the changes reach the WAN plane?
    pub fn affects_wan(&self) -> bool {
        self.wan
    }
}

/// Compute the blast radius of a set of changed variables. Each item is
/// the variable's entity plus its current value when known (`None` for
/// deletes); path values contribute their on-path device lists, exactly
/// like the checker's per-candidate touched-pod attribution.
pub fn blast_radius<'a>(
    graph: &statesman_topology::NetworkGraph,
    changed: impl IntoIterator<Item = (&'a EntityName, Option<&'a Value>)>,
) -> BlastRadius {
    use statesman_types::entity::EntityBody;
    use statesman_types::DeviceRole;

    let mut entities: Vec<EntityName> = Vec::new();
    let mut seen: std::collections::BTreeSet<EntityName> = std::collections::BTreeSet::new();
    let mut pods = std::collections::HashSet::new();
    let mut unbounded = false;
    let mut dcs = std::collections::HashSet::new();
    let mut wan = false;

    fn add_device(
        graph: &statesman_topology::NetworkGraph,
        name: &statesman_types::DeviceName,
        home: &statesman_types::DatacenterId,
        pods: &mut std::collections::HashSet<(statesman_types::DatacenterId, u32)>,
        unbounded: &mut bool,
        dcs: &mut std::collections::HashSet<statesman_types::DatacenterId>,
        wan: &mut bool,
    ) {
        match graph.node_id(name) {
            Some(id) => {
                let info = graph.node(id);
                dcs.insert(info.datacenter.clone());
                if info.datacenter.is_wan() || info.role == DeviceRole::Border {
                    *wan = true;
                }
                match info.pod {
                    Some(pod) => {
                        pods.insert((info.datacenter.clone(), pod));
                    }
                    None => *unbounded = true,
                }
            }
            None => {
                // Unknown to the topology: it cannot shift any projection,
                // but stay conservative about reach.
                dcs.insert(home.clone());
                *unbounded = true;
            }
        }
    }

    for (entity, value) in changed {
        match &entity.body {
            EntityBody::Device(d) => {
                add_device(
                    graph,
                    d,
                    &entity.datacenter,
                    &mut pods,
                    &mut unbounded,
                    &mut dcs,
                    &mut wan,
                );
                if seen.insert(entity.clone()) {
                    entities.push(entity.clone());
                }
            }
            EntityBody::Link(l) => {
                for end in [&l.a, &l.b] {
                    add_device(
                        graph,
                        end,
                        &entity.datacenter,
                        &mut pods,
                        &mut unbounded,
                        &mut dcs,
                        &mut wan,
                    );
                }
                if entity.datacenter.is_wan() {
                    wan = true;
                } else {
                    dcs.insert(entity.datacenter.clone());
                }
                if seen.insert(entity.clone()) {
                    entities.push(entity.clone());
                }
            }
            EntityBody::Path(_) => {
                // Paths carry no device/link health; their reach is the
                // on-path switch list when the value still has one.
                if let Some(list) = value.and_then(|v| v.as_device_list()) {
                    for d in list {
                        add_device(
                            graph,
                            d,
                            &entity.datacenter,
                            &mut pods,
                            &mut unbounded,
                            &mut dcs,
                            &mut wan,
                        );
                    }
                }
            }
        }
    }

    BlastRadius {
        entities,
        pods: if unbounded { None } else { Some(pods) },
        dcs,
        wan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::MapView;
    use statesman_types::{AppId, DeviceName, NetworkState, SimTime};

    fn dev(name: &str) -> EntityName {
        EntityName::device("dc1", name)
    }

    fn link(a: &str, b: &str) -> EntityName {
        EntityName::link("dc1", a, b)
    }

    fn row(e: EntityName, a: Attribute, v: Value) -> NetworkState {
        NetworkState::new(e, a, v, SimTime::ZERO, AppId::monitor())
    }

    fn healthy_os() -> MapView {
        MapView::from_rows([
            row(
                dev("agg-1-1"),
                Attribute::DeviceAdminPower,
                Value::power(true),
            ),
            row(
                dev("agg-1-1"),
                Attribute::DeviceFirmwareVersion,
                Value::text("6.0"),
            ),
            row(
                dev("agg-1-1"),
                Attribute::DeviceMgmtInterface,
                Value::Bool(true),
            ),
            row(
                dev("agg-1-1"),
                Attribute::DeviceOpenFlowAgent,
                Value::Bool(true),
            ),
            row(
                dev("agg-1-1"),
                Attribute::DevicePowerUnitReachable,
                Value::Bool(true),
            ),
        ])
    }

    #[test]
    fn healthy_device_is_fully_controllable() {
        let m = DependencyModel::standard();
        let os = healthy_os();
        for attr in [
            Attribute::DeviceAdminPower,
            Attribute::DeviceFirmwareVersion,
            Attribute::DeviceMgmtInterface,
            Attribute::DeviceRoutingRules,
        ] {
            let key = StateKey::new(dev("agg-1-1"), attr);
            assert!(
                m.check_controllable(&key, &Value::text("x"), &os).is_ok(),
                "{attr}"
            );
        }
    }

    #[test]
    fn powered_off_device_blocks_higher_levels() {
        let m = DependencyModel::standard();
        let mut os = healthy_os();
        os.upsert(row(
            dev("agg-1-1"),
            Attribute::DeviceAdminPower,
            Value::power(false),
        ));
        for attr in [
            Attribute::DeviceFirmwareVersion,
            Attribute::DeviceMgmtInterface,
            Attribute::DeviceRoutingRules,
        ] {
            let key = StateKey::new(dev("agg-1-1"), attr);
            let err = m
                .check_controllable(&key, &Value::text("x"), &os)
                .unwrap_err();
            assert!(err.reason.contains("powered off"), "{attr}: {err}");
        }
        // ...but power itself stays controllable (to turn it back on).
        let key = StateKey::new(dev("agg-1-1"), Attribute::DeviceAdminPower);
        assert!(m.check_controllable(&key, &Value::power(true), &os).is_ok());
    }

    #[test]
    fn unreachable_pdu_blocks_power_control() {
        let m = DependencyModel::standard();
        let mut os = healthy_os();
        os.upsert(row(
            dev("agg-1-1"),
            Attribute::DevicePowerUnitReachable,
            Value::Bool(false),
        ));
        let key = StateKey::new(dev("agg-1-1"), Attribute::DeviceAdminPower);
        assert!(m
            .check_controllable(&key, &Value::power(false), &os)
            .is_err());
    }

    #[test]
    fn missing_firmware_blocks_config() {
        let m = DependencyModel::standard();
        let os = MapView::from_rows([row(
            dev("agg-1-1"),
            Attribute::DeviceAdminPower,
            Value::power(true),
        )]);
        let key = StateKey::new(dev("agg-1-1"), Attribute::DeviceOpenFlowAgent);
        let err = m
            .check_controllable(&key, &Value::Bool(true), &os)
            .unwrap_err();
        assert!(err.reason.contains("firmware"), "{err}");
    }

    #[test]
    fn down_of_agent_blocks_routing() {
        let m = DependencyModel::standard();
        let mut os = healthy_os();
        os.upsert(row(
            dev("agg-1-1"),
            Attribute::DeviceOpenFlowAgent,
            Value::Bool(false),
        ));
        let key = StateKey::new(dev("agg-1-1"), Attribute::DeviceRoutingRules);
        let err = m
            .check_controllable(&key, &Value::Routes(vec![]), &os)
            .unwrap_err();
        assert!(err.reason.contains("OpenFlow agent"), "{err}");
    }

    #[test]
    fn link_power_needs_both_endpoints() {
        let m = DependencyModel::standard();
        let mut os = healthy_os();
        // tor-1-1 is absent from OS → defaults treat it as configured.
        let key = StateKey::new(link("tor-1-1", "agg-1-1"), Attribute::LinkAdminPower);
        assert!(m
            .check_controllable(&key, &Value::power(false), &os)
            .is_ok());

        os.upsert(row(
            dev("tor-1-1"),
            Attribute::DeviceAdminPower,
            Value::power(false),
        ));
        let err = m
            .check_controllable(&key, &Value::power(false), &os)
            .unwrap_err();
        assert!(err.reason.contains("tor-1-1"), "{err}");
    }

    #[test]
    fn link_config_needs_admin_up() {
        let m = DependencyModel::standard();
        let os = MapView::from_rows([row(
            link("a", "b"),
            Attribute::LinkAdminPower,
            Value::power(false),
        )]);
        let key = StateKey::new(link("a", "b"), Attribute::LinkIpAssignment);
        assert!(m
            .check_controllable(&key, &Value::text("10.0.0.1"), &os)
            .is_err());
    }

    #[test]
    fn path_checks_all_on_path_switches() {
        let m = DependencyModel::standard();
        let mut os = healthy_os();
        os.upsert(row(
            dev("agg-1-2"),
            Attribute::DeviceAdminPower,
            Value::power(false),
        ));
        let path = EntityName::path("dc1", "p0");
        let key = StateKey::new(path, Attribute::PathSwitches);
        let good = Value::DeviceList(vec![DeviceName::new("agg-1-1")]);
        assert!(m.check_controllable(&key, &good, &os).is_ok());
        let bad = Value::DeviceList(vec![DeviceName::new("agg-1-1"), DeviceName::new("agg-1-2")]);
        let err = m.check_controllable(&key, &bad, &os).unwrap_err();
        assert!(err.reason.contains("agg-1-2"), "{err}");
    }

    #[test]
    fn path_allocation_uses_observed_switch_list() {
        let m = DependencyModel::standard();
        let path = EntityName::path("dc1", "p0");
        let mut os = healthy_os();
        os.upsert(row(
            path.clone(),
            Attribute::PathSwitches,
            Value::DeviceList(vec![DeviceName::new("agg-1-1")]),
        ));
        let key = StateKey::new(path, Attribute::PathTrafficAllocation);
        assert!(m
            .check_controllable(&key, &Value::Float(100.0), &os)
            .is_ok());
    }

    #[test]
    fn locks_and_counters_bypass_the_model() {
        let m = DependencyModel::standard();
        let os = MapView::new();
        let key = StateKey::new(dev("agg-1-1"), Attribute::EntityLock);
        assert!(m.check_controllable(&key, &Value::None, &os).is_ok());
    }

    #[test]
    fn custom_rules_extend_the_model() {
        struct FreezeFirmware;
        impl DependencyRule for FreezeFirmware {
            fn guards(&self) -> DependencyLevel {
                DependencyLevel::OperatingSystemSetup
            }
            fn check(
                &self,
                _key: &StateKey,
                _proposed: &Value,
                _os: &dyn StateView,
            ) -> Result<(), Uncontrollable> {
                Err(Uncontrollable {
                    reason: "change freeze in effect".into(),
                })
            }
            fn name(&self) -> &'static str {
                "freeze-firmware"
            }
        }
        let mut m = DependencyModel::standard();
        let before = m.rule_count();
        m.add_rule(Box::new(FreezeFirmware));
        assert_eq!(m.rule_count(), before + 1);
        let os = healthy_os();
        let key = StateKey::new(dev("agg-1-1"), Attribute::DeviceFirmwareVersion);
        let err = m
            .check_controllable(&key, &Value::text("7.0"), &os)
            .unwrap_err();
        assert!(err.reason.contains("freeze"), "{err}");
    }

    #[test]
    fn permissive_model_allows_everything() {
        let m = DependencyModel::permissive();
        let os = MapView::new();
        let key = StateKey::new(dev("x"), Attribute::DeviceRoutingRules);
        assert!(m
            .check_controllable(&key, &Value::Routes(vec![]), &os)
            .is_ok());
    }
}
