//! The updater: stateless translation of OS−TS differences into device
//! commands (paper §3, §6.2).
//!
//! "The updater is memoryless — it applies the latest difference between
//! the OS and TS without regard to what happened in the past." Every round
//! it reads both pools fresh, computes the per-variable difference, looks
//! up a [`CommandTemplatePool`] entry for (device model, attribute), and
//! executes the rendered command through the protocol adapter the template
//! names. Failures are not retried within a round; they surface as an
//! unchanged OS, so the next round recomputes the same (or an updated)
//! difference — §6.2's "implicit and automatic retry".
//!
//! Path translation (§4.1): path-level TS rows (`PathSwitches` +
//! `PathTrafficAllocation`) are expanded into per-device flow→link rules
//! and merged with any device-level `DeviceRoutingRules` TS rows before
//! diffing, so applications can operate purely at the path level.

use crate::view::StateView;
use parking_lot::Mutex;
use rand::{rngs::StdRng, Rng, SeedableRng};
use statesman_net::{
    CommandOutcome, DeviceCommand, DeviceModel, DeviceProtocol, OpenFlowSim, ProtocolKind,
    SimNetwork, VendorCliSim,
};
use statesman_storage::{ReadRequest, StorageService};
use statesman_topology::NetworkGraph;
use statesman_types::{
    Attribute, DatacenterId, DeviceName, EntityName, FlowLinkRule, Freshness, LinkName,
    NetworkState, Pool, RetryPolicy, SimDuration, SimTime, StateError, StateResult, Value, VarId,
    Version,
};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::time::{Duration, Instant};

/// A rendered update action: which protocol carries which command to
/// which device.
#[derive(Debug, Clone)]
pub struct RenderedAction {
    /// The device the command is issued to.
    pub device: DeviceName,
    /// The protocol adapter to use.
    pub protocol: ProtocolKind,
    /// The command.
    pub command: DeviceCommand,
}

/// A command template: renders a desired value into concrete actions.
/// Returning multiple actions supports variables that fan out (a path's
/// traffic setup touches every on-path switch).
pub type Template = Box<dyn Fn(&TemplateCtx<'_>) -> StateResult<Vec<RenderedAction>> + Send + Sync>;

/// What a template sees.
pub struct TemplateCtx<'a> {
    /// The entity whose variable differs.
    pub entity: &'a EntityName,
    /// The attribute.
    pub attribute: Attribute,
    /// The desired (TS) value.
    pub target: &'a Value,
    /// The device the action will ultimately land on (for link and path
    /// variables, a chosen endpoint/on-path device).
    pub device: &'a DeviceName,
    /// That device's model.
    pub model: DeviceModel,
}

/// The per-(model, attribute) template pool (§6.2: "a pool of command
/// templates that contains templates for each update action on each device
/// model with supported control-plane protocol").
pub struct CommandTemplatePool {
    templates: HashMap<(&'static str, Attribute), Template>,
}

impl CommandTemplatePool {
    /// An empty pool.
    pub fn empty() -> Self {
        CommandTemplatePool {
            templates: HashMap::new(),
        }
    }

    /// The standard pool covering both stock models and all writable
    /// device/link attributes.
    pub fn standard() -> Self {
        let mut pool = CommandTemplatePool::empty();
        for model in [DeviceModel::OpenFlowSwitch, DeviceModel::BgpRouter] {
            let ms = model.model_string();
            pool.register(
                ms,
                Attribute::DeviceAdminPower,
                Box::new(|ctx| {
                    let status = ctx.target.as_power().ok_or_else(|| {
                        StateError::invalid("DeviceAdminPower needs a power value")
                    })?;
                    Ok(vec![RenderedAction {
                        device: ctx.device.clone(),
                        protocol: ProtocolKind::VendorCli,
                        command: DeviceCommand::SetAdminPower(status),
                    }])
                }),
            );
            pool.register(
                ms,
                Attribute::DeviceFirmwareVersion,
                Box::new(|ctx| {
                    let version = ctx
                        .target
                        .as_text()
                        .ok_or_else(|| StateError::invalid("firmware version must be text"))?;
                    Ok(vec![RenderedAction {
                        device: ctx.device.clone(),
                        protocol: ProtocolKind::VendorCli,
                        command: DeviceCommand::UpgradeFirmware {
                            version: version.to_string(),
                        },
                    }])
                }),
            );
            pool.register(
                ms,
                Attribute::DeviceBootImage,
                Box::new(|ctx| {
                    let image = ctx
                        .target
                        .as_text()
                        .ok_or_else(|| StateError::invalid("boot image must be text"))?;
                    Ok(vec![RenderedAction {
                        device: ctx.device.clone(),
                        protocol: ProtocolKind::VendorCli,
                        command: DeviceCommand::SetBootImage {
                            image: image.to_string(),
                        },
                    }])
                }),
            );
            pool.register(
                ms,
                Attribute::DeviceMgmtInterface,
                Box::new(|ctx| {
                    let enabled = ctx
                        .target
                        .as_bool()
                        .ok_or_else(|| StateError::invalid("mgmt interface state must be bool"))?;
                    Ok(vec![RenderedAction {
                        device: ctx.device.clone(),
                        protocol: ProtocolKind::VendorCli,
                        command: DeviceCommand::ConfigureMgmtInterface { enabled },
                    }])
                }),
            );
            pool.register(
                ms,
                Attribute::DeviceOpenFlowAgent,
                Box::new(|ctx| {
                    let running = ctx
                        .target
                        .as_bool()
                        .ok_or_else(|| StateError::invalid("OF agent state must be bool"))?;
                    Ok(vec![RenderedAction {
                        device: ctx.device.clone(),
                        protocol: ProtocolKind::VendorCli,
                        command: DeviceCommand::SetOpenFlowAgent { running },
                    }])
                }),
            );
            // Routing rules: OpenFlow rule programming on OF models;
            // BGP announcements via the CLI on traditional routers.
            pool.register(
                ms,
                Attribute::DeviceRoutingRules,
                Box::new(|ctx| {
                    let rules = ctx
                        .target
                        .as_routes()
                        .ok_or_else(|| StateError::invalid("routing rules must be Routes"))?;
                    let protocol = match ctx.model {
                        DeviceModel::OpenFlowSwitch => ProtocolKind::OpenFlow,
                        DeviceModel::BgpRouter => ProtocolKind::VendorCli,
                    };
                    Ok(vec![RenderedAction {
                        device: ctx.device.clone(),
                        protocol,
                        command: DeviceCommand::SetRoutingRules {
                            rules: rules.to_vec(),
                        },
                    }])
                }),
            );
            pool.register(
                ms,
                Attribute::LinkAdminPower,
                Box::new(|ctx| {
                    let status = ctx
                        .target
                        .as_power()
                        .ok_or_else(|| StateError::invalid("LinkAdminPower needs a power value"))?;
                    let link = ctx
                        .entity
                        .as_link()
                        .ok_or_else(|| StateError::invalid("LinkAdminPower on a non-link"))?;
                    Ok(vec![RenderedAction {
                        device: ctx.device.clone(),
                        protocol: ProtocolKind::VendorCli,
                        command: DeviceCommand::SetLinkAdminPower {
                            link: link.clone(),
                            status,
                        },
                    }])
                }),
            );
            pool.register(
                ms,
                Attribute::LinkIpAssignment,
                Box::new(|ctx| {
                    let ip = ctx
                        .target
                        .as_text()
                        .ok_or_else(|| StateError::invalid("IP assignment must be text"))?;
                    let link = ctx
                        .entity
                        .as_link()
                        .ok_or_else(|| StateError::invalid("LinkIpAssignment on a non-link"))?;
                    Ok(vec![RenderedAction {
                        device: ctx.device.clone(),
                        protocol: ProtocolKind::VendorCli,
                        command: DeviceCommand::SetLinkIp {
                            link: link.clone(),
                            ip: ip.to_string(),
                        },
                    }])
                }),
            );
            pool.register(
                ms,
                Attribute::LinkControlPlane,
                Box::new(|ctx| {
                    let mode = ctx
                        .target
                        .as_control_plane()
                        .ok_or_else(|| StateError::invalid("control plane must be a mode"))?;
                    let link = ctx
                        .entity
                        .as_link()
                        .ok_or_else(|| StateError::invalid("LinkControlPlane on a non-link"))?;
                    Ok(vec![RenderedAction {
                        device: ctx.device.clone(),
                        protocol: ProtocolKind::VendorCli,
                        command: DeviceCommand::SetLinkControlPlane {
                            link: link.clone(),
                            mode,
                        },
                    }])
                }),
            );
        }
        pool
    }

    /// Register a template for (model string, attribute).
    pub fn register(&mut self, model: &'static str, attribute: Attribute, t: Template) {
        self.templates.insert((model, attribute), t);
    }

    /// Look up and render.
    pub fn render(&self, ctx: &TemplateCtx<'_>) -> StateResult<Vec<RenderedAction>> {
        match self
            .templates
            .get(&(ctx.model.model_string(), ctx.attribute))
        {
            Some(t) => t(ctx),
            None => Err(StateError::NoCommandTemplate {
                model: ctx.model.model_string().to_string(),
                attribute: ctx.attribute.to_string(),
            }),
        }
    }

    /// Number of registered templates.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// True if no templates are registered.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }
}

/// One update round's outcome.
#[derive(Debug, Clone, Default)]
pub struct UpdaterReport {
    /// Variables whose OS and TS values differed.
    pub diffs: usize,
    /// Commands submitted and accepted by devices.
    pub commands_applied: usize,
    /// Commands that timed out or were rejected.
    pub commands_failed: usize,
    /// Differences with no usable template or no reachable endpoint.
    pub unrenderable: usize,
    /// In-round retries of retryable command failures (zero unless a
    /// [`RetryPolicy`] is configured via [`Updater::with_retry`]).
    pub retries: usize,
    /// Commands not even issued because the target device's circuit
    /// breaker was open.
    pub breaker_skips: usize,
    /// Commands not issued because the target device was excluded from
    /// this round (quarantined by the monitor). Acting on a quarantined
    /// device means acting on stale OS — for reboot-inducing commands
    /// that can re-disturb a recovering device forever, starving the
    /// monitor of the fresh poll that would clear the diff.
    pub quarantine_skips: usize,
    /// Circuit breakers tripped open this round.
    pub breakers_opened: usize,
    /// Steps in this round's synthesized [`crate::plan::UpdatePlan`]
    /// (zero on the legacy chain-walk path).
    pub plan_steps: usize,
    /// Execution waves the plan layered into (the DAG's depth).
    pub plan_waves: usize,
    /// The widest wave — the measured parallelism the dependency
    /// structure permits across independent segments.
    pub plan_max_width: usize,
    /// Steps deferred because their projected intermediate state failed
    /// an in-flight invariant check (they rediff next round).
    pub plan_inflight_rejections: usize,
    /// Steps whose projected transition was rolled back because every
    /// command for them failed (folding into the breaker/retry paths).
    pub plan_rollbacks: usize,
    /// Modeled device-interaction time: commands run concurrently across
    /// devices, sequentially per device, so this is the per-device max.
    pub sim_io: SimDuration,
    /// Host wall-clock compute time.
    pub elapsed: Duration,
    /// Host wall time of the read stage: mirror advance (zero-copy
    /// rounds) or full pool reads.
    pub stage_read: Duration,
    /// Host wall time of the pure diff stage: path expansion, TS sort,
    /// and the per-partition OS−TS comparisons.
    pub stage_diff: Duration,
    /// Host wall time of the execute stage: plan synthesis, in-flight
    /// checks, rendering, and command issue.
    pub stage_exec: Duration,
}

/// The updater over one simulated network.
pub struct Updater {
    net: SimNetwork,
    of: OpenFlowSim,
    cli: VendorCliSim,
    storage: StorageService,
    graph: NetworkGraph,
    pool: CommandTemplatePool,
    scope: Option<UpdaterScope>,
    /// In-round retry schedule for retryable command failures. Defaults
    /// to [`RetryPolicy::none`], preserving §6.2's pure cross-round
    /// "implicit and automatic retry"; deployments that want in-round
    /// persistence opt in via [`Updater::with_retry`].
    retry: RetryPolicy,
    /// Circuit breaker knobs (consecutive-failure threshold, open
    /// cooldown); `None` disables breakers entirely.
    breaker: Option<(u32, SimDuration)>,
    breakers: Mutex<HashMap<DeviceName, BreakerState>>,
    /// Read pools incrementally via `read_since` (default). This is a
    /// *read-path optimization only*: the mirror is a verbatim copy of
    /// storage, advanced by the changefeed, and the updater still rediffs
    /// OS−TS from scratch every round — §6.2's memoryless property is
    /// observable behavior, property-tested bit-equal to full reads.
    delta_reads: bool,
    /// Columnar mirrors (default): each partition mirror is a
    /// slot-indexed column, so delta application writes straight into
    /// slots. Disabled, mirrors are hash maps — the reference layout.
    columnar_state: bool,
    /// Per-(pool, partition) mirror and its watermark. Entries are
    /// dropped whenever a round cannot use the delta path (quarantine
    /// rounds, unavailable partitions), forcing a clean re-seed.
    part_cache: Mutex<HashMap<(Pool, DatacenterId), CachedPart>>,
    /// Partition-level watermarks from the last zero-diff delta round.
    /// The updater is a deterministic function of pool contents; while
    /// every partition's machine-wide watermark is unchanged, the rediff
    /// would find the same zero differences, so the round short-circuits.
    /// A round that *found* diffs never records marks — failed commands
    /// must be rediffed next round (§6.2's implicit cross-round retry),
    /// even though the storage state did not move.
    quiescent: Mutex<Option<Vec<(DatacenterId, Version)>>>,
    /// Execute through a synthesized [`crate::plan::UpdatePlan`] (Fig-4
    /// ordered waves + per-step in-flight checks) instead of the legacy
    /// serial chain walk. Off by default for a raw updater; the
    /// coordinator threads its `plan_synthesis` config knob through.
    plan_synthesis: bool,
    /// Invariants re-checked against the projected intermediate state
    /// before each plan step commits (empty = no in-flight checks).
    plan_invariants: Vec<Box<dyn crate::invariants::Invariant>>,
    /// Pool for the round's pure fan-out stages: per-partition diffs and
    /// per-wave command pre-rendering. All effectful work (command
    /// issue, RNG draws, clock stepping) stays on the round's one
    /// execute thread regardless of this pool's size.
    workers: crate::engine::WorkerPool,
}

/// One partition's pool mirrored updater-side (see `Updater::part_cache`).
#[derive(Default)]
struct CachedPart {
    view: crate::view::MapView,
    watermark: Version,
}

/// One storage partition's share of a round's diff work: its non-routing
/// TS rows (in global key order) and its routing-device diffs (in device
/// name order), both carrying entities homed in that partition.
#[derive(Default)]
struct PartitionWork<'a> {
    ts: Vec<&'a NetworkState>,
    routing: Vec<(DeviceName, Option<Vec<FlowLinkRule>>, EntityName)>,
}

/// One differing variable found by the parallel diff stage, queued for
/// the round's serial execute stage (scope filtering, breaker checks,
/// template rendering, and device interaction all happen there, on one
/// thread, in deterministic partition order).
enum PendingDiff<'a> {
    /// A non-routing TS row whose OS value differs.
    Row(&'a NetworkState),
    /// A device whose normalized desired routing rule-set (device-level
    /// TS rules ∪ path-derived rules) differs from its OS rule-set.
    Routing {
        dev: &'a DeviceName,
        entity: &'a EntityName,
        desired: Vec<FlowLinkRule>,
    },
}

/// The observed-state view a round diffs against: an owned snapshot
/// (hash plane, quarantine fallback) or zero-copy references into the
/// columnar partition mirrors, held under the part-cache lock for the
/// whole round. The zero-copy path removes the per-round full-pool clone
/// and hash-map rebuild that dominated 4M-variable churn rounds; a
/// variable is homed in exactly one partition, so the mirror probe order
/// cannot change any lookup's answer.
enum RoundOs<'a> {
    Owned(crate::view::MapView),
    Mirrors(Vec<&'a crate::view::MapView>),
}

impl StateView for RoundOs<'_> {
    fn get_var(&self, var: VarId) -> Option<&NetworkState> {
        match self {
            RoundOs::Owned(v) => v.get_var(var),
            RoundOs::Mirrors(parts) => parts.iter().find_map(|p| p.get_var(var)),
        }
    }
}

impl RoundOs<'_> {
    /// Iterate every row. Only order-insensitive consumers may use this
    /// (the routing-withdrawal scan folds into a `BTreeMap`), since the
    /// mirror iteration order differs from the owned hash order.
    fn rows(&self) -> Box<dyn Iterator<Item = &NetworkState> + '_> {
        match self {
            RoundOs::Owned(v) => Box::new(v.rows()),
            RoundOs::Mirrors(parts) => Box::new(parts.iter().flat_map(|p| p.rows())),
        }
    }
}

/// A step's commands rendered ahead of the serial issue point, tagged
/// with the carrier device and model they were rendered for. The issue
/// path re-derives both and uses these actions only when they still
/// match — rendering is a pure function of (row, device, model), so a
/// matching pre-render is bit-identical to rendering at issue time.
struct PreRender {
    device: DeviceName,
    model: DeviceModel,
    actions: Vec<RenderedAction>,
}

/// Per-device circuit-breaker bookkeeping. This is deliberately *not*
/// update state: it remembers nothing about diffs or commands, only that
/// a device's management plane has been failing, so the stateless rediff
/// property of §6.2 is preserved.
#[derive(Debug, Clone, Copy, Default)]
struct BreakerState {
    consecutive_failures: u32,
    open_until: Option<SimTime>,
}

/// A work partition for one updater instance. §6.2: "we run one instance
/// per state variable per switch model. In this way, each updater
/// instance is specialized for one task." A scoped updater only acts on
/// differences matching its (model, attribute) filters; several scoped
/// instances with disjoint scopes cover the full difference set and can
/// run independently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdaterScope {
    /// Only act on devices of this model (None = all models).
    pub model: Option<DeviceModel>,
    /// Only act on these attributes (empty = all attributes).
    pub attributes: Vec<Attribute>,
}

impl UpdaterScope {
    /// A scope for one (model, attribute) specialization — the paper's
    /// deployment unit.
    pub fn specialized(model: DeviceModel, attribute: Attribute) -> Self {
        UpdaterScope {
            model: Some(model),
            attributes: vec![attribute],
        }
    }

    /// Does this scope cover a difference on `attribute` for a device of
    /// `model`?
    pub fn covers(&self, model: DeviceModel, attribute: Attribute) -> bool {
        self.model.map(|m| m == model).unwrap_or(true)
            && (self.attributes.is_empty() || self.attributes.contains(&attribute))
    }
}

impl Updater {
    /// Build an updater with the standard template pool.
    pub fn new(net: SimNetwork, storage: StorageService, graph: NetworkGraph) -> Self {
        Updater {
            of: OpenFlowSim::new(net.clone()),
            cli: VendorCliSim::new(net.clone()),
            net,
            storage,
            graph,
            pool: CommandTemplatePool::standard(),
            scope: None,
            retry: RetryPolicy::none(),
            breaker: None,
            breakers: Mutex::new(HashMap::new()),
            delta_reads: true,
            columnar_state: true,
            part_cache: Mutex::new(HashMap::new()),
            quiescent: Mutex::new(None),
            plan_synthesis: false,
            plan_invariants: Vec::new(),
            workers: crate::engine::WorkerPool::default(),
        }
    }

    /// Set the worker-thread count for the round's pure fan-out stages
    /// (per-partition diffs, per-wave command pre-rendering, pure
    /// invariant evaluation). Defaults to `STATESMAN_WORKER_THREADS` /
    /// host parallelism; `1` forces the serial reference path.
    pub fn with_worker_threads(mut self, threads: usize) -> Self {
        self.workers = crate::engine::WorkerPool::new(threads);
        self
    }

    /// Enable or disable plan-driven execution (`false` by default for a
    /// raw updater). Enabled, each round's difference set is compiled
    /// into an [`crate::plan::UpdatePlan`] and executed in deterministic
    /// Fig-4-ordered waves; disabled, the legacy serial chain walk runs.
    pub fn with_plan_synthesis(mut self, enabled: bool) -> Self {
        self.plan_synthesis = enabled;
        self
    }

    /// Install the invariants evaluated in flight — against the projected
    /// intermediate state — before each plan step commits. Only
    /// invariants whose [`crate::invariants::Invariant::affected_by`]
    /// intersects a step's blast radius are re-checked for that step.
    pub fn with_plan_invariants(
        mut self,
        invariants: Vec<Box<dyn crate::invariants::Invariant>>,
    ) -> Self {
        self.plan_invariants = invariants;
        self
    }

    /// Enable or disable incremental pool reads (`true` by default).
    /// Disabled, every round re-reads full pools — the pre-delta behavior.
    pub fn with_delta_reads(mut self, enabled: bool) -> Self {
        self.delta_reads = enabled;
        self
    }

    /// Enable or disable columnar (slot-indexed) partition mirrors
    /// (`true` by default).
    pub fn with_columnar_state(mut self, enabled: bool) -> Self {
        self.columnar_state = enabled;
        self
    }

    /// The watermark of this updater's mirrored (pool, partition), if the
    /// mirror is live. The coordinator reports the gap to the leader's
    /// watermark as `state_watermark_lag`.
    pub fn cached_watermark(&self, pool: &Pool, dc: &DatacenterId) -> Option<Version> {
        self.part_cache
            .lock()
            .get(&(pool.clone(), dc.clone()))
            .map(|e| e.watermark)
    }

    /// Replace the template pool.
    pub fn with_pool(mut self, pool: CommandTemplatePool) -> Self {
        self.pool = pool;
        self
    }

    /// Enable bounded in-round retry of retryable command failures.
    /// Backoffs consume *simulated* time (the network steps forward), so
    /// transient conditions like reboot windows can actually clear.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Enable per-device circuit breakers: after `threshold` consecutive
    /// command failures against a device, stop issuing to it for
    /// `cooldown` (commands are counted as skips, costing no device
    /// interaction); after the cooldown, one half-open probe either
    /// closes the breaker or re-opens it.
    pub fn with_circuit_breaker(mut self, threshold: u32, cooldown: SimDuration) -> Self {
        self.breaker = Some((threshold.max(1), cooldown));
        self
    }

    /// Restrict this instance to one work partition (§6.2's one instance
    /// per state variable per switch model).
    pub fn with_scope(mut self, scope: UpdaterScope) -> Self {
        self.scope = Some(scope);
        self
    }

    /// Devices whose circuit breaker is currently open (sorted), i.e.
    /// commands to them are being skipped until the cooldown passes.
    pub fn open_breakers(&self, now: SimTime) -> Vec<DeviceName> {
        let breakers = self.breakers.lock();
        let mut v: Vec<DeviceName> = breakers
            .iter()
            .filter(|(_, b)| b.open_until.map(|t| t > now).unwrap_or(false))
            .map(|(d, _)| d.clone())
            .collect();
        v.sort();
        v
    }

    /// Whether this instance acts on a difference for `device`/`attribute`.
    fn in_scope(&self, device: &DeviceName, attribute: Attribute) -> bool {
        match &self.scope {
            None => true,
            Some(scope) => {
                let model = self
                    .net
                    .device_snapshot(device)
                    .map(|d| d.model)
                    .unwrap_or(DeviceModel::OpenFlowSwitch);
                scope.covers(model, attribute)
            }
        }
    }

    fn adapter(&self, kind: ProtocolKind) -> &dyn DeviceProtocol {
        match kind {
            ProtocolKind::OpenFlow => &self.of,
            ProtocolKind::VendorCli => &self.cli,
            ProtocolKind::Snmp => &self.cli, // SNMP writes unused; CLI stands in
        }
    }

    /// Read a full pool across all partitions. Unavailable partitions are
    /// skipped (degraded mode): their entities simply produce no diffs
    /// this round rather than aborting everyone else's work — and their
    /// mirror entries are dropped, since the partition may move on while
    /// unobserved. With `use_delta`, available partitions are served by
    /// the mirrored view advanced via `read_since`; otherwise they are
    /// re-read in full and the mirror invalidated. Multi-partition
    /// services read every partition **concurrently** — each read only
    /// touches its own partition's ring, so there is nothing to serialize
    /// on; rows merge in sorted-partition order, same as the serial path.
    fn read_all(&self, pool: Pool, use_delta: bool) -> StateResult<Vec<NetworkState>> {
        let dcs = self.storage.partitions();
        if dcs.len() <= 1 {
            let mut rows = Vec::new();
            for dc in dcs {
                rows.extend(self.read_partition(&pool, dc, use_delta)?);
            }
            return Ok(rows);
        }
        let results: Vec<StateResult<Vec<NetworkState>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = dcs
                .into_iter()
                .map(|dc| {
                    let pool = pool.clone();
                    scope.spawn(move || self.read_partition(&pool, dc, use_delta))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("updater read thread panicked"))
                .collect()
        });
        let mut rows = Vec::new();
        for r in results {
            rows.extend(r?);
        }
        Ok(rows)
    }

    /// One partition's share of `read_all`. The mirror entry moves out of
    /// the shared map while in use, so concurrent partition readers never
    /// hold the map lock across a storage call.
    fn read_partition(
        &self,
        pool: &Pool,
        dc: DatacenterId,
        use_delta: bool,
    ) -> StateResult<Vec<NetworkState>> {
        let key = (pool.clone(), dc.clone());
        if !self.storage.partition_available(&dc) {
            self.part_cache.lock().remove(&key);
            return Ok(Vec::new());
        }
        if use_delta {
            let mut entry = self
                .part_cache
                .lock()
                .remove(&key)
                .unwrap_or_else(|| CachedPart {
                    view: if self.columnar_state {
                        crate::view::MapView::columnar(pool.clone())
                    } else {
                        crate::view::MapView::new()
                    },
                    watermark: Version::default(),
                });
            match self.storage.read_since(&dc, pool, entry.watermark) {
                Ok(delta) => {
                    entry.watermark = delta.watermark;
                    entry.view.apply_delta(delta);
                    let rows: Vec<NetworkState> = entry.view.rows().cloned().collect();
                    self.part_cache.lock().insert(key, entry);
                    Ok(rows)
                }
                Err(e) => {
                    // Put the mirror back untouched: its watermark still
                    // matches its contents, so the next round resumes
                    // cleanly from where this one left off.
                    self.part_cache.lock().insert(key, entry);
                    Err(e)
                }
            }
        } else {
            self.part_cache.lock().remove(&key);
            self.storage.read(ReadRequest {
                datacenter: dc,
                pool: pool.clone(),
                freshness: Freshness::UpToDate,
                entity: None,
                attribute: None,
            })
        }
    }

    /// Advance (or create) the mirror for one `(pool, partition)` in
    /// place, under the caller-held cache lock — the zero-copy analogue
    /// of [`Updater::read_partition`]. Returns whether the partition is
    /// available; an unavailable partition drops its mirror (it may move
    /// on while unobserved). On a read error the mirror is left
    /// untouched, so its watermark still matches its contents and the
    /// next round resumes cleanly.
    fn advance_mirror(
        &self,
        cache: &mut HashMap<(Pool, DatacenterId), CachedPart>,
        pool: &Pool,
        dc: &DatacenterId,
    ) -> StateResult<bool> {
        let key = (pool.clone(), dc.clone());
        if !self.storage.partition_available(dc) {
            cache.remove(&key);
            return Ok(false);
        }
        let entry = cache.entry(key).or_insert_with(|| CachedPart {
            view: if self.columnar_state {
                crate::view::MapView::columnar(pool.clone())
            } else {
                crate::view::MapView::new()
            },
            watermark: Version::default(),
        });
        let delta = self.storage.read_since(dc, pool, entry.watermark)?;
        entry.watermark = delta.watermark;
        entry.view.apply_delta(delta);
        Ok(true)
    }

    /// Run one update round.
    pub fn run_round(&self) -> StateResult<UpdaterReport> {
        self.run_round_excluding(&BTreeSet::new())
    }

    /// Run one update round, issuing no commands to devices in `skip`
    /// (typically the monitor's quarantine set). Their diffs still count
    /// in [`UpdaterReport::diffs`] but each suppressed command is tallied
    /// as a [`UpdaterReport::quarantine_skips`] instead of being sent.
    ///
    /// Why the updater must honor quarantine: a quarantined device's OS
    /// rows are stale by construction. Re-issuing a reboot-inducing
    /// command (e.g. a firmware upgrade) against stale state knocks the
    /// device over again just as it recovers, so the monitor's next poll
    /// fails again and the loop never observes the success — a metastable
    /// upgrade storm. Skipping the device lets the quarantine expire, the
    /// re-probe refresh the OS, and the diff clear (or be retried on
    /// fresh state), preserving §6.2's cross-round implicit retry.
    pub fn run_round_excluding(&self, skip: &BTreeSet<DeviceName>) -> StateResult<UpdaterReport> {
        let started = Instant::now();
        let now = self.net.clock().now();
        // Quarantine rounds force the full-read fallback (and drop the
        // mirrors): rounds with stale devices in play are exactly when
        // the updater must provably act on what storage holds.
        let use_delta = self.delta_reads && skip.is_empty();

        // Quiescence short-circuit: unchanged partition watermarks since
        // the last zero-diff round prove the rediff would find nothing.
        let marks = if use_delta {
            self.partition_marks()
        } else {
            None
        };
        if let (Some(m), Some(prev)) = (marks.as_ref(), self.quiescent.lock().as_ref()) {
            if m == prev {
                return Ok(UpdaterReport {
                    elapsed: started.elapsed(),
                    ..UpdaterReport::default()
                });
            }
        }

        // ---- read stage ----
        // Zero-copy fast path: hold the mirror-cache lock for the whole
        // round and diff directly against the partition mirrors, advanced
        // in place by `read_since` deltas. This removes the per-round
        // full-pool row clone and hash-map rebuild that dominated large
        // churn rounds. The fallback (quarantine rounds, delta reads
        // disabled) re-reads full pools into an owned snapshot as before.
        // While the guard is held, `read_all`/`read_partition` must not
        // be called — they take the same lock.
        let read_started = Instant::now();
        let dcs = self.storage.partitions();
        let mut cache_guard = if use_delta {
            Some(self.part_cache.lock())
        } else {
            None
        };
        let mut owned_os = None;
        let ts_rows = match cache_guard.as_mut() {
            Some(cache) => {
                let mut ts_rows: Vec<NetworkState> = Vec::new();
                for dc in &dcs {
                    self.advance_mirror(cache, &Pool::Observed, dc)?;
                    if self.advance_mirror(cache, &Pool::Target, dc)? {
                        if let Some(entry) = cache.get(&(Pool::Target, dc.clone())) {
                            ts_rows.extend(entry.view.rows().cloned());
                        }
                    }
                }
                ts_rows
            }
            None => {
                owned_os = Some(crate::view::MapView::from_rows(
                    self.read_all(Pool::Observed, use_delta)?,
                ));
                self.read_all(Pool::Target, use_delta)?
            }
        };
        let os = match cache_guard.as_ref() {
            Some(cache) => RoundOs::Mirrors(
                dcs.iter()
                    .filter_map(|dc| cache.get(&(Pool::Observed, dc.clone())).map(|e| &e.view))
                    .collect(),
            ),
            None => RoundOs::Owned(owned_os.take().expect("owned snapshot present")),
        };
        let stage_read = read_started.elapsed();
        let diff_started = Instant::now();

        let mut report = UpdaterReport::default();
        // Track cumulative simulated latency per device (sequential per
        // device, parallel across devices).
        let mut per_device_ms: HashMap<DeviceName, u64> = HashMap::new();

        // ---- expand path-level rows into per-device desired routes ----
        // Desired routes per device = device-level TS rules + path rules.
        let mut desired_routes: BTreeMap<DeviceName, Vec<FlowLinkRule>> = BTreeMap::new();
        let mut path_rows: BTreeMap<
            statesman_types::PathName,
            (Option<Vec<DeviceName>>, Option<f64>),
        > = BTreeMap::new();
        for row in &ts_rows {
            if let Some(path) = row.entity.as_path() {
                let entry = path_rows.entry(path.clone()).or_insert((None, None));
                match row.attribute {
                    Attribute::PathSwitches => {
                        entry.0 = row.value.as_device_list().map(|l| l.to_vec());
                    }
                    Attribute::PathTrafficAllocation => {
                        entry.1 = row.value.as_float();
                    }
                    _ => {}
                }
            }
        }
        for (path, (switches, mbps)) in &path_rows {
            let Some(switches) = switches else { continue };
            // A zero allocation tears the path's rules down: the rules
            // vanish from every on-path device's desired set.
            if matches!(mbps, Some(m) if *m <= 0.0) {
                continue;
            }
            for pair in switches.windows(2) {
                let link = LinkName::between(pair[0].clone(), pair[1].clone());
                desired_routes
                    .entry(pair[0].clone())
                    .or_default()
                    .push(FlowLinkRule::new(path.as_str(), link, 1.0));
            }
        }

        // ---- per-variable diff, grouped by storage partition ----
        // Each entity belongs to exactly one datacenter partition, and so
        // does the device carrying its commands — the same impact-group
        // boundary the checker's parallel stage cuts on. The round runs
        // in two stages: a *pure* diff stage fans out one thread per
        // partition with work (value comparisons against the frozen OS
        // and TS snapshots — never the simulated network), then a single
        // serial stage executes every pending diff against the network
        // in sorted-partition order. Keeping all network interaction on
        // one thread is what preserves determinism: the sim's one seeded
        // RNG (command jitter, link flaps, counter walks), its effect
        // sequence numbers, and the shared clock are consumed in an
        // order that is a pure function of the inputs, never of thread
        // scheduling — and retry backoffs can never race the clock.
        let mut routing_devices: BTreeMap<DeviceName, Option<Vec<FlowLinkRule>>> = BTreeMap::new();
        // Borrow-sort by string-key order: no row clones, no key clones.
        let mut sorted_ts: Vec<&NetworkState> = ts_rows.iter().collect();
        sorted_ts.sort_by(|a, b| a.key_ref().cmp(&b.key_ref()));
        let mut work: BTreeMap<DatacenterId, PartitionWork<'_>> = BTreeMap::new();
        for &row in &sorted_ts {
            if row.attribute.is_lock() || row.entity.as_path().is_some() {
                continue; // locks are metadata; paths handled via expansion
            }
            if row.attribute == Attribute::DeviceRoutingRules {
                // Routing diffs merge with path-derived routes below.
                if let Some(dev) = row.entity.as_device() {
                    routing_devices.insert(dev.clone(), row.value.as_routes().map(|r| r.to_vec()));
                }
                continue;
            }
            work.entry(row.entity.datacenter.clone())
                .or_default()
                .ts
                .push(row);
        }

        // Devices with path-derived routes but no device-level TS row.
        for dev in desired_routes.keys() {
            routing_devices.entry(dev.clone()).or_insert(None);
        }
        // Devices carrying rules in the OS must also be diffed, so rules
        // whose paths left the TS get withdrawn (in this system all
        // forwarding state is Statesman-owned).
        for row in os.rows() {
            if row.attribute == Attribute::DeviceRoutingRules
                && row
                    .value
                    .as_routes()
                    .map(|r| !r.is_empty())
                    .unwrap_or(false)
            {
                if let Some(dev) = row.entity.as_device() {
                    routing_devices.entry(dev.clone()).or_insert(None);
                }
            }
        }
        for (dev, device_rules) in routing_devices {
            let entity = match self.graph.node_id(&dev) {
                Some(id) => {
                    let info = self.graph.node(id);
                    EntityName::device(info.datacenter.clone(), dev.clone())
                }
                None => continue,
            };
            work.entry(entity.datacenter.clone())
                .or_default()
                .routing
                .push((dev, device_rules, entity));
        }

        let parts: Vec<PartitionWork<'_>> = work.into_values().collect();
        // Fan out by index so the borrowed diffs tie to `parts`, not to
        // the per-worker reference the pool hands the closure.
        let part_idx: Vec<usize> = (0..parts.len()).collect();
        let pending: Vec<Vec<PendingDiff<'_>>> = self.workers.run(&part_idx, |_, &i| {
            self.collect_partition_diffs(&parts[i], &os, &desired_routes)
        });
        report.stage_read = stage_read;
        report.stage_diff = diff_started.elapsed();
        let exec_started = Instant::now();

        // Serial execute stage. One jitter RNG for the whole round, the
        // historical `0xC1AC` stream: backoff draws happen in the same
        // deterministic order as the diffs they serve. Plan-driven
        // execution reorders steps along the Fig-4 chains but stays on
        // this one thread with this one RNG, so determinism holds on
        // both paths.
        let mut rng = StdRng::seed_from_u64(0xC1AC);
        if self.plan_synthesis {
            self.execute_plan(
                pending,
                &os,
                skip,
                &mut report,
                &mut per_device_ms,
                now,
                &mut rng,
            );
        } else {
            self.execute_chain_walk(
                pending,
                skip,
                &mut report,
                &mut per_device_ms,
                now,
                &mut rng,
            );
        }

        report.stage_exec = exec_started.elapsed();
        report.sim_io =
            SimDuration::from_millis(per_device_ms.values().copied().max().unwrap_or(0));
        report.elapsed = started.elapsed();
        // The updater writes nothing to storage, so a zero-diff round's
        // start-of-round marks are still its end-of-round marks.
        *self.quiescent.lock() = match marks {
            Some(marks) if report.diffs == 0 => Some(marks),
            _ => None,
        };
        Ok(report)
    }

    /// The legacy serial execute stage: walk the pending diffs in
    /// partition order, then key order, issuing commands as they come.
    /// Kept as the `plan_synthesis = false` path for equivalence testing.
    #[allow(clippy::too_many_arguments)]
    fn execute_chain_walk(
        &self,
        pending: Vec<Vec<PendingDiff<'_>>>,
        skip: &BTreeSet<DeviceName>,
        report: &mut UpdaterReport,
        per_device_ms: &mut HashMap<DeviceName, u64>,
        now: SimTime,
        rng: &mut StdRng,
    ) {
        for diffs in pending {
            for diff in diffs {
                match diff {
                    PendingDiff::Row(row) => {
                        // Scoped instances skip work outside their
                        // partition (another specialized instance owns
                        // it).
                        if let Some(dev) = self.carrier_device(row) {
                            if !self.in_scope(&dev, row.attribute) {
                                continue;
                            }
                        }
                        report.diffs += 1;
                        self.execute_for_row(row, skip, report, per_device_ms, now, rng);
                    }
                    PendingDiff::Routing {
                        dev,
                        entity,
                        desired,
                    } => {
                        if !self.in_scope(dev, Attribute::DeviceRoutingRules) {
                            continue;
                        }
                        report.diffs += 1;
                        let row = NetworkState::new(
                            entity.clone(),
                            Attribute::DeviceRoutingRules,
                            Value::Routes(desired),
                            now,
                            statesman_types::AppId::updater(),
                        );
                        self.execute_for_row(&row, skip, report, per_device_ms, now, rng);
                    }
                }
            }
        }
    }

    /// The plan-driven execute stage: compile the pending diffs into an
    /// [`UpdatePlan`] and commit it wave by wave. Steps stay on this one
    /// thread in deterministic order (wave index, then step index — which
    /// is partition order, then key order, for dependency-free plans),
    /// but each step first has its projected intermediate state checked
    /// against the configured in-flight invariants:
    ///
    /// * a violation **defers** the step — its projected transition is
    ///   rolled back, no command is issued, and the memoryless rediff
    ///   retries it next round once the network has moved;
    /// * a step whose commands all fail has its projected transition
    ///   **rolled back** too (the device never started it), folding into
    ///   the existing circuit-breaker and cross-round retry paths.
    #[allow(clippy::too_many_arguments)]
    fn execute_plan(
        &self,
        pending: Vec<Vec<PendingDiff<'_>>>,
        os: &RoundOs<'_>,
        skip: &BTreeSet<DeviceName>,
        report: &mut UpdaterReport,
        per_device_ms: &mut HashMap<DeviceName, u64>,
        now: SimTime,
        rng: &mut StdRng,
    ) {
        // Materialize the diffs as owned rows, preserving the legacy
        // deterministic order (partition order, then key order) as the
        // synthesis input order. Scope filtering happens here so scoped
        // instances never plan work another instance owns.
        let mut rows: Vec<(NetworkState, Option<DeviceName>)> = Vec::new();
        for diffs in pending {
            for diff in diffs {
                match diff {
                    PendingDiff::Row(row) => {
                        let device = self.carrier_device(row);
                        if let Some(dev) = &device {
                            if !self.in_scope(dev, row.attribute) {
                                continue;
                            }
                        }
                        rows.push((row.clone(), device));
                    }
                    PendingDiff::Routing {
                        dev,
                        entity,
                        desired,
                    } => {
                        if !self.in_scope(dev, Attribute::DeviceRoutingRules) {
                            continue;
                        }
                        let row = NetworkState::new(
                            entity.clone(),
                            Attribute::DeviceRoutingRules,
                            Value::Routes(desired),
                            now,
                            statesman_types::AppId::updater(),
                        );
                        rows.push((row, Some(dev.clone())));
                    }
                }
            }
        }
        report.diffs += rows.len();
        let plan = crate::plan::UpdatePlan::synthesize(&self.graph, rows);
        report.plan_steps = plan.step_count();
        report.plan_waves = plan.wave_count();
        report.plan_max_width = plan.max_width();

        // In-flight projection state: the round's observed health, moved
        // forward step by step as transitions commit. `committed` is the
        // TS-overlay of in-flight transitions; a step's candidate health
        // is checked with its own row included, pessimistically (a
        // pending firmware/boot transition projects its device down).
        let mut committed = crate::view::MapView::new();
        // Lazy projection: the full-graph health projection is only
        // needed if some step will actually be checked against it.
        // Churn rounds synthesize empty plans, so skipping the
        // projection there is unobservable — and removes a full
        // every-entity scan per round.
        let mut health = if self.plan_invariants.is_empty() || plan.step_count() == 0 {
            None
        } else {
            Some(crate::view::project_health(&self.graph, os, None))
        };

        for wave in &plan.waves {
            // Pre-render the wave's commands in parallel (pure: no
            // issue, no RNG, no breaker state), then issue serially in
            // step order below. A wave's steps are pairwise independent
            // by construction, but issuing a step can still change a
            // later step's carrier or model (a link endpoint reboots),
            // so each pre-render is used only if it still matches at
            // issue time.
            let pre: Vec<Option<PreRender>> = if self.workers.threads() > 1 && wave.len() > 1 {
                self.workers.run(wave, |_, &idx| {
                    self.prerender_step(&plan.steps[idx].row, skip)
                })
            } else {
                Vec::new()
            };
            for (wi, &idx) in wave.iter().enumerate() {
                let step = &plan.steps[idx];
                let key =
                    statesman_types::StateKey::new(step.row.entity.clone(), step.row.attribute);
                let mut delta = None;
                if let Some(health) = health.as_mut() {
                    committed.upsert(step.row.clone());
                    let d = crate::view::HealthDelta::apply(
                        &self.graph,
                        os,
                        &committed,
                        std::slice::from_ref(&step.row),
                        health,
                    );
                    let ctx = crate::invariants::InvariantContext {
                        graph: &self.graph,
                        projected: health,
                        touched_pods: step.radius.pods.as_ref(),
                    };
                    let affected: Vec<&dyn crate::invariants::Invariant> = self
                        .plan_invariants
                        .iter()
                        .filter(|inv| inv.affected_by(&step.radius))
                        .map(|b| b.as_ref())
                        .collect();
                    let violated =
                        crate::engine::first_violation(&self.workers, &affected, &ctx).is_some();
                    if violated {
                        d.revert(health);
                        committed.remove(&key);
                        report.plan_inflight_rejections += 1;
                        continue;
                    }
                    delta = Some(d);
                }
                let applied_before = report.commands_applied;
                let failed_before = report.commands_failed;
                self.execute_for_row_with(
                    &step.row,
                    pre.get(wi).and_then(|p| p.as_ref()),
                    skip,
                    report,
                    per_device_ms,
                    now,
                    rng,
                );
                if report.commands_applied == applied_before {
                    // Nothing landed (skipped, unrenderable, or every
                    // command failed): the projected transition is not in
                    // flight — roll it back so later steps are not
                    // checked against a phantom outage.
                    if let (Some(d), Some(health)) = (delta, health.as_mut()) {
                        d.revert(health);
                        committed.remove(&key);
                        if report.commands_failed > failed_before {
                            report.plan_rollbacks += 1;
                        }
                    }
                }
            }
        }
    }

    /// Partition-level watermarks for every partition, or `None` when any
    /// is unavailable (degraded rounds drop entities from the diff, so
    /// quiescence cannot be proven against them).
    fn partition_marks(&self) -> Option<Vec<(DatacenterId, Version)>> {
        self.storage
            .partitions()
            .into_iter()
            .map(|dc| self.storage.partition_watermark(&dc).ok().map(|v| (dc, v)))
            .collect()
    }

    /// The device that carries the commands realizing a row's difference.
    fn carrier_device(&self, row: &NetworkState) -> Option<DeviceName> {
        match &row.entity.body {
            statesman_types::entity::EntityBody::Device(d) => Some(d.clone()),
            statesman_types::entity::EntityBody::Link(l) => {
                // Link interfaces are configured from a live endpoint.
                [&l.a, &l.b]
                    .into_iter()
                    .find(|d| self.net.device_operational(d))
                    .cloned()
            }
            statesman_types::entity::EntityBody::Path(_) => None,
        }
    }

    /// Is the device's breaker open right now? Expired breakers move to
    /// half-open: the probe is allowed through and the next outcome
    /// decides whether the breaker closes or re-opens.
    fn breaker_blocks(&self, device: &DeviceName) -> bool {
        if self.breaker.is_none() {
            return false;
        }
        let mut breakers = self.breakers.lock();
        let Some(state) = breakers.get_mut(device) else {
            return false;
        };
        match state.open_until {
            Some(until) if self.net.clock().now() < until => true,
            Some(_) => {
                state.open_until = None; // half-open: let one probe through
                false
            }
            None => false,
        }
    }

    /// Record a command outcome against the device's breaker.
    fn note_outcome(&self, device: &DeviceName, ok: bool, report: &mut UpdaterReport) {
        let Some((threshold, cooldown)) = self.breaker else {
            return;
        };
        let mut breakers = self.breakers.lock();
        if ok {
            breakers.remove(device);
            return;
        }
        let state = breakers.entry(device.clone()).or_default();
        state.consecutive_failures += 1;
        if state.consecutive_failures >= threshold && state.open_until.is_none() {
            state.open_until = Some(self.net.clock().now() + cooldown);
            report.breakers_opened += 1;
        }
    }

    /// One partition's share of the diff stage: compare its TS rows
    /// (global key order) and routing rule-sets (device-name order)
    /// against the OS, emitting the differing variables in that same
    /// order. **Pure with respect to the simulated network** — this runs
    /// one thread per partition, so it must never touch `self.net`: no
    /// command execution, no clock stepping, no sim RNG draws, no
    /// breaker state. Everything it reads (`os`, the partition's work
    /// list, `desired_routes`) is frozen for the round, so its output is
    /// a pure function of the inputs, independent of thread scheduling;
    /// all device interaction happens afterwards on the round's single
    /// execute thread.
    fn collect_partition_diffs<'a>(
        &self,
        work: &'a PartitionWork<'a>,
        os: &RoundOs<'_>,
        desired_routes: &BTreeMap<DeviceName, Vec<FlowLinkRule>>,
    ) -> Vec<PendingDiff<'a>> {
        let mut pending = Vec::new();
        for &row in &work.ts {
            if os.value_of(&row.entity, row.attribute) != Some(&row.value) {
                pending.push(PendingDiff::Row(row));
            }
        }

        // ---- routing diffs (device rules ∪ path rules) ----
        for (dev, device_rules, entity) in &work.routing {
            let mut desired: Vec<FlowLinkRule> = device_rules.clone().unwrap_or_default();
            if let Some(extra) = desired_routes.get(dev) {
                desired.extend(extra.iter().cloned());
            }
            normalize_rules(&mut desired);
            let mut current = os
                .value_of(entity, Attribute::DeviceRoutingRules)
                .and_then(|v| v.as_routes().map(|r| r.to_vec()))
                .unwrap_or_default();
            normalize_rules(&mut current);
            if current != desired {
                pending.push(PendingDiff::Routing {
                    dev,
                    entity,
                    desired,
                });
            }
        }
        pending
    }

    /// Render a step's commands ahead of its issue point. **Pure with
    /// respect to the round's effect order**: it reads the carrier
    /// device and model but issues nothing, draws no RNG, and never
    /// touches breaker state (inspecting a breaker mutates it via the
    /// half-open probe, so breakers are checked only serially at issue
    /// time). Returns `None` when the step renders to nothing from this
    /// vantage; the issue path re-derives everything anyway, so `None`
    /// only means "no shortcut", never "skip".
    fn prerender_step(&self, row: &NetworkState, skip: &BTreeSet<DeviceName>) -> Option<PreRender> {
        let device = self.carrier_device(row)?;
        if skip.contains(&device) {
            return None;
        }
        let model = self.net.device_snapshot(&device)?.model;
        let actions = self
            .pool
            .render(&TemplateCtx {
                entity: &row.entity,
                attribute: row.attribute,
                target: &row.value,
                device: &device,
                model,
            })
            .ok()?;
        Some(PreRender {
            device,
            model,
            actions,
        })
    }

    /// Render and execute the command(s) realizing one differing row.
    fn execute_for_row(
        &self,
        row: &NetworkState,
        skip: &BTreeSet<DeviceName>,
        report: &mut UpdaterReport,
        per_device_ms: &mut HashMap<DeviceName, u64>,
        now: statesman_types::SimTime,
        rng: &mut StdRng,
    ) {
        self.execute_for_row_with(row, None, skip, report, per_device_ms, now, rng)
    }

    /// Like [`Updater::execute_for_row`], but may reuse a wave
    /// pre-render. The carrier device and model are always re-derived
    /// here (wave-mates executed since the pre-render and may have
    /// changed both); the pre-rendered actions are used only when both
    /// still match, in which case they are bit-identical to rendering
    /// now — a template is a pure function of (row, device, model).
    #[allow(clippy::too_many_arguments)]
    fn execute_for_row_with(
        &self,
        row: &NetworkState,
        pre: Option<&PreRender>,
        skip: &BTreeSet<DeviceName>,
        report: &mut UpdaterReport,
        per_device_ms: &mut HashMap<DeviceName, u64>,
        now: statesman_types::SimTime,
        rng: &mut StdRng,
    ) {
        let Some(device) = self.carrier_device(row) else {
            report.unrenderable += 1;
            return;
        };
        if skip.contains(&device) {
            report.quarantine_skips += 1;
            return;
        }
        if self.breaker_blocks(&device) {
            report.breaker_skips += 1;
            return;
        }
        let model = match self.net.device_snapshot(&device) {
            Some(d) => d.model,
            None => {
                report.unrenderable += 1;
                return;
            }
        };
        let rendered;
        let actions: &[RenderedAction] = match pre {
            Some(p) if p.device == device && p.model == model => &p.actions,
            _ => {
                let ctx = TemplateCtx {
                    entity: &row.entity,
                    attribute: row.attribute,
                    target: &row.value,
                    device: &device,
                    model,
                };
                rendered = match self.pool.render(&ctx) {
                    Ok(a) => a,
                    Err(_) => {
                        report.unrenderable += 1;
                        return;
                    }
                };
                &rendered
            }
        };
        for action in actions {
            self.execute_action(action, report, per_device_ms, now, rng);
        }
    }

    /// Issue one action, retrying retryable failures within the bounded
    /// [`RetryPolicy`] budget. Each backoff steps the simulated network
    /// forward, so the total simulated time any action can consume is
    /// capped by [`RetryPolicy::worst_case_total_backoff`].
    fn execute_action(
        &self,
        action: &RenderedAction,
        report: &mut UpdaterReport,
        per_device_ms: &mut HashMap<DeviceName, u64>,
        now: statesman_types::SimTime,
        rng: &mut StdRng,
    ) {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let result = self
                .adapter(action.protocol)
                .execute(&action.device, action.command.clone());
            match result {
                Ok(CommandOutcome::Applied { effective_at }) => {
                    report.commands_applied += 1;
                    let ms = effective_at.saturating_since(now).as_millis();
                    *per_device_ms.entry(action.device.clone()).or_insert(0) += ms.max(1);
                    self.note_outcome(&action.device, true, report);
                    return;
                }
                other => {
                    // Failed interactions still cost wall time (§2.1: the
                    // command that times out dominates the loop).
                    *per_device_ms.entry(action.device.clone()).or_insert(0) += 1_000;
                    // Timeouts and rejections are transient device-side
                    // conditions; typed errors decide via the shared
                    // retryable/fatal split.
                    let retryable = match &other {
                        Err(e) => e.is_retryable(),
                        Ok(_) => true,
                    };
                    if retryable && self.retry.should_retry(attempt) {
                        report.retries += 1;
                        let roll: f64 = rng.gen();
                        self.net.step(self.retry.backoff_after(attempt, roll));
                        continue;
                    }
                    report.commands_failed += 1;
                    self.note_outcome(&action.device, false, report);
                    return;
                }
            }
        }
    }
}

/// Canonical ordering + dedup so rule-set comparison is well-defined.
fn normalize_rules(rules: &mut Vec<FlowLinkRule>) {
    rules.sort_by(|a, b| {
        a.flow
            .cmp(&b.flow)
            .then_with(|| a.out_link.cmp(&b.out_link))
            .then_with(|| {
                a.weight
                    .partial_cmp(&b.weight)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    });
    rules.dedup_by(|a, b| a.flow == b.flow && a.out_link == b.out_link && a.weight == b.weight);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::Monitor;
    use statesman_net::{SimClock, SimConfig};
    use statesman_storage::WriteRequest;
    use statesman_topology::DcnSpec;
    use statesman_types::PowerStatus;
    use statesman_types::{AppId, SimTime};

    fn setup() -> (SimNetwork, StorageService, NetworkGraph, SimClock) {
        let clock = SimClock::new();
        let graph = DcnSpec::tiny("dc1").build();
        let mut cfg = SimConfig::ideal();
        cfg.faults.command_latency_ms = 100;
        cfg.faults.reboot_window_ms = 60_000;
        let net = SimNetwork::new(&graph, clock.clone(), cfg);
        let storage = StorageService::single_dc("dc1", clock.clone());
        (net, storage, graph, clock)
    }

    fn ts_row(entity: EntityName, attr: Attribute, v: Value, at: SimTime) -> NetworkState {
        NetworkState::new(entity, attr, v, at, AppId::new("switch-upgrade"))
    }

    /// Seed the OS by running a real monitor round.
    fn seed_os(net: &SimNetwork, storage: &StorageService, graph: &NetworkGraph) {
        Monitor::new(net.clone(), storage.clone(), graph.clone())
            .run_round()
            .unwrap();
    }

    #[test]
    fn firmware_diff_drives_upgrade_to_convergence() {
        let (net, storage, graph, clock) = setup();
        seed_os(&net, &storage, &graph);
        let u = Updater::new(net.clone(), storage.clone(), graph.clone());

        storage
            .write(WriteRequest {
                pool: Pool::Target,
                rows: vec![ts_row(
                    EntityName::device("dc1", "agg-1-1"),
                    Attribute::DeviceFirmwareVersion,
                    Value::text("7.0"),
                    clock.now(),
                )],
            })
            .unwrap();

        let r1 = u.run_round().unwrap();
        assert_eq!(r1.diffs, 1);
        assert_eq!(r1.commands_applied, 1);
        assert!(r1.sim_io >= SimDuration::from_millis(100));

        // Command latency + reboot window pass; device comes back on 7.0.
        net.step(SimDuration::from_secs(100));
        seed_os(&net, &storage, &graph);
        assert_eq!(
            net.device_snapshot(&DeviceName::new("agg-1-1"))
                .unwrap()
                .observed_firmware(),
            "7.0"
        );

        // Converged: next round sees no difference.
        let r2 = u.run_round().unwrap();
        assert_eq!(r2.diffs, 0);
        assert_eq!(r2.commands_applied, 0);
    }

    #[test]
    fn stateless_retry_survives_reboot_window() {
        let (net, storage, graph, clock) = setup();
        seed_os(&net, &storage, &graph);
        let u = Updater::new(net.clone(), storage.clone(), graph.clone());
        storage
            .write(WriteRequest {
                pool: Pool::Target,
                rows: vec![ts_row(
                    EntityName::device("dc1", "agg-1-1"),
                    Attribute::DeviceFirmwareVersion,
                    Value::text("7.0"),
                    clock.now(),
                )],
            })
            .unwrap();
        u.run_round().unwrap();
        net.step(SimDuration::from_secs(1)); // command landed; rebooting

        // Mid-reboot round: OS is stale (old firmware), device times out;
        // the updater just fails and will rediff later — no state carried.
        let r2 = u.run_round().unwrap();
        assert_eq!(r2.diffs, 1);
        assert_eq!(r2.commands_applied, 0);
        assert_eq!(r2.commands_failed, 1);

        // After the reboot completes, convergence.
        net.step(SimDuration::from_secs(100));
        seed_os(&net, &storage, &graph);
        let r3 = u.run_round().unwrap();
        assert_eq!(r3.diffs, 0);
    }

    #[test]
    fn link_admin_power_goes_to_a_live_endpoint() {
        let (net, storage, graph, clock) = setup();
        seed_os(&net, &storage, &graph);
        let u = Updater::new(net.clone(), storage.clone(), graph.clone());
        let link = LinkName::between("tor-1-1", "agg-1-1");
        storage
            .write(WriteRequest {
                pool: Pool::Target,
                rows: vec![ts_row(
                    EntityName::link_named("dc1", link.clone()),
                    Attribute::LinkAdminPower,
                    Value::power(false),
                    clock.now(),
                )],
            })
            .unwrap();
        let r = u.run_round().unwrap();
        assert_eq!(r.commands_applied, 1);
        net.step(SimDuration::from_secs(1));
        assert!(!net.link_oper_up(&link));
        assert_eq!(
            net.link_snapshot(&link).unwrap().admin_power,
            PowerStatus::Off
        );
    }

    #[test]
    fn path_rows_translate_into_device_routes() {
        let (net, storage, graph, clock) = setup();
        seed_os(&net, &storage, &graph);
        let u = Updater::new(net.clone(), storage.clone(), graph.clone());
        let path = EntityName::path("dc1", "flow:t11>t12");
        storage
            .write(WriteRequest {
                pool: Pool::Target,
                rows: vec![
                    ts_row(
                        path.clone(),
                        Attribute::PathSwitches,
                        Value::DeviceList(vec![
                            DeviceName::new("tor-1-1"),
                            DeviceName::new("agg-1-1"),
                            DeviceName::new("tor-1-2"),
                        ]),
                        clock.now(),
                    ),
                    ts_row(
                        path,
                        Attribute::PathTrafficAllocation,
                        Value::Float(500.0),
                        clock.now(),
                    ),
                ],
            })
            .unwrap();
        let r = u.run_round().unwrap();
        assert_eq!(r.diffs, 2, "two on-path devices need rules");
        assert_eq!(r.commands_applied, 2);
        net.step(SimDuration::from_secs(1));
        let tor = net.device_snapshot(&DeviceName::new("tor-1-1")).unwrap();
        assert_eq!(tor.routing_rules.len(), 1);
        assert_eq!(tor.routing_rules[0].flow, "flow:t11>t12");

        // Idempotence: after the OS reflects the rules, no more diffs.
        seed_os(&net, &storage, &graph);
        let r2 = u.run_round().unwrap();
        assert_eq!(r2.diffs, 0, "routing diff must be idempotent");
    }

    #[test]
    fn unrenderable_rows_are_counted_not_fatal() {
        let (net, storage, graph, clock) = setup();
        seed_os(&net, &storage, &graph);
        let u = Updater::new(net.clone(), storage.clone(), graph.clone())
            .with_pool(CommandTemplatePool::empty());
        storage
            .write(WriteRequest {
                pool: Pool::Target,
                rows: vec![ts_row(
                    EntityName::device("dc1", "agg-1-1"),
                    Attribute::DeviceFirmwareVersion,
                    Value::text("7.0"),
                    clock.now(),
                )],
            })
            .unwrap();
        let r = u.run_round().unwrap();
        assert_eq!(r.unrenderable, 1);
        assert_eq!(r.commands_applied, 0);
    }

    #[test]
    fn scoped_instances_partition_the_work() {
        // §6.2: "one instance per state variable per switch model".
        let (net, storage, graph, clock) = setup();
        seed_os(&net, &storage, &graph);
        storage
            .write(WriteRequest {
                pool: Pool::Target,
                rows: vec![
                    ts_row(
                        EntityName::device("dc1", "agg-1-1"),
                        Attribute::DeviceFirmwareVersion,
                        Value::text("7.0"),
                        clock.now(),
                    ),
                    ts_row(
                        EntityName::device("dc1", "agg-1-2"),
                        Attribute::DeviceBootImage,
                        Value::text("img-x"),
                        clock.now(),
                    ),
                ],
            })
            .unwrap();

        // A firmware-only instance acts on exactly the firmware diff.
        let fw_instance = Updater::new(net.clone(), storage.clone(), graph.clone()).with_scope(
            UpdaterScope::specialized(
                DeviceModel::OpenFlowSwitch,
                Attribute::DeviceFirmwareVersion,
            ),
        );
        let r = fw_instance.run_round().unwrap();
        assert_eq!(r.diffs, 1);

        // A boot-image instance acts on the other diff.
        let img_instance = Updater::new(net.clone(), storage.clone(), graph.clone()).with_scope(
            UpdaterScope::specialized(DeviceModel::OpenFlowSwitch, Attribute::DeviceBootImage),
        );
        let r = img_instance.run_round().unwrap();
        assert_eq!(r.diffs, 1);

        // A BGP-model instance has nothing to do on this fabric.
        let bgp_instance = Updater::new(net.clone(), storage, graph).with_scope(UpdaterScope {
            model: Some(DeviceModel::BgpRouter),
            attributes: vec![],
        });
        let r = bgp_instance.run_round().unwrap();
        assert_eq!(r.diffs, 0);

        // Together the scoped instances realized both changes.
        net.step(SimDuration::from_secs(1));
        assert!(net
            .device_snapshot(&DeviceName::new("agg-1-1"))
            .unwrap()
            .upgrading
            .is_some());
        assert_eq!(
            net.device_snapshot(&DeviceName::new("agg-1-2"))
                .unwrap()
                .boot_image,
            "img-x"
        );
    }

    /// A world where agg-1-1 is mid-reboot (management plane dead) for
    /// `reboot_ms`, with a pending boot-image TS diff on it.
    fn stuck_device_world(reboot_ms: u64) -> (SimNetwork, StorageService, NetworkGraph, SimClock) {
        let clock = SimClock::new();
        let graph = DcnSpec::tiny("dc1").build();
        let mut cfg = SimConfig::ideal();
        cfg.faults.command_latency_ms = 100;
        cfg.faults.reboot_window_ms = reboot_ms;
        let net = SimNetwork::new(&graph, clock.clone(), cfg);
        let storage = StorageService::single_dc("dc1", clock.clone());
        seed_os(&net, &storage, &graph);
        net.submit(
            &DeviceName::new("agg-1-1"),
            statesman_net::DeviceCommand::UpgradeFirmware {
                version: "7".into(),
            },
        );
        // Step past the command latency so the reboot window begins.
        net.step(SimDuration::from_millis(200));
        storage
            .write(WriteRequest {
                pool: Pool::Target,
                rows: vec![ts_row(
                    EntityName::device("dc1", "agg-1-1"),
                    Attribute::DeviceBootImage,
                    Value::text("img-gold"),
                    clock.now(),
                )],
            })
            .unwrap();
        (net, storage, graph, clock)
    }

    #[test]
    fn circuit_breaker_opens_after_k_failures_and_recovers_half_open() {
        let (net, storage, graph, _clock) = stuck_device_world(30 * 60_000);
        let u = Updater::new(net.clone(), storage, graph)
            .with_circuit_breaker(2, SimDuration::from_mins(5));

        // Two consecutive failures trip the breaker.
        let r1 = u.run_round().unwrap();
        assert_eq!(r1.commands_failed, 1);
        assert_eq!(r1.breakers_opened, 0);
        let r2 = u.run_round().unwrap();
        assert_eq!(r2.commands_failed, 1);
        assert_eq!(r2.breakers_opened, 1);

        // While open: the diff is still seen (stateless rediff) but no
        // command is issued — the round is bounded, costing zero device
        // interaction time on the dead device.
        let r3 = u.run_round().unwrap();
        assert_eq!(r3.diffs, 1);
        assert_eq!(r3.breaker_skips, 1);
        assert_eq!(r3.commands_failed, 0);
        assert_eq!(r3.sim_io, SimDuration::ZERO);

        // After the reboot and the cooldown, the half-open probe goes
        // through, succeeds, and closes the breaker.
        net.step(SimDuration::from_mins(31));
        let r4 = u.run_round().unwrap();
        assert_eq!(r4.commands_applied, 1);
        assert_eq!(r4.breaker_skips, 0);
    }

    #[test]
    fn failed_half_open_probe_reopens_the_breaker() {
        let (net, storage, graph, _clock) = stuck_device_world(60 * 60_000);
        let u = Updater::new(net.clone(), storage, graph)
            .with_circuit_breaker(1, SimDuration::from_mins(5));
        let r1 = u.run_round().unwrap();
        assert_eq!(r1.breakers_opened, 1);
        // Cooldown expires but the device is still dead: the probe fails
        // and the breaker re-opens for another cooldown.
        net.step(SimDuration::from_mins(6));
        let r2 = u.run_round().unwrap();
        assert_eq!(r2.commands_failed, 1);
        assert_eq!(r2.breakers_opened, 1);
        let r3 = u.run_round().unwrap();
        assert_eq!(r3.breaker_skips, 1);
    }

    #[test]
    fn bounded_retry_rides_out_a_short_outage() {
        let (net, storage, graph, clock) = stuck_device_world(1_000);
        let policy = RetryPolicy {
            max_attempts: 2,
            base_backoff: SimDuration::from_secs(2),
            max_backoff: SimDuration::from_secs(2),
            jitter_frac: 0.0,
        };
        let bound = policy.worst_case_total_backoff();
        let u = Updater::new(net.clone(), storage, graph).with_retry(policy);
        let before = clock.now();
        let r = u.run_round().unwrap();
        // Attempt 1 hits the rebooting device; the backoff steps the sim
        // past the 1 s reboot; attempt 2 lands.
        assert_eq!(r.retries, 1);
        assert_eq!(r.commands_applied, 1);
        assert_eq!(r.commands_failed, 0);
        let backed_off = clock.now().saturating_since(before);
        assert!(backed_off <= bound, "{backed_off} > bound {bound}");
    }

    #[test]
    fn quarantined_devices_get_no_commands() {
        // A device in the exclusion set must see zero interaction: its
        // diff is observed (stateless rediff) but no command is rendered
        // or sent, so a recovering device is not knocked over again by an
        // upgrade issued against stale OS.
        let (net, storage, graph, _clock) = stuck_device_world(1_000);
        let u = Updater::new(net.clone(), storage, graph);
        let skip: BTreeSet<DeviceName> = [DeviceName::new("agg-1-1")].into_iter().collect();
        let r = u.run_round_excluding(&skip).unwrap();
        assert_eq!(r.diffs, 1);
        assert_eq!(r.quarantine_skips, 1);
        assert_eq!(r.commands_applied, 0);
        assert_eq!(r.commands_failed, 0);
        assert_eq!(r.sim_io, SimDuration::ZERO);

        // An empty exclusion set behaves exactly like run_round.
        net.step(SimDuration::from_secs(5));
        let r2 = u.run_round().unwrap();
        assert_eq!(r2.quarantine_skips, 0);
        assert_eq!(r2.commands_applied, 1);
    }

    #[test]
    fn fatal_errors_are_not_retried() {
        // An empty template pool makes the diff unrenderable — a fatal,
        // not retryable, condition: no retry budget may be spent on it.
        let (net, storage, graph, _clock) = stuck_device_world(1_000);
        let u = Updater::new(net.clone(), storage, graph)
            .with_pool(CommandTemplatePool::empty())
            .with_retry(RetryPolicy::default());
        let r = u.run_round().unwrap();
        assert_eq!(r.unrenderable, 1);
        assert_eq!(r.retries, 0);
    }

    #[test]
    fn delta_rounds_match_full_read_rounds() {
        // Identical worlds, one updater mirroring pools via deltas and
        // one re-reading in full: every round's observable outcome must
        // match, including across a quarantine round and a TS delete.
        let run = |delta: bool| {
            let (net, storage, graph, clock) = setup();
            seed_os(&net, &storage, &graph);
            let u =
                Updater::new(net.clone(), storage.clone(), graph.clone()).with_delta_reads(delta);
            let mut outcomes = Vec::new();
            let key = |r: &UpdaterReport| (r.diffs, r.commands_applied, r.quarantine_skips);
            storage
                .write(WriteRequest {
                    pool: Pool::Target,
                    rows: vec![ts_row(
                        EntityName::device("dc1", "agg-1-1"),
                        Attribute::DeviceFirmwareVersion,
                        Value::text("7.0"),
                        clock.now(),
                    )],
                })
                .unwrap();
            outcomes.push(key(&u.run_round().unwrap()));
            net.step(SimDuration::from_secs(100));
            seed_os(&net, &storage, &graph);
            // Quarantine round (forces the full-read path) with a second
            // pending diff.
            storage
                .write(WriteRequest {
                    pool: Pool::Target,
                    rows: vec![ts_row(
                        EntityName::device("dc1", "agg-1-2"),
                        Attribute::DeviceBootImage,
                        Value::text("img-x"),
                        clock.now(),
                    )],
                })
                .unwrap();
            let skip: BTreeSet<DeviceName> = [DeviceName::new("agg-1-2")].into_iter().collect();
            outcomes.push(key(&u.run_round_excluding(&skip).unwrap()));
            // TS row deleted: the diff must vanish through the mirror too.
            storage
                .delete(
                    Pool::Target,
                    vec![statesman_types::StateKey::new(
                        EntityName::device("dc1", "agg-1-2"),
                        Attribute::DeviceBootImage,
                    )],
                )
                .unwrap();
            outcomes.push(key(&u.run_round().unwrap()));
            outcomes
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn plan_rounds_match_chain_walk_rounds() {
        // Identical worlds, one updater executing through a synthesized
        // plan and one through the legacy chain walk: with no in-flight
        // invariants configured, every round's observable outcome must
        // match, including across a quarantine round.
        let run = |plan: bool| {
            let (net, storage, graph, clock) = setup();
            seed_os(&net, &storage, &graph);
            let u =
                Updater::new(net.clone(), storage.clone(), graph.clone()).with_plan_synthesis(plan);
            let mut outcomes = Vec::new();
            let key = |r: &UpdaterReport| (r.diffs, r.commands_applied, r.quarantine_skips);
            storage
                .write(WriteRequest {
                    pool: Pool::Target,
                    rows: vec![
                        ts_row(
                            EntityName::device("dc1", "agg-1-1"),
                            Attribute::DeviceFirmwareVersion,
                            Value::text("7.0"),
                            clock.now(),
                        ),
                        ts_row(
                            EntityName::device("dc1", "agg-1-2"),
                            Attribute::DeviceBootImage,
                            Value::text("img-x"),
                            clock.now(),
                        ),
                    ],
                })
                .unwrap();
            outcomes.push(key(&u.run_round().unwrap()));
            let skip: BTreeSet<DeviceName> = [DeviceName::new("agg-1-2")].into_iter().collect();
            outcomes.push(key(&u.run_round_excluding(&skip).unwrap()));
            net.step(SimDuration::from_secs(200));
            seed_os(&net, &storage, &graph);
            outcomes.push(key(&u.run_round().unwrap()));
            outcomes
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn plan_round_reports_waves_and_width() {
        let (net, storage, graph, clock) = setup();
        seed_os(&net, &storage, &graph);
        let u = Updater::new(net.clone(), storage.clone(), graph.clone()).with_plan_synthesis(true);
        storage
            .write(WriteRequest {
                pool: Pool::Target,
                rows: vec![
                    ts_row(
                        EntityName::device("dc1", "agg-1-1"),
                        Attribute::DeviceFirmwareVersion,
                        Value::text("7.0"),
                        clock.now(),
                    ),
                    ts_row(
                        EntityName::device("dc1", "agg-2-1"),
                        Attribute::DeviceFirmwareVersion,
                        Value::text("7.0"),
                        clock.now(),
                    ),
                ],
            })
            .unwrap();
        let r = u.run_round().unwrap();
        // Two independent devices in different pods: one wave, width 2.
        assert_eq!(r.diffs, 2);
        assert_eq!(r.plan_steps, 2);
        assert_eq!(r.plan_waves, 1);
        assert_eq!(r.plan_max_width, 2);
        assert_eq!(r.plan_inflight_rejections, 0);
        assert_eq!(r.commands_applied, 2);
        // The legacy path leaves the plan metrics at zero.
        let legacy = Updater::new(net, storage, graph);
        let r2 = legacy.run_round().unwrap();
        assert_eq!(r2.plan_steps, 0);
        assert_eq!(r2.plan_waves, 0);
    }

    #[test]
    fn inflight_budget_check_serializes_a_rolling_upgrade() {
        use crate::invariants::MaintenanceBudgetInvariant;
        let (net, storage, graph, clock) = setup();
        seed_os(&net, &storage, &graph);
        // Budget of one device down at a time: the second pending
        // firmware transition must be deferred in flight, not issued.
        let u = Updater::new(net.clone(), storage.clone(), graph.clone())
            .with_plan_synthesis(true)
            .with_plan_invariants(vec![Box::new(MaintenanceBudgetInvariant::new("dc1", 1))]);
        storage
            .write(WriteRequest {
                pool: Pool::Target,
                rows: vec![
                    ts_row(
                        EntityName::device("dc1", "agg-1-1"),
                        Attribute::DeviceFirmwareVersion,
                        Value::text("7.0"),
                        clock.now(),
                    ),
                    ts_row(
                        EntityName::device("dc1", "agg-1-2"),
                        Attribute::DeviceFirmwareVersion,
                        Value::text("7.0"),
                        clock.now(),
                    ),
                ],
            })
            .unwrap();
        let r1 = u.run_round().unwrap();
        assert_eq!(r1.diffs, 2);
        assert_eq!(r1.commands_applied, 1);
        assert_eq!(r1.plan_inflight_rejections, 1);

        // Once the first upgrade lands and the OS reflects it, the
        // deferred step passes its in-flight check and commits.
        net.step(SimDuration::from_secs(100));
        seed_os(&net, &storage, &graph);
        let r2 = u.run_round().unwrap();
        assert_eq!(r2.diffs, 1);
        assert_eq!(r2.commands_applied, 1);
        assert_eq!(r2.plan_inflight_rejections, 0);

        net.step(SimDuration::from_secs(100));
        seed_os(&net, &storage, &graph);
        let r3 = u.run_round().unwrap();
        assert_eq!(r3.diffs, 0);
    }

    #[test]
    fn standard_pool_covers_both_models() {
        let pool = CommandTemplatePool::standard();
        assert!(pool.len() >= 18); // 9 attrs × 2 models
        assert!(!pool.is_empty());
    }

    #[test]
    fn normalize_rules_orders_and_dedups() {
        let l1 = LinkName::between("a", "b");
        let l2 = LinkName::between("a", "c");
        let mut rules = vec![
            FlowLinkRule::new("f2", l2.clone(), 1.0),
            FlowLinkRule::new("f1", l1.clone(), 1.0),
            FlowLinkRule::new("f1", l1.clone(), 1.0),
        ];
        normalize_rules(&mut rules);
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].flow, "f1");
    }
}
