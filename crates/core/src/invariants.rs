//! Operator-specified network-wide invariants.
//!
//! Invariants "specify basic safety and performance requirements for the
//! network ... a pod of servers must not be disconnected from the rest of
//! the datacenter, and there must be some minimum bandwidth between each
//! pair of pods" (§1). The checker evaluates them against the *projected*
//! post-TS network: base graph + OS health + proposed changes
//! (§"maintaining invariants" slides: maintain a base network state graph
//! from the OS, compute the TS−OS difference, check invariants on the new
//! network state).
//!
//! Implementations:
//!
//! * [`ConnectivityInvariant`] — no powered-on ToR may be disconnected
//!   from the core tier (the Fig-2 disaster);
//! * [`TorPairCapacityInvariant`] — the §7.2 headline: ≥ `pair_fraction`
//!   of sampled directional ToR pairs keep ≥ `capacity_threshold` of
//!   baseline capacity (99% / 50% in the paper); uses cached baselines and
//!   pod-scoped incremental re-evaluation;
//! * [`WanLinkInvariant`] — every datacenter pair keeps at least one
//!   usable WAN link (the Fig-9/Fig-10 safety floor).

use statesman_topology::{capacity, graph::components, HealthView, NetworkGraph, NodeId};
use statesman_types::{DatacenterId, DeviceRole};
use std::collections::HashSet;

/// What the checker hands an invariant.
pub struct InvariantContext<'a> {
    /// The structural topology.
    pub graph: &'a NetworkGraph,
    /// Health projected from OS + candidate TS.
    pub projected: &'a HealthView,
    /// Pods touched by the candidate change (for incremental evaluation);
    /// `None` means unknown — evaluate everything.
    pub touched_pods: Option<&'a HashSet<(DatacenterId, u32)>>,
}

/// A violation report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The invariant's name.
    pub invariant: String,
    /// Human-readable detail.
    pub reason: String,
}

/// An operator-specified network-wide invariant.
pub trait Invariant: Send + Sync {
    /// Stable name (appears in rejection receipts).
    fn name(&self) -> &str;
    /// Check the projected network state.
    fn check(&self, ctx: &InvariantContext<'_>) -> Result<(), Violation>;
    /// Can this invariant's verdict change when only the variables inside
    /// `radius` changed? The incremental checker skips re-evaluation (and
    /// keeps the cached verdict) when this returns false. The default is
    /// conservative: any change may affect the invariant.
    fn affected_by(&self, _radius: &crate::deps::BlastRadius) -> bool {
        true
    }
    /// Does calling [`Invariant::check`] mutate internal state that later
    /// checks observe (e.g. a cached report reused for incremental
    /// evaluation)? The parallel round engine evaluates order-insensitive
    /// (pure) invariants concurrently and speculatively; order-sensitive
    /// ones are evaluated exactly when the serial first-violation loop
    /// would, preserving bit-identical cache trajectories.
    fn order_sensitive(&self) -> bool {
        false
    }
}

/// No operational ToR may be disconnected from every core router.
pub struct ConnectivityInvariant {
    /// The datacenter this instance guards.
    pub datacenter: DatacenterId,
}

impl ConnectivityInvariant {
    /// Guard `datacenter`.
    pub fn new(datacenter: impl Into<DatacenterId>) -> Self {
        ConnectivityInvariant {
            datacenter: datacenter.into(),
        }
    }
}

impl Invariant for ConnectivityInvariant {
    fn name(&self) -> &str {
        "connectivity"
    }

    fn affected_by(&self, radius: &crate::deps::BlastRadius) -> bool {
        radius.affects_dc(&self.datacenter)
    }

    fn check(&self, ctx: &InvariantContext<'_>) -> Result<(), Violation> {
        // Incremental fast path: a pod-scoped change can only disconnect
        // ToRs inside the touched pods (pod devices have no links outside
        // their pod except to the core tier). Verify each up ToR of a
        // touched pod can still reach a core/border with an early-exit
        // BFS; untouched pods are unaffected.
        if let Some(touched) = ctx.touched_pods {
            for (dc, pod) in touched {
                if dc != &self.datacenter {
                    continue;
                }
                for id in ctx.graph.devices_in_pod(dc, *pod) {
                    let info = ctx.graph.node(id);
                    if info.role != DeviceRole::ToR || !ctx.projected.device_up(&info.name) {
                        continue;
                    }
                    if !reaches_core(ctx.graph, ctx.projected, id) {
                        return Err(Violation {
                            invariant: self.name().to_string(),
                            reason: format!(
                                "{} would be disconnected from the core tier",
                                info.name
                            ),
                        });
                    }
                }
            }
            return Ok(());
        }

        // Full path: component decomposition over usable links; every up
        // ToR must share a component with at least one up core router.
        let comps = components(ctx.graph, ctx.projected);
        for comp in comps {
            let mut has_tor: Option<NodeId> = None;
            let mut has_core = false;
            for id in &comp {
                match ctx.graph.node(*id).role {
                    DeviceRole::ToR if ctx.graph.node(*id).datacenter == self.datacenter => {
                        has_tor.get_or_insert(*id);
                    }
                    DeviceRole::Core | DeviceRole::Border => has_core = true,
                    _ => {}
                }
            }
            if let Some(tor) = has_tor {
                if !has_core {
                    return Err(Violation {
                        invariant: self.name().to_string(),
                        reason: format!(
                            "{} would be disconnected from the core tier",
                            ctx.graph.node(tor).name
                        ),
                    });
                }
            }
        }
        Ok(())
    }
}

/// Early-exit BFS: can `start` reach any up core/border router over
/// usable links?
fn reaches_core(graph: &NetworkGraph, health: &HealthView, start: NodeId) -> bool {
    let mut seen = std::collections::HashSet::new();
    let mut queue = std::collections::VecDeque::new();
    seen.insert(start);
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        if matches!(graph.node(u).role, DeviceRole::Core | DeviceRole::Border) {
            return true;
        }
        for &(e, v) in graph.neighbors(u) {
            if seen.contains(&v) {
                continue;
            }
            if !health.link_usable(&graph.edge(e).name) {
                continue;
            }
            seen.insert(v);
            queue.push_back(v);
        }
    }
    false
}

/// The §7.2 capacity invariant over sampled directional ToR pairs.
pub struct TorPairCapacityInvariant {
    /// The datacenter this instance guards.
    pub datacenter: DatacenterId,
    /// Minimum fraction of baseline capacity per pair (0.5 in the paper).
    pub capacity_threshold: f64,
    /// Minimum fraction of pairs that must meet the threshold (0.99).
    pub pair_fraction: f64,
    pairs: Vec<(NodeId, NodeId)>,
    baselines: Vec<f64>,
    /// Last full evaluation, reused for incremental updates.
    last_report: parking_lot::Mutex<Option<capacity::CapacityReport>>,
}

impl TorPairCapacityInvariant {
    /// Build with the paper's parameters (99% of pairs ≥ 50%), sampling
    /// `sample_tors_per_pod` ToRs per pod (Fig 8 uses 1).
    pub fn paper_default(
        graph: &NetworkGraph,
        datacenter: impl Into<DatacenterId>,
        sample_tors_per_pod: Option<u32>,
    ) -> Self {
        Self::new(graph, datacenter, 0.5, 0.99, sample_tors_per_pod)
    }

    /// Like [`TorPairCapacityInvariant::new`] but with the evaluated pair
    /// panel capped at `max_pairs` (seeded, deterministic downsample) —
    /// required at production scale where all-pairs max-flow is
    /// infeasible per checker pass.
    pub fn sampled(
        graph: &NetworkGraph,
        datacenter: impl Into<DatacenterId>,
        capacity_threshold: f64,
        pair_fraction: f64,
        sample_tors_per_pod: Option<u32>,
        max_pairs: usize,
        seed: u64,
    ) -> Self {
        let datacenter = datacenter.into();
        let pairs = capacity::downsample_pairs(
            capacity::select_tor_pairs(graph, &datacenter, sample_tors_per_pod),
            max_pairs,
            seed,
        );
        let baselines = capacity::baselines_for(graph, &pairs);
        TorPairCapacityInvariant {
            datacenter,
            capacity_threshold,
            pair_fraction,
            pairs,
            baselines,
            last_report: parking_lot::Mutex::new(None),
        }
    }

    /// Fully parameterized constructor. Baselines are computed once at
    /// construction against the all-up graph.
    pub fn new(
        graph: &NetworkGraph,
        datacenter: impl Into<DatacenterId>,
        capacity_threshold: f64,
        pair_fraction: f64,
        sample_tors_per_pod: Option<u32>,
    ) -> Self {
        let datacenter = datacenter.into();
        let pairs = capacity::select_tor_pairs(graph, &datacenter, sample_tors_per_pod);
        let baselines = capacity::baselines_for(graph, &pairs);
        TorPairCapacityInvariant {
            datacenter,
            capacity_threshold,
            pair_fraction,
            pairs,
            baselines,
            last_report: parking_lot::Mutex::new(None),
        }
    }

    /// Number of sampled pairs.
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// The most recent evaluation (for scenario plotting — Fig 8 reads
    /// this to emit its capacity matrix).
    pub fn last_report(&self) -> Option<capacity::CapacityReport> {
        self.last_report.lock().clone()
    }
}

impl Invariant for TorPairCapacityInvariant {
    fn name(&self) -> &str {
        "tor-pair-capacity"
    }

    fn affected_by(&self, radius: &crate::deps::BlastRadius) -> bool {
        radius.affects_dc(&self.datacenter)
    }

    fn order_sensitive(&self) -> bool {
        // `check` reuses (and rewrites) `last_report` for incremental
        // evaluation, so whether a given check runs is observable later.
        true
    }

    fn check(&self, ctx: &InvariantContext<'_>) -> Result<(), Violation> {
        let mut cache = self.last_report.lock();
        let report = match (&*cache, ctx.touched_pods) {
            (Some(prev), Some(touched)) => {
                prev.evaluate_incremental(ctx.graph, ctx.projected, touched)
            }
            _ => capacity::evaluate_with_baselines(
                ctx.graph,
                ctx.projected,
                &self.pairs,
                &self.baselines,
            ),
        };
        let meeting = report.fraction_meeting(self.capacity_threshold);
        let result = if meeting + 1e-9 >= self.pair_fraction {
            Ok(())
        } else {
            let worst = report.worst_fraction();
            Err(Violation {
                invariant: self.name().to_string(),
                reason: format!(
                    "only {:.1}% of ToR pairs keep ≥{:.0}% capacity (worst {:.0}%)",
                    meeting * 100.0,
                    self.capacity_threshold * 100.0,
                    worst * 100.0
                ),
            })
        };
        // Only cache passing evaluations: the checker drops rejected
        // candidates, so the cached report must keep reflecting the last
        // state that could actually be merged — otherwise a later
        // incremental evaluation would inherit phantom outages from a
        // rejected proposal that never entered the TS.
        if result.is_ok() {
            *cache = Some(report);
        }
        result
    }
}

/// An operator policy cap: at most `max_down_devices` devices of the
/// guarded datacenter may be down (for any reason — maintenance, energy
/// saving, failures) at once.
///
/// Not from the paper's evaluation; included to demonstrate the
/// "extensible set of network-wide invariants" (§1): operators add
/// policies by implementing [`Invariant`], and the checker enforces them
/// uniformly across all applications.
pub struct MaintenanceBudgetInvariant {
    /// The datacenter this instance guards.
    pub datacenter: DatacenterId,
    /// Maximum devices simultaneously down.
    pub max_down_devices: usize,
}

impl MaintenanceBudgetInvariant {
    /// Guard `datacenter` with a budget of `max_down_devices`.
    pub fn new(datacenter: impl Into<DatacenterId>, max_down_devices: usize) -> Self {
        MaintenanceBudgetInvariant {
            datacenter: datacenter.into(),
            max_down_devices,
        }
    }
}

impl Invariant for MaintenanceBudgetInvariant {
    fn name(&self) -> &str {
        "maintenance-budget"
    }

    fn affected_by(&self, radius: &crate::deps::BlastRadius) -> bool {
        radius.affects_dc(&self.datacenter)
    }

    fn check(&self, ctx: &InvariantContext<'_>) -> Result<(), Violation> {
        let down = ctx
            .graph
            .nodes()
            .filter(|(_, n)| n.datacenter == self.datacenter && !ctx.projected.device_up(&n.name))
            .count();
        if down > self.max_down_devices {
            Err(Violation {
                invariant: self.name().to_string(),
                reason: format!(
                    "{down} devices would be down in {} (budget {})",
                    self.datacenter, self.max_down_devices
                ),
            })
        } else {
            Ok(())
        }
    }
}

/// Every datacenter pair must keep at least `min_links` usable WAN links.
pub struct WanLinkInvariant {
    /// Minimum usable links per DC pair.
    pub min_links: usize,
}

impl WanLinkInvariant {
    /// Require at least one usable WAN link per DC pair.
    pub fn new(min_links: usize) -> Self {
        WanLinkInvariant { min_links }
    }
}

impl Invariant for WanLinkInvariant {
    fn name(&self) -> &str {
        "wan-links"
    }

    fn affected_by(&self, radius: &crate::deps::BlastRadius) -> bool {
        radius.affects_wan()
    }

    fn check(&self, ctx: &InvariantContext<'_>) -> Result<(), Violation> {
        use std::collections::HashMap;
        // Count usable WAN links per unordered DC pair.
        let mut usable: HashMap<(DatacenterId, DatacenterId), usize> = HashMap::new();
        let mut total: HashMap<(DatacenterId, DatacenterId), usize> = HashMap::new();
        for (_, e) in ctx.graph.edges() {
            if !e.datacenter.is_wan() {
                continue;
            }
            let da = ctx.graph.node(e.a).datacenter.clone();
            let db = ctx.graph.node(e.b).datacenter.clone();
            let key = if da <= db { (da, db) } else { (db, da) };
            *total.entry(key.clone()).or_insert(0) += 1;
            if ctx.projected.link_usable(&e.name) {
                *usable.entry(key).or_insert(0) += 1;
            }
        }
        for (pair, n) in total {
            let u = usable.get(&pair).copied().unwrap_or(0);
            if u < self.min_links.min(n) {
                return Err(Violation {
                    invariant: self.name().to_string(),
                    reason: format!(
                        "DC pair {}–{} would keep {}/{} usable WAN links (< {})",
                        pair.0, pair.1, u, n, self.min_links
                    ),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use statesman_topology::{DcnSpec, DeploymentSpec, WanSpec};
    use statesman_types::{DeviceName, LinkName};

    fn ctx<'a>(graph: &'a NetworkGraph, projected: &'a HealthView) -> InvariantContext<'a> {
        InvariantContext {
            graph,
            projected,
            touched_pods: None,
        }
    }

    #[test]
    fn connectivity_ok_when_healthy() {
        let g = DcnSpec::tiny("dc1").build();
        let h = HealthView::all_up();
        let inv = ConnectivityInvariant::new("dc1");
        assert!(inv.check(&ctx(&g, &h)).is_ok());
    }

    #[test]
    fn connectivity_catches_fig2_disaster() {
        let g = DcnSpec::tiny("dc1").build();
        let mut h = HealthView::all_up();
        // Both Aggs of pod 1 down → pod-1 ToRs cut off.
        h.set_device_down(DeviceName::new("agg-1-1"));
        h.set_device_down(DeviceName::new("agg-1-2"));
        let inv = ConnectivityInvariant::new("dc1");
        let v = inv.check(&ctx(&g, &h)).unwrap_err();
        assert!(v.reason.contains("disconnected"), "{}", v.reason);
    }

    #[test]
    fn connectivity_ignores_powered_off_tors() {
        let g = DcnSpec::tiny("dc1").build();
        let mut h = HealthView::all_up();
        // The ToR itself is down (maintenance): that is not a violation.
        h.set_device_down(DeviceName::new("tor-1-1"));
        let inv = ConnectivityInvariant::new("dc1");
        assert!(inv.check(&ctx(&g, &h)).is_ok());
    }

    #[test]
    fn capacity_invariant_paper_scenario() {
        let g = DcnSpec::fig7("dc1").build();
        let inv = TorPairCapacityInvariant::paper_default(&g, "dc1", Some(1));
        assert_eq!(inv.pair_count(), 90);

        // 2 of 4 Aggs down in one pod: exactly 50% — allowed.
        let mut h = HealthView::all_up();
        h.set_device_down(DeviceName::new("agg-1-1"));
        h.set_device_down(DeviceName::new("agg-1-2"));
        assert!(inv.check(&ctx(&g, &h)).is_ok());

        // 3 of 4 down: 25% — violated.
        h.set_device_down(DeviceName::new("agg-1-3"));
        let v = inv.check(&ctx(&g, &h)).unwrap_err();
        assert_eq!(v.invariant, "tor-pair-capacity");
    }

    #[test]
    fn capacity_invariant_fig8_pod4_case() {
        // Link ToR1-Agg1 down (failure mitigation) → pod-4 pairs at 75%.
        // One more Agg down → 50%, allowed; two more → violated.
        let g = DcnSpec::fig7("dc1").build();
        let inv = TorPairCapacityInvariant::paper_default(&g, "dc1", Some(1));
        let mut h = HealthView::all_up();
        h.set_link_down(LinkName::between("tor-4-1", "agg-4-1"));
        assert!(inv.check(&ctx(&g, &h)).is_ok());

        // Upgrading Agg1 (whose ToR link is already dead) changes nothing.
        h.set_device_down(DeviceName::new("agg-4-1"));
        assert!(inv.check(&ctx(&g, &h)).is_ok());

        // Agg2 in parallel: pairs drop to 50% — still allowed.
        h.set_device_down(DeviceName::new("agg-4-2"));
        assert!(inv.check(&ctx(&g, &h)).is_ok());

        // Agg3 too: 25% — violated. This is why the checker serializes
        // pod-4 upgrades in box E of Fig 8.
        h.set_device_down(DeviceName::new("agg-4-3"));
        assert!(inv.check(&ctx(&g, &h)).is_err());
    }

    #[test]
    fn capacity_incremental_path_matches_full() {
        let g = DcnSpec::fig7("dc1").build();
        let inv = TorPairCapacityInvariant::paper_default(&g, "dc1", Some(1));
        // Seed the cache with a full evaluation.
        let h0 = HealthView::all_up();
        assert!(inv.check(&ctx(&g, &h0)).is_ok());

        let mut h = HealthView::all_up();
        h.set_device_down(DeviceName::new("agg-2-1"));
        h.set_device_down(DeviceName::new("agg-2-2"));
        h.set_device_down(DeviceName::new("agg-2-3"));
        let mut touched = HashSet::new();
        touched.insert((DatacenterId::new("dc1"), 2u32));
        let c = InvariantContext {
            graph: &g,
            projected: &h,
            touched_pods: Some(&touched),
        };
        assert!(
            inv.check(&c).is_err(),
            "incremental path sees the violation"
        );
    }

    #[test]
    fn maintenance_budget_caps_concurrent_downs() {
        let g = DcnSpec::fig7("dc1").build();
        let inv = MaintenanceBudgetInvariant::new("dc1", 2);
        let mut h = HealthView::all_up();
        h.set_device_down(DeviceName::new("agg-1-1"));
        h.set_device_down(DeviceName::new("agg-5-1"));
        assert!(inv.check(&ctx(&g, &h)).is_ok());
        h.set_device_down(DeviceName::new("agg-9-1"));
        let v = inv.check(&ctx(&g, &h)).unwrap_err();
        assert!(v.reason.contains("budget"), "{}", v.reason);
    }

    #[test]
    fn maintenance_budget_scoped_per_datacenter() {
        // Downs in another DC don't count against this DC's budget.
        let dep = DeploymentSpec {
            dcns: vec![DcnSpec::tiny("dc1"), DcnSpec::tiny("dc2")],
            wan: None,
            br_core_mbps: 100_000.0,
        };
        let g = dep.build();
        let inv = MaintenanceBudgetInvariant::new("dc1", 1);
        let mut h = HealthView::all_up();
        h.set_device_down(DeviceName::new("dc2.agg-1-1"));
        h.set_device_down(DeviceName::new("dc2.agg-1-2"));
        h.set_device_down(DeviceName::new("dc1.agg-1-1"));
        assert!(inv.check(&ctx(&g, &h)).is_ok());
        h.set_device_down(DeviceName::new("dc1.agg-2-1"));
        assert!(inv.check(&ctx(&g, &h)).is_err());
    }

    #[test]
    fn wan_invariant_allows_one_plane_down() {
        let g = WanSpec::fig9().build();
        let mut h = HealthView::all_up();
        h.set_device_down(DeviceName::new("br-1"));
        let inv = WanLinkInvariant::new(1);
        assert!(inv.check(&ctx(&g, &h)).is_ok());
    }

    #[test]
    fn wan_invariant_blocks_total_dc_pair_cut() {
        let g = WanSpec::fig9().build();
        let mut h = HealthView::all_up();
        // Both BRs of DC1 down: every DC1–* pair loses all links.
        h.set_device_down(DeviceName::new("br-1"));
        h.set_device_down(DeviceName::new("br-2"));
        let inv = WanLinkInvariant::new(1);
        let v = inv.check(&ctx(&g, &h)).unwrap_err();
        assert!(v.reason.contains("dc1"), "{}", v.reason);
    }

    #[test]
    fn wan_invariant_ignores_intra_dc_links() {
        let dep = DeploymentSpec {
            dcns: vec![DcnSpec::tiny("dc1"), DcnSpec::tiny("dc2")],
            wan: Some(WanSpec {
                dc_names: vec!["dc1".into(), "dc2".into()],
                border_routers_per_dc: 2,
                wan_link_mbps: 100_000.0,
            }),
            br_core_mbps: 100_000.0,
        };
        let g = dep.build();
        let mut h = HealthView::all_up();
        // Take down an intra-DC link: irrelevant to the WAN invariant.
        h.set_link_down(LinkName::between("dc1.tor-1-1", "dc1.agg-1-1"));
        let inv = WanLinkInvariant::new(1);
        assert!(inv.check(&ctx(&g, &h)).is_ok());
    }
}
