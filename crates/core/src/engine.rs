//! Deterministic fork-join worker pool for the round engine.
//!
//! Every *pure* stage of the round (command rendering, invariant
//! evaluation, partition diffing, health projection) may fan out across
//! this pool; every *effectful* stage (command issue, RNG draws, sim
//! clock stepping, storage submits) stays single-threaded. The pool
//! guarantees that for a pure `f`, `run(items, f)` returns exactly
//! `items.iter().enumerate().map(f).collect()` regardless of worker
//! count: items are partitioned by stride, each worker tags results
//! with the item index, and the merge reorders by index. No
//! work-stealing, no shared mutable state, no scheduling dependence.
//!
//! Worker count resolution (first match wins):
//! 1. explicit `WorkerPool::new(n)` with `n >= 1`
//! 2. `STATESMAN_WORKER_THREADS` env var
//! 3. `std::thread::available_parallelism()`

/// Fixed-size deterministic fork-join pool. Cheap to construct (holds
/// only the thread count); threads are scoped per `run` call so the
/// pool is trivially `Send + Sync` and never leaks OS threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPool {
    threads: usize,
}

/// Resolve the default worker count: `STATESMAN_WORKER_THREADS` if set
/// and parseable, else the host's available parallelism, else 1.
pub fn default_worker_threads() -> usize {
    statesman_topology::par::worker_threads()
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool::new(default_worker_threads())
    }
}

impl WorkerPool {
    /// A pool with exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            threads: threads.max(1),
        }
    }

    /// A serial pool: `run` degenerates to a plain map on the caller's
    /// thread. Useful as the bit-equality reference in tests.
    pub fn serial() -> Self {
        WorkerPool::new(1)
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Map `f` over `items`, returning results in item order.
    ///
    /// `f` must be pure (its output a function of the index and item
    /// alone) for the determinism guarantee to mean anything; the pool
    /// only guarantees *ordering*, purity is the caller's contract.
    pub fn run<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let workers = self.threads.min(items.len());
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let mut tagged: Vec<(usize, R)> = Vec::with_capacity(items.len());
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let f = &f;
                handles.push(scope.spawn(move || {
                    let mut out = Vec::with_capacity(items.len() / workers + 1);
                    let mut i = w;
                    while i < items.len() {
                        out.push((i, f(i, &items[i])));
                        i += workers;
                    }
                    out
                }));
            }
            for h in handles {
                tagged.extend(h.join().expect("worker panicked"));
            }
        });
        tagged.sort_by_key(|(i, _)| *i);
        tagged.into_iter().map(|(_, r)| r).collect()
    }

    /// Like `run`, but each worker processes one *contiguous* chunk of
    /// `items` and `f` receives the whole chunk plus its starting
    /// offset. Use when per-item dispatch is too fine-grained; the
    /// chunk boundaries depend only on `items.len()` and the thread
    /// count, never on timing.
    pub fn run_chunked<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        let workers = self.threads.min(items.len()).max(1);
        if workers <= 1 {
            if items.is_empty() {
                return Vec::new();
            }
            return vec![f(0, items)];
        }
        let chunk = items.len().div_ceil(workers);
        let chunks: Vec<(usize, &[T])> = items
            .chunks(chunk)
            .enumerate()
            .map(|(ci, c)| (ci * chunk, c))
            .collect();
        let mut tagged: Vec<(usize, R)> = Vec::with_capacity(chunks.len());
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(chunks.len());
            for (ci, (off, c)) in chunks.iter().enumerate() {
                let f = &f;
                let off = *off;
                let c = *c;
                handles.push(scope.spawn(move || (ci, f(off, c))));
            }
            for h in handles {
                tagged.push(h.join().expect("worker panicked"));
            }
        });
        tagged.sort_by_key(|(i, _)| *i);
        tagged.into_iter().map(|(_, r)| r).collect()
    }
}

/// Evaluate a list of invariants against one context and return the
/// first violation **in invariant order** — bit-identical to the serial
/// loop `for inv in invariants { if let Err(v) = inv.check(ctx) { return
/// Some(v) } }`, but with order-insensitive (pure) invariants fanned out
/// across `pool`.
///
/// Order-sensitive invariants (those whose `check` mutates caches that
/// later checks observe) are evaluated serially, in order, and *only*
/// when no earlier-indexed invariant has already failed — exactly the
/// set of evaluations the serial loop performs, so their cache
/// trajectories are preserved. Pure invariants may be evaluated
/// speculatively past the first failure; by definition that is
/// unobservable.
pub fn first_violation(
    pool: &WorkerPool,
    invariants: &[&dyn crate::invariants::Invariant],
    ctx: &crate::invariants::InvariantContext<'_>,
) -> Option<crate::invariants::Violation> {
    if invariants.is_empty() {
        return None;
    }
    let pure_idx: Vec<usize> = (0..invariants.len())
        .filter(|&i| !invariants[i].order_sensitive())
        .collect();
    let mut first: Option<(usize, crate::invariants::Violation)> = None;
    fn note(
        first: &mut Option<(usize, crate::invariants::Violation)>,
        i: usize,
        v: crate::invariants::Violation,
    ) {
        if first.as_ref().map(|(fi, _)| i < *fi).unwrap_or(true) {
            *first = Some((i, v));
        }
    }
    if pure_idx.len() == invariants.len() && pool.threads() <= 1 {
        // All pure, one thread: plain serial loop with early exit.
        for (i, inv) in invariants.iter().enumerate() {
            if let Err(v) = inv.check(ctx) {
                return Some(v);
            }
            let _ = i;
        }
        return None;
    }
    let pure_errs = pool.run(&pure_idx, |_, &i| invariants[i].check(ctx).err());
    for (&i, err) in pure_idx.iter().zip(pure_errs) {
        if let Some(v) = err {
            note(&mut first, i, v);
        }
    }
    for (i, inv) in invariants.iter().enumerate() {
        if !inv.order_sensitive() {
            continue;
        }
        // The serial loop evaluates invariant i iff none of 0..i failed.
        if first.as_ref().map(|(fi, _)| *fi < i).unwrap_or(false) {
            continue;
        }
        if let Err(v) = inv.check(ctx) {
            note(&mut first, i, v);
        }
    }
    first.map(|(_, v)| v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_preserves_item_order_across_thread_counts() {
        let items: Vec<u64> = (0..257).collect();
        let reference: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let pool = WorkerPool::new(threads);
            let got = pool.run(&items, |_, x| x * 3 + 1);
            assert_eq!(got, reference, "threads={threads}");
        }
    }

    #[test]
    fn run_chunked_covers_all_items_in_order() {
        let items: Vec<usize> = (0..1000).collect();
        for threads in [1, 2, 7, 16] {
            let pool = WorkerPool::new(threads);
            let parts = pool.run_chunked(&items, |off, chunk| {
                chunk
                    .iter()
                    .enumerate()
                    .map(|(i, x)| (off + i, *x))
                    .collect::<Vec<_>>()
            });
            let flat: Vec<(usize, usize)> = parts.into_iter().flatten().collect();
            assert_eq!(flat.len(), items.len());
            for (pos, (off, val)) in flat.iter().enumerate() {
                assert_eq!(pos, *off, "threads={threads}");
                assert_eq!(pos, *val, "threads={threads}");
            }
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let pool = WorkerPool::new(8);
        let empty: Vec<u8> = vec![];
        assert!(pool.run(&empty, |_, x| *x).is_empty());
        assert!(pool.run_chunked(&empty, |_, c: &[u8]| c.len()).is_empty());
        assert_eq!(pool.run(&[42u8], |_, x| *x), vec![42]);
    }
}
