//! Impact groups: partitioning checker responsibility.
//!
//! "Partitioning checker's responsibility into impact groups: one impact
//! group per DC, and one additional impact group with border routers of
//! all DCs and the WAN links" (slides / §5). Proposed changes inside one
//! group cannot violate invariants scoped to another, so checkers run
//! independently per group — the scaling lever the `impact_groups`
//! ablation bench measures.

use statesman_types::{DatacenterId, EntityName};

/// One checker's scope.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ImpactGroup {
    /// All entities homed in one datacenter.
    Datacenter(DatacenterId),
    /// Border routers of all DCs plus inter-DC links (entities homed in
    /// the WAN pseudo-datacenter, plus every border router).
    Wan,
    /// Every entity everywhere — the unpartitioned alternative the paper
    /// rejects (one checker over the whole fleet). Kept for the
    /// `impact_groups` ablation; never part of
    /// [`ImpactGroup::standard_partitioning`].
    Global,
}

impl ImpactGroup {
    /// The storage partition this group's entities live in. Border routers
    /// are *homed* in their DC partition but *checked* by the WAN group;
    /// [`ImpactGroup::contains`] captures that asymmetry.
    pub fn primary_partition(&self) -> DatacenterId {
        match self {
            ImpactGroup::Datacenter(dc) => dc.clone(),
            ImpactGroup::Wan | ImpactGroup::Global => DatacenterId::wan(),
        }
    }

    /// Whether this group is responsible for an entity.
    pub fn contains(&self, entity: &EntityName) -> bool {
        let is_border_device = entity
            .as_device()
            .and_then(|d| d.role())
            .map(|r| r == statesman_types::DeviceRole::Border)
            .unwrap_or(false);
        match self {
            ImpactGroup::Global => true,
            ImpactGroup::Wan => entity.datacenter.is_wan() || is_border_device,
            ImpactGroup::Datacenter(dc) => {
                &entity.datacenter == dc && !is_border_device && !entity.datacenter.is_wan()
            }
        }
    }

    /// Human-readable name (used in reports).
    pub fn name(&self) -> String {
        match self {
            ImpactGroup::Datacenter(dc) => format!("dc:{dc}"),
            ImpactGroup::Wan => "wan".to_string(),
            ImpactGroup::Global => "global".to_string(),
        }
    }

    /// The standard partitioning for a deployment: one group per DC plus
    /// the WAN group.
    pub fn standard_partitioning(dcs: impl IntoIterator<Item = DatacenterId>) -> Vec<ImpactGroup> {
        let mut groups: Vec<ImpactGroup> = dcs.into_iter().map(ImpactGroup::Datacenter).collect();
        groups.push(ImpactGroup::Wan);
        groups
    }
}

impl std::fmt::Display for ImpactGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_group_owns_fabric_devices() {
        let g = ImpactGroup::Datacenter(DatacenterId::new("dc1"));
        assert!(g.contains(&EntityName::device("dc1", "agg-1-1")));
        assert!(g.contains(&EntityName::link("dc1", "tor-1-1", "agg-1-1")));
        assert!(!g.contains(&EntityName::device("dc2", "agg-1-1")));
    }

    #[test]
    fn wan_group_owns_border_routers_and_wan_links() {
        let wan = ImpactGroup::Wan;
        // Border routers are homed in their DC but checked by the WAN group.
        assert!(wan.contains(&EntityName::device("dc1", "br-1")));
        assert!(wan.contains(&EntityName::link("wan", "br-1", "br-3")));
        assert!(!wan.contains(&EntityName::device("dc1", "agg-1-1")));

        let dc = ImpactGroup::Datacenter(DatacenterId::new("dc1"));
        assert!(!dc.contains(&EntityName::device("dc1", "br-1")));
    }

    #[test]
    fn standard_partitioning_has_wan_group() {
        let groups = ImpactGroup::standard_partitioning([
            DatacenterId::new("dc1"),
            DatacenterId::new("dc2"),
        ]);
        assert_eq!(groups.len(), 3);
        assert!(groups.contains(&ImpactGroup::Wan));
    }

    #[test]
    fn partitions_are_disjoint() {
        let groups = ImpactGroup::standard_partitioning([
            DatacenterId::new("dc1"),
            DatacenterId::new("dc2"),
        ]);
        let entities = [
            EntityName::device("dc1", "agg-1-1"),
            EntityName::device("dc1", "br-1"),
            EntityName::link("wan", "br-1", "br-3"),
            EntityName::device("dc2", "tor-1-1"),
        ];
        for e in &entities {
            let owners = groups.iter().filter(|g| g.contains(e)).count();
            assert_eq!(owners, 1, "{e} owned by {owners} groups");
        }
    }

    #[test]
    fn global_group_contains_everything() {
        let g = ImpactGroup::Global;
        assert!(g.contains(&EntityName::device("dc1", "agg-1-1")));
        assert!(g.contains(&EntityName::device("dc1", "br-1")));
        assert!(g.contains(&EntityName::link("wan", "br-1", "br-3")));
        assert!(g.contains(&EntityName::path("dc9", "p")));
        assert!(
            !ImpactGroup::standard_partitioning([DatacenterId::new("dc1")])
                .contains(&ImpactGroup::Global)
        );
    }

    #[test]
    fn primary_partitions() {
        assert_eq!(
            ImpactGroup::Datacenter(DatacenterId::new("dc1")).primary_partition(),
            DatacenterId::new("dc1")
        );
        assert!(ImpactGroup::Wan.primary_partition().is_wan());
    }
}
