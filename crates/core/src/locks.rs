//! Priority-lock arbitration (paper §4.2, §7.3).
//!
//! Locks are ordinary replicated rows (`Attribute::EntityLock`) living in
//! the **target state**: acquisition and release are proposals like any
//! other, arbitrated by the checker during the merge. Holding a lock on an
//! entity gives exclusive write access to that entity's state variables;
//! a high-priority request preempts a live low-priority lock (which is how
//! switch-upgrade evicts TE from a border router in Fig 10).
//!
//! This module is pure arbitration logic over state views — the checker
//! owns the storage round-trips.

use crate::view::StateView;
use statesman_types::{
    AppId, Attribute, EntityName, LockPriority, LockRecord, SimTime, StateKey, Value,
};

/// The decision for one lock-affecting proposal.
#[derive(Debug, Clone, PartialEq)]
pub enum LockDecision {
    /// The proposal may proceed (and, for acquisitions, the new record to
    /// store).
    Granted(Option<LockRecord>),
    /// Refused; the current holder wins.
    Refused {
        /// Who holds the lock.
        holder: AppId,
        /// Detail for the receipt.
        reason: String,
    },
}

/// The live lock on an entity, if any (expired leases count as absent).
pub fn current_lock(view: &dyn StateView, entity: &EntityName, now: SimTime) -> Option<LockRecord> {
    let key = StateKey::new(entity.clone(), Attribute::EntityLock);
    let rec = view.get(&key)?.value.as_lock()?.clone();
    if rec.is_expired(now) {
        None
    } else {
        Some(rec)
    }
}

/// Arbitrate a lock acquisition/release proposal.
///
/// * `Value::Lock(rec)` — acquire/refresh at `rec.priority`;
/// * `Value::None` — release (only the holder may release).
pub fn arbitrate_lock_write(
    view: &dyn StateView,
    entity: &EntityName,
    proposer: &AppId,
    proposed: &Value,
    now: SimTime,
) -> LockDecision {
    let existing = current_lock(view, entity, now);
    match proposed {
        Value::None => match existing {
            None => LockDecision::Granted(None),
            Some(rec) if &rec.holder == proposer => LockDecision::Granted(None),
            Some(rec) => LockDecision::Refused {
                holder: rec.holder.clone(),
                reason: format!("{} holds the lock; only the holder may release", rec.holder),
            },
        },
        Value::Lock(requested) => {
            if &requested.holder != proposer {
                return LockDecision::Refused {
                    holder: requested.holder.clone(),
                    reason: "lock holder must be the proposing application".into(),
                };
            }
            match existing {
                None => LockDecision::Granted(Some(requested.clone())),
                Some(rec) => {
                    if rec.grants_acquisition(proposer, requested.priority, now) {
                        LockDecision::Granted(Some(requested.clone()))
                    } else {
                        LockDecision::Refused {
                            holder: rec.holder.clone(),
                            reason: format!(
                                "{} holds a {} lock; {} request refused",
                                rec.holder, rec.priority, requested.priority
                            ),
                        }
                    }
                }
            }
        }
        _ => LockDecision::Refused {
            holder: proposer.clone(),
            reason: "lock rows must carry Lock or None values".into(),
        },
    }
}

/// Gate an ordinary (non-lock) write against the entity's lock: a live
/// lock held by someone else blocks the write.
pub fn gate_write(
    view: &dyn StateView,
    entity: &EntityName,
    proposer: &AppId,
    now: SimTime,
) -> Result<(), (AppId, String)> {
    match current_lock(view, entity, now) {
        Some(rec) if &rec.holder != proposer => Err((
            rec.holder.clone(),
            format!("{} holds a {} lock on {}", rec.holder, rec.priority, entity),
        )),
        _ => Ok(()),
    }
}

/// Build a lock-acquisition value.
pub fn lock_value(
    holder: &AppId,
    priority: LockPriority,
    now: SimTime,
    lease: Option<SimTime>,
) -> Value {
    Value::Lock(LockRecord::new(holder.clone(), priority, now, lease))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::MapView;
    use statesman_types::{NetworkState, SimDuration};

    fn te() -> AppId {
        AppId::new("inter-dc-te")
    }
    fn upg() -> AppId {
        AppId::new("switch-upgrade")
    }
    fn br1() -> EntityName {
        EntityName::device("dc1", "br-1")
    }

    fn view_with_lock(holder: &AppId, prio: LockPriority, at: SimTime) -> MapView {
        MapView::from_rows([NetworkState::new(
            br1(),
            Attribute::EntityLock,
            lock_value(holder, prio, at, None),
            at,
            holder.clone(),
        )])
    }

    #[test]
    fn unlocked_entity_grants_anyone() {
        let v = MapView::new();
        let d = arbitrate_lock_write(
            &v,
            &br1(),
            &te(),
            &lock_value(&te(), LockPriority::Low, SimTime::ZERO, None),
            SimTime::ZERO,
        );
        assert!(matches!(d, LockDecision::Granted(Some(_))));
        assert!(gate_write(&v, &br1(), &te(), SimTime::ZERO).is_ok());
    }

    #[test]
    fn fig10_lock_dance() {
        let now = SimTime::from_mins(5);
        // A: upgrade takes the high-priority lock over TE's low lock.
        let v = view_with_lock(&te(), LockPriority::Low, SimTime::ZERO);
        let d = arbitrate_lock_write(
            &v,
            &br1(),
            &upg(),
            &lock_value(&upg(), LockPriority::High, now, None),
            now,
        );
        assert!(matches!(d, LockDecision::Granted(Some(_))));

        // B: TE fails to (re-)acquire its low lock.
        let v = view_with_lock(&upg(), LockPriority::High, now);
        let d = arbitrate_lock_write(
            &v,
            &br1(),
            &te(),
            &lock_value(&te(), LockPriority::Low, now, None),
            now,
        );
        match d {
            LockDecision::Refused { holder, .. } => assert_eq!(holder, upg()),
            other => panic!("expected refusal, got {other:?}"),
        }
        // ...and TE's forwarding-state writes on BR1 are gated too.
        assert!(gate_write(&v, &br1(), &te(), now).is_err());
        // The lock holder's own writes pass.
        assert!(gate_write(&v, &br1(), &upg(), now).is_ok());
    }

    #[test]
    fn holder_releases_then_other_acquires() {
        let now = SimTime::from_mins(30);
        let v = view_with_lock(&upg(), LockPriority::High, SimTime::ZERO);
        // D: upgrade releases.
        let d = arbitrate_lock_write(&v, &br1(), &upg(), &Value::None, now);
        assert_eq!(d, LockDecision::Granted(None));
        // Non-holder cannot release.
        let d = arbitrate_lock_write(&v, &br1(), &te(), &Value::None, now);
        assert!(matches!(d, LockDecision::Refused { .. }));
    }

    #[test]
    fn expired_lease_frees_the_entity() {
        let expiry = SimTime::from_mins(10);
        let v = MapView::from_rows([NetworkState::new(
            br1(),
            Attribute::EntityLock,
            lock_value(&upg(), LockPriority::High, SimTime::ZERO, Some(expiry)),
            SimTime::ZERO,
            upg(),
        )]);
        let before = expiry + SimDuration::ZERO;
        assert!(current_lock(&v, &br1(), SimTime::from_mins(9)).is_some());
        assert!(current_lock(&v, &br1(), before).is_none());
        assert!(gate_write(&v, &br1(), &te(), before).is_ok());
    }

    #[test]
    fn cannot_acquire_on_behalf_of_another() {
        let v = MapView::new();
        let d = arbitrate_lock_write(
            &v,
            &br1(),
            &te(),
            &lock_value(&upg(), LockPriority::Low, SimTime::ZERO, None),
            SimTime::ZERO,
        );
        assert!(matches!(d, LockDecision::Refused { .. }));
    }

    #[test]
    fn malformed_lock_values_refused() {
        let v = MapView::new();
        let d = arbitrate_lock_write(&v, &br1(), &te(), &Value::Int(1), SimTime::ZERO);
        assert!(matches!(d, LockDecision::Refused { .. }));
    }

    #[test]
    fn holder_refresh_and_escalation() {
        let v = view_with_lock(&te(), LockPriority::Low, SimTime::ZERO);
        let d = arbitrate_lock_write(
            &v,
            &br1(),
            &te(),
            &lock_value(&te(), LockPriority::High, SimTime::from_mins(1), None),
            SimTime::from_mins(1),
        );
        assert!(matches!(d, LockDecision::Granted(Some(r)) if r.priority == LockPriority::High));
    }
}
