//! The application-facing client (paper §2, §6.4).
//!
//! Applications never touch devices: they *pull* the observed state, run
//! their logic, *push* a proposed state, and later poll acceptance or
//! rejection receipts — reacting by re-reading the OS and re-proposing
//! (§7.1: "they need to run iteratively to adapt to the latest OS and the
//! acceptance or rejection of their previous PSes").

use crate::locks::lock_value;
use statesman_net::SimClock;
use statesman_storage::{ReadRequest, StorageService, WriteRequest};
use statesman_types::{
    AppId, Attribute, DatacenterId, EntityName, Freshness, LockPriority, NetworkState, Pool,
    SimTime, StateDelta, StateKey, StateResult, Value, Version, WriteReceipt,
};

/// A Statesman client bound to one application identity.
#[derive(Clone)]
pub struct StatesmanClient {
    app: AppId,
    storage: StorageService,
    clock: SimClock,
}

impl StatesmanClient {
    /// Bind a client for `app`.
    pub fn new(app: impl Into<AppId>, storage: StorageService, clock: SimClock) -> Self {
        StatesmanClient {
            app: app.into(),
            storage,
            clock,
        }
    }

    /// This client's application id.
    pub fn app(&self) -> &AppId {
        &self.app
    }

    /// Current simulated time (for stamping proposals).
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Read the full observed state of one datacenter at the chosen
    /// freshness.
    pub fn read_os(
        &self,
        dc: &DatacenterId,
        freshness: Freshness,
    ) -> StateResult<Vec<NetworkState>> {
        self.storage.read(ReadRequest {
            datacenter: dc.clone(),
            pool: Pool::Observed,
            freshness,
            entity: None,
            attribute: None,
        })
    }

    /// Read the observed-state changes of one datacenter since a
    /// previously returned watermark (§6.4's bounded-stale pull, but
    /// incremental). Pass [`Version::GENESIS`] on the first call; feed
    /// the returned `watermark` back in on the next. When the change
    /// index no longer covers `since`, the reply is a full snapshot
    /// (`delta.snapshot == true`) — apply it the same way.
    pub fn read_os_since(&self, dc: &DatacenterId, since: Version) -> StateResult<StateDelta> {
        self.storage.read_since(dc, &Pool::Observed, since)
    }

    /// Read one observed variable (always up-to-date).
    pub fn read_os_value(
        &self,
        entity: &EntityName,
        attribute: Attribute,
    ) -> StateResult<Option<Value>> {
        Ok(self
            .storage
            .read_row(&Pool::Observed, &StateKey::new(entity.clone(), attribute))?
            .map(|r| r.value))
    }

    /// Read one target-state variable (e.g. to see whether an accepted
    /// change is still pending).
    pub fn read_ts_value(
        &self,
        entity: &EntityName,
        attribute: Attribute,
    ) -> StateResult<Option<Value>> {
        Ok(self
            .storage
            .read_row(&Pool::Target, &StateKey::new(entity.clone(), attribute))?
            .map(|r| r.value))
    }

    /// Propose values (one PS write; rows are stamped with the current
    /// time and this client's identity).
    pub fn propose(
        &self,
        changes: impl IntoIterator<Item = (EntityName, Attribute, Value)>,
    ) -> StateResult<()> {
        let now = self.clock.now();
        let rows: Vec<NetworkState> = changes
            .into_iter()
            .map(|(e, a, v)| NetworkState::new(e, a, v, now, self.app.clone()))
            .collect();
        if rows.is_empty() {
            return Ok(());
        }
        self.storage.write(WriteRequest {
            pool: Pool::Proposed(self.app.clone()),
            rows,
        })
    }

    /// Poll (and consume) this application's receipts across all
    /// partitions.
    pub fn take_receipts(&self) -> StateResult<Vec<WriteReceipt>> {
        let mut all = Vec::new();
        for dc in self.storage.partitions() {
            all.extend(self.storage.take_receipts(&dc, &self.app)?);
        }
        all.sort_by(|a, b| {
            a.decided_at
                .cmp(&b.decided_at)
                .then_with(|| a.key.cmp(&b.key))
        });
        Ok(all)
    }

    /// Propose acquiring (or refreshing) a lock on an entity.
    pub fn acquire_lock(
        &self,
        entity: &EntityName,
        priority: LockPriority,
        lease: Option<SimTime>,
    ) -> StateResult<()> {
        let v = lock_value(&self.app, priority, self.clock.now(), lease);
        self.propose([(entity.clone(), Attribute::EntityLock, v)])
    }

    /// Propose releasing a lock.
    pub fn release_lock(&self, entity: &EntityName) -> StateResult<()> {
        self.propose([(entity.clone(), Attribute::EntityLock, Value::None)])
    }

    /// Whether this client currently holds the lock on an entity (reads
    /// the TS).
    pub fn holds_lock(&self, entity: &EntityName) -> StateResult<bool> {
        let v = self.read_ts_value(entity, Attribute::EntityLock)?;
        Ok(v.and_then(|v| v.as_lock().cloned())
            .map(|l| l.holder == self.app && !l.is_expired(self.clock.now()))
            .unwrap_or(false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{Checker, CheckerConfig, MergePolicy};
    use crate::groups::ImpactGroup;
    use statesman_net::SimClock;
    use statesman_topology::DcnSpec;

    fn setup() -> (StorageService, SimClock, Checker) {
        let clock = SimClock::new();
        let graph = DcnSpec::tiny("dc1").build();
        let storage = StorageService::single_dc("dc1", clock.clone());
        let checker = Checker::new(
            CheckerConfig {
                group: ImpactGroup::Datacenter(DatacenterId::new("dc1")),
                policy: MergePolicy::PriorityLock,
            },
            graph,
        );
        (storage, clock, checker)
    }

    #[test]
    fn propose_and_poll_receipts() {
        let (storage, clock, checker) = setup();
        let c = StatesmanClient::new("switch-upgrade", storage.clone(), clock.clone());
        c.propose([(
            EntityName::device("dc1", "agg-1-1"),
            Attribute::DeviceFirmwareVersion,
            Value::text("7.0"),
        )])
        .unwrap();
        checker.run_pass(&storage, clock.now()).unwrap();
        let receipts = c.take_receipts().unwrap();
        assert_eq!(receipts.len(), 1);
        assert!(receipts[0].outcome.is_accepted());
        assert_eq!(
            c.read_ts_value(
                &EntityName::device("dc1", "agg-1-1"),
                Attribute::DeviceFirmwareVersion
            )
            .unwrap(),
            Some(Value::text("7.0"))
        );
    }

    #[test]
    fn lock_lifecycle_through_client() {
        let (storage, clock, checker) = setup();
        let te = StatesmanClient::new("inter-dc-te", storage.clone(), clock.clone());
        let upg = StatesmanClient::new("switch-upgrade", storage.clone(), clock.clone());
        let br = EntityName::device("dc1", "agg-1-1");

        te.acquire_lock(&br, LockPriority::Low, None).unwrap();
        checker.run_pass(&storage, clock.now()).unwrap();
        assert!(te.holds_lock(&br).unwrap());
        assert!(!upg.holds_lock(&br).unwrap());

        // High priority preempts.
        upg.acquire_lock(&br, LockPriority::High, None).unwrap();
        checker.run_pass(&storage, clock.now()).unwrap();
        assert!(upg.holds_lock(&br).unwrap());
        assert!(!te.holds_lock(&br).unwrap());

        // TE fails to re-acquire while the high lock is live.
        te.acquire_lock(&br, LockPriority::Low, None).unwrap();
        checker.run_pass(&storage, clock.now()).unwrap();
        assert!(!te.holds_lock(&br).unwrap());
        let r = te.take_receipts().unwrap();
        assert!(r.iter().any(|x| x.outcome.is_rejected()));

        // Release; TE re-acquires.
        upg.release_lock(&br).unwrap();
        checker.run_pass(&storage, clock.now()).unwrap();
        te.acquire_lock(&br, LockPriority::Low, None).unwrap();
        checker.run_pass(&storage, clock.now()).unwrap();
        assert!(te.holds_lock(&br).unwrap());
    }

    #[test]
    fn read_os_since_tracks_the_observed_pool() {
        let (storage, clock, _checker) = setup();
        let c = StatesmanClient::new("app", storage.clone(), clock.clone());
        let dc = DatacenterId::new("dc1");
        let row = |name: &str, fw: &str| {
            NetworkState::new(
                EntityName::device("dc1", name),
                Attribute::DeviceFirmwareVersion,
                Value::text(fw),
                clock.now(),
                AppId::new("monitor"),
            )
        };
        storage
            .write(WriteRequest {
                pool: Pool::Observed,
                rows: vec![row("agg-1-1", "6.0"), row("agg-1-2", "6.0")],
            })
            .unwrap();

        let d0 = c.read_os_since(&dc, Version::GENESIS).unwrap();
        assert_eq!(d0.upserts.len(), 2);

        // Nothing new: the delta at the watermark is empty.
        let d1 = c.read_os_since(&dc, d0.watermark).unwrap();
        assert!(d1.is_empty());
        assert_eq!(d1.watermark, d0.watermark);

        // One more write: exactly one upsert since the last watermark.
        storage
            .write(WriteRequest {
                pool: Pool::Observed,
                rows: vec![row("agg-1-1", "7.0")],
            })
            .unwrap();
        let d2 = c.read_os_since(&dc, d1.watermark).unwrap();
        assert_eq!(d2.upserts.len(), 1);
        assert_eq!(d2.upserts[0].value, Value::text("7.0"));
        assert!(!d2.snapshot);
    }

    #[test]
    fn empty_proposals_are_noops() {
        let (storage, clock, _checker) = setup();
        let c = StatesmanClient::new("app", storage, clock);
        c.propose([]).unwrap();
        assert!(c.take_receipts().unwrap().is_empty());
    }
}
