//! The monitor: periodic collection of network state into the OS.
//!
//! Paper §3, §6.3: the monitor "periodically collects the current network
//! state from the switches and links, transforms it into OS variables, and
//! writes the variables to the storage service", shielding everyone else
//! from device heterogeneity. "We split the monitoring responsibility
//! across many monitor instances, so each instance covers roughly 1,000
//! switches."
//!
//! Protocol use mirrors the deployment: SNMP for power/firmware/config
//! state and counters on everything; OpenFlow collection for routing state
//! on OpenFlow models; the vendor CLI for the RIB of BGP routers. A device
//! that times out is handled the way network management systems do: the
//! monitor marks every incident link oper-down (its live peers corroborate
//! this), which is exactly the signal the checker's projection needs to
//! treat the device as unavailable.
//!
//! Rounds are *partial-tolerant*: no device failure aborts a round. A
//! failing device is quarantined for a cooldown — its OS rows go stale
//! and its links stay inferred-down — instead of being re-polled (and
//! re-timing-out) every round. After the cooldown one half-open probe
//! either clears the quarantine or renews it. Only storage write failures
//! abort a round; those are the coordinator's degraded-mode concern.

use parking_lot::Mutex;
use statesman_net::{DeviceModel, DeviceProtocol, OpenFlowSim, SimNetwork, SnmpSim, VendorCliSim};
use statesman_storage::{StorageService, WriteRequest};
use statesman_topology::NetworkGraph;
use statesman_types::{
    AppId, Attribute, DatacenterId, DeviceName, EntityName, NetworkState, Pool, SimDuration,
    SimTime, StateResult, Value, VarId,
};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::time::{Duration, Instant};

/// Modeled per-entity poll cost (SNMP walk + parse), milliseconds.
const POLL_MS: u64 = 50;
/// Concurrent polls per monitor instance.
const CONCURRENCY_PER_SHARD: u64 = 64;
/// Switches per monitor instance (§6.3: "roughly 1,000 switches").
pub const SHARD_SIZE: usize = 1_000;
/// Changed-row count above which a bootstrap round (empty diff base)
/// routes through the storage bulk-ingest path instead of chunked
/// steady-state writes. Matches the 50K chunk size: below it the
/// chunked path is a single WriteBatch per partition anyway, so the
/// switch only replaces rounds that would otherwise multi-chunk.
pub const BULK_SEED_THRESHOLD: usize = 50_000;
/// Default quarantine cooldown after a failed device poll.
pub const DEFAULT_QUARANTINE_COOLDOWN: SimDuration = SimDuration::from_mins(5);
/// Default full-resync cadence: every Nth round writes the whole OS view
/// regardless of the diff cache, healing any drift between the monitor's
/// memory of what it wrote and what storage actually holds.
pub const DEFAULT_RESYNC_EVERY: u64 = 16;

/// One collection round's outcome.
#[derive(Debug, Clone)]
pub struct MonitorReport {
    /// Devices successfully polled.
    pub devices_polled: usize,
    /// Devices that timed out (rebooting, powered off, broken).
    pub devices_unreachable: usize,
    /// Devices skipped this round because they are quarantined from an
    /// earlier failed poll (their links stay inferred-down; their other
    /// OS rows go stale).
    pub devices_quarantined: usize,
    /// Links reported (directly or inferred down).
    pub links_polled: usize,
    /// OS rows written.
    pub rows_written: usize,
    /// Polled rows *not* written because they match the monitor's last
    /// written value (the delta path; quiescent rounds suppress nearly
    /// everything).
    pub writes_suppressed: usize,
    /// Number of monitor instances (shards) this round used.
    pub shards: usize,
    /// Modeled wall time of the collection round in simulated terms
    /// (polls run concurrently within each shard).
    pub sim_io: SimDuration,
    /// Host wall-clock time of the round (compute only).
    pub elapsed: Duration,
    /// Wall time spent polling devices and links (including shard
    /// fan-in on the parallel path).
    pub stage_poll: Duration,
    /// Wall time spent deduplicating and diffing against the last
    /// written base.
    pub stage_diff: Duration,
    /// Wall time spent on storage writes and diff-base maintenance.
    pub stage_write: Duration,
    /// Stage breakdown of the bulk-ingest seed write, present only on
    /// rounds routed through [`StorageService::write_bulk`] (an empty
    /// diff base plus a seed-sized changed set — bootstrap).
    pub seed: Option<statesman_storage::SeedStats>,
}

/// The monitor over one simulated network.
pub struct Monitor {
    net: SimNetwork,
    snmp: SnmpSim,
    of: OpenFlowSim,
    cli: VendorCliSim,
    storage: StorageService,
    graph: NetworkGraph,
    /// Devices under quarantine, mapped to when their cooldown expires.
    quarantine: Mutex<HashMap<DeviceName, SimTime>>,
    quarantine_cooldown: SimDuration,
    /// What this monitor last wrote per variable: the diff base that lets
    /// a round write only rows whose value actually changed. Columnar by
    /// default — the base lives in the process-wide OS slot space, so a
    /// full-coverage round clears and refills the same arena instead of
    /// reallocating a map. Cleared on any write failure so the next round
    /// rewrites everything (the cache may no longer match what storage
    /// holds).
    last_written: Mutex<crate::view::MapView>,
    /// Rounds completed (drives the periodic full resync).
    rounds: Mutex<u64>,
    /// Every Nth round ignores the diff cache and writes the full view
    /// (1 = the pre-delta behavior: every round writes everything).
    resync_every: u64,
}

impl Monitor {
    /// Build a monitor with the standard protocol adapters.
    pub fn new(net: SimNetwork, storage: StorageService, graph: NetworkGraph) -> Self {
        Monitor {
            snmp: SnmpSim::new(net.clone()),
            of: OpenFlowSim::new(net.clone()),
            cli: VendorCliSim::new(net.clone()),
            net,
            storage,
            graph,
            quarantine: Mutex::new(HashMap::new()),
            quarantine_cooldown: DEFAULT_QUARANTINE_COOLDOWN,
            last_written: Mutex::new(crate::view::MapView::columnar(Pool::Observed)),
            rounds: Mutex::new(0),
            resync_every: DEFAULT_RESYNC_EVERY,
        }
    }

    /// Enable or disable the columnar diff base (`true` by default).
    /// Disabled, the base is a plain hash map — the reference layout the
    /// columnar plane is property-tested against.
    pub fn with_columnar_state(mut self, enabled: bool) -> Self {
        *self.last_written.get_mut() = if enabled {
            crate::view::MapView::columnar(Pool::Observed)
        } else {
            crate::view::MapView::new()
        };
        self
    }

    /// Replace the quarantine cooldown (how long a failed device is left
    /// unpolled before a half-open re-probe).
    pub fn with_quarantine_cooldown(mut self, cooldown: SimDuration) -> Self {
        self.quarantine_cooldown = cooldown;
        self
    }

    /// Replace the full-resync cadence. `1` disables the delta path
    /// entirely: every round writes the whole view, as before deltas.
    pub fn with_resync_every(mut self, every: u64) -> Self {
        self.resync_every = every.max(1);
        self
    }

    /// Devices currently under quarantine at `now` — the set the checker
    /// must treat as uncontrollable (their OS rows are stale).
    pub fn quarantined_devices(&self, now: SimTime) -> BTreeSet<DeviceName> {
        self.quarantine
            .lock()
            .iter()
            .filter(|(_, &until)| now < until)
            .map(|(d, _)| d.clone())
            .collect()
    }

    fn is_quarantined(&self, device: &DeviceName, now: SimTime) -> bool {
        matches!(self.quarantine.lock().get(device), Some(&until) if now < until)
    }

    /// Record a poll outcome in the quarantine table: failures (re)start
    /// the cooldown, successes clear it.
    fn note_poll(&self, device: &DeviceName, now: SimTime, reachable: bool) {
        let mut q = self.quarantine.lock();
        if reachable {
            q.remove(device);
        } else {
            q.insert(device.clone(), now + self.quarantine_cooldown);
        }
    }

    /// The NMS inference rows for an unresponsive device: every incident
    /// link is oper-down for traffic purposes (its live peers corroborate
    /// this).
    fn inferred_down_rows(
        &self,
        node_id: statesman_topology::NodeId,
        now: SimTime,
        writer: &AppId,
    ) -> Vec<NetworkState> {
        let mut rows = Vec::new();
        for (e, _) in self.graph.neighbors(node_id) {
            let edge = self.graph.edge(*e);
            rows.push(NetworkState::new(
                EntityName::link_named(edge.datacenter.clone(), edge.name.clone()),
                Attribute::LinkOperStatus,
                Value::oper(false),
                now,
                writer.clone(),
            ));
        }
        rows
    }

    /// Poll one device: its state rows on success, or inferred link-down
    /// rows when its management plane fails in any way. Returns
    /// (rows, reachable). Infallible by design — a broken device must
    /// never abort a collection round (partial-round tolerance).
    fn collect_one_device(
        &self,
        node_id: statesman_topology::NodeId,
        now: SimTime,
        writer: &AppId,
    ) -> (Vec<NetworkState>, bool) {
        let info = self.graph.node(node_id);
        let entity = EntityName::device(info.datacenter.clone(), info.name.clone());
        let mut rows = Vec::new();
        match self.snmp.collect_device(&info.name) {
            Ok(pairs) => {
                for (attr, value) in pairs {
                    rows.push(NetworkState::new(
                        entity.clone(),
                        attr,
                        value,
                        now,
                        writer.clone(),
                    ));
                }
                // Routing state by model.
                let model = self
                    .net
                    .device_snapshot(&info.name)
                    .map(|d| d.model)
                    .unwrap_or(DeviceModel::OpenFlowSwitch);
                let routing = match model {
                    DeviceModel::OpenFlowSwitch => self.of.collect_device(&info.name),
                    DeviceModel::BgpRouter => self.cli.collect_device(&info.name),
                };
                if let Ok(pairs) = routing {
                    for (attr, value) in pairs {
                        rows.push(NetworkState::new(
                            entity.clone(),
                            attr,
                            value,
                            now,
                            writer.clone(),
                        ));
                    }
                }
                (rows, true)
            }
            Err(_) => (self.inferred_down_rows(node_id, now, writer), false),
        }
    }

    /// Poll one link (or infer oper-down when neither endpoint answers).
    /// Infallible for the same reason as device polls.
    fn collect_one_link(
        &self,
        edge_id: statesman_topology::EdgeId,
        now: SimTime,
        writer: &AppId,
    ) -> Vec<NetworkState> {
        let edge = self.graph.edge(edge_id);
        let entity = EntityName::link_named(edge.datacenter.clone(), edge.name.clone());
        match self.snmp.collect_link(&edge.name) {
            Ok(pairs) => pairs
                .into_iter()
                .map(|(attr, value)| {
                    NetworkState::new(entity.clone(), attr, value, now, writer.clone())
                })
                .collect(),
            Err(_) => vec![NetworkState::new(
                entity,
                Attribute::LinkOperStatus,
                Value::oper(false),
                now,
                writer.clone(),
            )],
        }
    }

    /// Deduplicate, persist, and account one round's rows.
    #[allow(clippy::too_many_arguments)]
    fn finish_round(
        &self,
        rows: Vec<NetworkState>,
        devices_polled: usize,
        devices_unreachable: usize,
        devices_quarantined: usize,
        links_polled: usize,
        entities_polled: u64,
        skipped_dcs: bool,
        started: Instant,
    ) -> StateResult<MonitorReport> {
        let stage_poll = started.elapsed();
        // De-duplicate: a link may get an inferred down row (from a dead
        // endpoint) *and* a polled row (from the live peer); polled rows
        // already report oper-down for dead-endpoint links, so shadowing
        // is consistent either way. A hash map (not the full sort) keeps
        // the quiescent-round cost linear.
        let mut dedup: HashMap<VarId, NetworkState> = HashMap::with_capacity(rows.len());
        for r in rows {
            dedup.insert(r.var_id(), r);
        }
        let round = {
            let mut r = self.rounds.lock();
            let current = *r;
            *r += 1;
            current
        };
        let force_full = round % self.resync_every == 0;
        let mut last = self.last_written.lock();
        let base_empty = last.rows().next().is_none();
        let mut changed: Vec<NetworkState> = Vec::new();
        let mut writes_suppressed = 0usize;
        for (vid, row) in &dedup {
            let unchanged = crate::view::StateView::get_var(&*last, *vid)
                .map(|p| p.value == row.value && p.writer == row.writer)
                .unwrap_or(false);
            if unchanged && !force_full {
                writes_suppressed += 1;
                continue;
            }
            changed.push(row.clone());
        }
        // Only the changed rows need the deterministic write order —
        // string-key order, not id order (ids follow interning order).
        changed.sort_by(|a, b| a.key_ref().cmp(&b.key_ref()));
        let rows_written = changed.len();
        let diff_done = started.elapsed();
        let stage_diff = diff_done - stage_poll;
        // Chunk large rounds: one consensus commit per ~50K rows *per
        // partition* keeps per-message payloads bounded at DC scale (§8:
        // 394K variables). Chunks are ranked within each partition and
        // every write batch carries each partition's same-rank chunk, so
        // the storage proxy's per-partition fan-out commits them
        // concurrently — while each ring still sees its own rows in the
        // exact order the serial loop fed them, keeping versions,
        // watermarks, and the wire format byte-identical.
        let mut seed = None;
        if base_empty && changed.len() >= BULK_SEED_THRESHOLD {
            // Bootstrap: the diff base has never been written, so every
            // row is new and each partition's pool is being seeded from
            // empty. One BulkBatch per partition (batched slot minting,
            // pre-sized columns, single watermark bump) replaces the
            // chunked steady-state commits — below the threshold the
            // chunked path degenerates to one WriteBatch per partition
            // anyway, so small fabrics keep their exact prior behavior.
            // The write consumes `changed` instead of cloning it — at
            // seed scale that clone is millions of rows — and the diff
            // base below refills from `dedup`, which at seed holds the
            // same set (an empty base suppresses nothing).
            match self.storage.write_bulk(WriteRequest {
                pool: Pool::Observed,
                rows: std::mem::take(&mut changed),
            }) {
                Ok(stats) => seed = Some(stats),
                Err(e) => {
                    // The diff base may no longer match storage; rewrite
                    // everything next round.
                    last.clear();
                    return Err(e);
                }
            }
        } else {
            let mut by_part: BTreeMap<&DatacenterId, Vec<&NetworkState>> = BTreeMap::new();
            for row in &changed {
                by_part.entry(&row.entity.datacenter).or_default().push(row);
            }
            let max_chunks = by_part
                .values()
                .map(|rows| rows.len().div_ceil(50_000))
                .max()
                .unwrap_or(0);
            for rank in 0..max_chunks {
                let batch: Vec<NetworkState> = by_part
                    .values()
                    .flat_map(|rows| {
                        rows.chunks(50_000)
                            .nth(rank)
                            .unwrap_or(&[])
                            .iter()
                            .map(|&r| r.clone())
                    })
                    .collect();
                if let Err(e) = self.storage.write(WriteRequest {
                    pool: Pool::Observed,
                    rows: batch,
                }) {
                    // The diff base may no longer match storage; rewrite
                    // everything next round.
                    last.clear();
                    return Err(e);
                }
            }
        }
        // Everything this round observed — written or suppressed — is the
        // diff base for the next round. Keys in skipped DCs or on
        // quarantined/unreachable devices were not polled, so those
        // rounds must merge to carry their entries over.
        let full_coverage = !skipped_dcs && devices_quarantined == 0 && devices_unreachable == 0;
        if seed.is_some() {
            // Bulk seed: the base was empty and every polled row was
            // written (the write consumed `changed`), so the refill
            // comes from the dedup map — the same rows, and upserting
            // into a map is order-independent.
            for (_, row) in dedup {
                last.upsert(row);
            }
        } else if full_coverage && !force_full {
            // Full coverage, delta round: the base already holds every
            // polled key with its last-written value, so upserting only
            // the changed rows and dropping keys that vanished from the
            // poll is equivalent to the wholesale refill — minus cloning
            // millions of unchanged rows back into place. Unchanged base
            // rows keep their older timestamps; the diff above compares
            // value + writer only, so that is invisible.
            let stale: Vec<statesman_types::StateKey> = last
                .rows()
                .filter(|r| !dedup.contains_key(&r.var_id()))
                .map(|r| statesman_types::StateKey::new(r.entity.clone(), r.attribute))
                .collect();
            for key in &stale {
                last.remove(key);
            }
            for row in changed {
                last.upsert(row);
            }
        } else {
            if full_coverage {
                // Wholesale replacement; a columnar base keeps its slots
                // and arena, so this writes straight back into place.
                last.clear();
            }
            for (_, row) in dedup {
                last.upsert(row);
            }
        }
        drop(last);

        let shards = self.graph.node_count().div_ceil(SHARD_SIZE).max(1);
        let lanes = shards as u64 * CONCURRENCY_PER_SHARD;
        let sim_io = SimDuration::from_millis(entities_polled.div_ceil(lanes) * POLL_MS);

        let elapsed = started.elapsed();
        Ok(MonitorReport {
            devices_polled,
            devices_unreachable,
            devices_quarantined,
            links_polled,
            rows_written,
            writes_suppressed,
            shards,
            sim_io,
            elapsed,
            stage_poll,
            stage_diff,
            stage_write: elapsed.saturating_sub(diff_done),
            seed,
        })
    }

    /// Run one collection round: poll everything, write the OS.
    pub fn run_round(&self) -> StateResult<MonitorReport> {
        self.run_round_excluding(&BTreeSet::new())
    }

    /// Run one collection round skipping every entity homed in `skip_dcs`
    /// (their storage partition is down, so their OS rows could not be
    /// written anyway). The coordinator's degraded mode drives this.
    pub fn run_round_excluding(
        &self,
        skip_dcs: &BTreeSet<DatacenterId>,
    ) -> StateResult<MonitorReport> {
        let started = Instant::now();
        let now = self.net.clock().now();
        let writer = AppId::monitor();
        let mut rows: Vec<NetworkState> = Vec::new();
        let mut devices_polled = 0usize;
        let mut devices_unreachable = 0usize;
        let mut devices_quarantined = 0usize;
        let mut links_polled = 0usize;
        let mut entities_polled = 0u64;

        for (node_id, info) in self.graph.nodes() {
            if skip_dcs.contains(&info.datacenter) {
                continue;
            }
            // Quarantined devices are not re-polled (no poll budget spent
            // re-timing-out); their links stay inferred-down.
            if self.is_quarantined(&info.name, now) {
                devices_quarantined += 1;
                rows.extend(self.inferred_down_rows(node_id, now, &writer));
                continue;
            }
            entities_polled += 1;
            let (mut r, reachable) = self.collect_one_device(node_id, now, &writer);
            rows.append(&mut r);
            self.note_poll(&info.name, now, reachable);
            if reachable {
                devices_polled += 1;
            } else {
                devices_unreachable += 1;
            }
        }
        for (edge_id, edge) in self.graph.edges() {
            if skip_dcs.contains(&edge.datacenter) {
                continue;
            }
            entities_polled += 1;
            rows.extend(self.collect_one_link(edge_id, now, &writer));
            links_polled += 1;
        }
        self.finish_round(
            rows,
            devices_polled,
            devices_unreachable,
            devices_quarantined,
            links_polled,
            entities_polled,
            !skip_dcs.is_empty(),
            started,
        )
    }

    /// Run one collection round with `instances` concurrent monitor
    /// instances, each covering a contiguous shard of devices and links
    /// (§6.3: "We split the monitoring responsibility across many monitor
    /// instances"). Results are identical to [`Monitor::run_round`]; only
    /// the collection concurrency differs. Shard results fan in over a
    /// channel and are written in one batch path.
    pub fn run_round_parallel(&self, instances: usize) -> StateResult<MonitorReport> {
        let instances = instances.max(1);
        let started = Instant::now();
        let now = self.net.clock().now();
        let writer = AppId::monitor();

        let device_ids: Vec<statesman_topology::NodeId> =
            self.graph.nodes().map(|(id, _)| id).collect();
        let edge_ids: Vec<statesman_topology::EdgeId> =
            self.graph.edges().map(|(id, _)| id).collect();

        type ShardResult = (Vec<NetworkState>, usize, usize, usize, usize, u64);
        let (tx, rx) = crossbeam_channel::unbounded::<ShardResult>();
        let dev_chunk = device_ids.len().div_ceil(instances).max(1);
        let edge_chunk = edge_ids.len().div_ceil(instances).max(1);

        std::thread::scope(|scope| {
            for i in 0..instances {
                let tx = tx.clone();
                let devs = device_ids
                    .iter()
                    .skip(i * dev_chunk)
                    .take(dev_chunk)
                    .copied()
                    .collect::<Vec<_>>();
                let edges = edge_ids
                    .iter()
                    .skip(i * edge_chunk)
                    .take(edge_chunk)
                    .copied()
                    .collect::<Vec<_>>();
                let writer = writer.clone();
                scope.spawn(move || {
                    let mut rows = Vec::new();
                    let (mut polled, mut unreachable, mut quarantined, mut links) = (0, 0, 0, 0);
                    let mut entities = 0u64;
                    for id in devs {
                        let name = self.graph.node(id).name.clone();
                        if self.is_quarantined(&name, now) {
                            quarantined += 1;
                            rows.extend(self.inferred_down_rows(id, now, &writer));
                            continue;
                        }
                        entities += 1;
                        let (mut r, ok) = self.collect_one_device(id, now, &writer);
                        rows.append(&mut r);
                        self.note_poll(&name, now, ok);
                        if ok {
                            polled += 1;
                        } else {
                            unreachable += 1;
                        }
                    }
                    for id in edges {
                        entities += 1;
                        rows.extend(self.collect_one_link(id, now, &writer));
                        links += 1;
                    }
                    let _ = tx.send((rows, polled, unreachable, quarantined, links, entities));
                });
            }
        });
        drop(tx);

        let mut rows = Vec::new();
        let (mut devices_polled, mut devices_unreachable, mut devices_quarantined) = (0, 0, 0);
        let mut links_polled = 0;
        let mut entities_polled = 0u64;
        for (mut r, p, u, q, l, e) in rx {
            rows.append(&mut r);
            devices_polled += p;
            devices_unreachable += u;
            devices_quarantined += q;
            links_polled += l;
            entities_polled += e;
        }
        self.finish_round(
            rows,
            devices_polled,
            devices_unreachable,
            devices_quarantined,
            links_polled,
            entities_polled,
            false,
            started,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use statesman_net::{DeviceCommand, SimClock, SimConfig};
    use statesman_topology::DcnSpec;
    use statesman_types::{DatacenterId, DeviceName, Freshness, LinkName, StateKey};

    fn setup() -> (SimNetwork, StorageService, NetworkGraph, SimClock) {
        let clock = SimClock::new();
        let graph = DcnSpec::tiny("dc1").build();
        let net = SimNetwork::new(&graph, clock.clone(), SimConfig::ideal());
        let storage = StorageService::single_dc("dc1", clock.clone());
        (net, storage, graph, clock)
    }

    #[test]
    fn healthy_round_covers_everything() {
        let (net, storage, graph, _clock) = setup();
        let m = Monitor::new(net, storage.clone(), graph.clone());
        let report = m.run_round().unwrap();
        assert_eq!(report.devices_polled, graph.node_count());
        assert_eq!(report.devices_unreachable, 0);
        assert_eq!(report.links_polled, graph.edge_count());
        assert!(report.rows_written > graph.node_count() * 7);
        assert_eq!(report.shards, 1);
        assert!(report.sim_io > SimDuration::ZERO);

        // Spot-check an OS row.
        let fw = storage
            .read_row(
                &Pool::Observed,
                &StateKey::new(
                    EntityName::device("dc1", "agg-1-1"),
                    Attribute::DeviceFirmwareVersion,
                ),
            )
            .unwrap()
            .unwrap();
        assert_eq!(fw.value, Value::text("6.0.3"));
        assert_eq!(fw.writer, AppId::monitor());
    }

    #[test]
    fn routing_state_collected_per_model() {
        let (net, storage, graph, _clock) = setup();
        let m = Monitor::new(net.clone(), storage.clone(), graph);
        m.run_round().unwrap();
        let rules = storage
            .read_row(
                &Pool::Observed,
                &StateKey::new(
                    EntityName::device("dc1", "tor-1-1"),
                    Attribute::DeviceRoutingRules,
                ),
            )
            .unwrap();
        assert!(rules.is_some(), "OpenFlow switches report routing state");
    }

    #[test]
    fn rebooting_device_marks_links_down() {
        let (net, storage, graph, _clock) = setup();
        // Start an upgrade with a long reboot window.
        let g2 = DcnSpec::tiny("dc1").build();
        let mut cfg = SimConfig::ideal();
        cfg.faults.reboot_window_ms = 600_000;
        let net2 = SimNetwork::new(&g2, net.clock().clone(), cfg);
        let dev = DeviceName::new("agg-1-1");
        net2.submit(
            &dev,
            DeviceCommand::UpgradeFirmware {
                version: "7".into(),
            },
        );
        net2.step(SimDuration::from_millis(1));

        let m = Monitor::new(net2, storage.clone(), graph);
        let report = m.run_round().unwrap();
        assert_eq!(report.devices_unreachable, 1);
        let oper = storage
            .read_row(
                &Pool::Observed,
                &StateKey::new(
                    EntityName::link("dc1", "tor-1-1", "agg-1-1"),
                    Attribute::LinkOperStatus,
                ),
            )
            .unwrap()
            .unwrap();
        assert!(!oper.value.as_oper().unwrap().is_up());
    }

    #[test]
    fn fcs_fault_reaches_the_os() {
        let clock = SimClock::new();
        let graph = DcnSpec::tiny("dc1").build();
        let link = LinkName::between("tor-1-1", "agg-1-1");
        let mut cfg = SimConfig::ideal();
        cfg.faults = cfg.faults.with_event(
            statesman_types::SimTime::from_mins(1),
            statesman_net::FaultEvent::SetFcsErrorRate {
                link: link.clone(),
                rate: 0.04,
            },
        );
        let net = SimNetwork::new(&graph, clock.clone(), cfg);
        let storage = StorageService::single_dc("dc1", clock.clone());
        net.step_to(statesman_types::SimTime::from_mins(1));
        let m = Monitor::new(net, storage.clone(), graph);
        m.run_round().unwrap();
        let fcs = storage
            .read_row(
                &Pool::Observed,
                &StateKey::new(
                    EntityName::link_named("dc1", link),
                    Attribute::LinkFcsErrorRate,
                ),
            )
            .unwrap()
            .unwrap();
        assert_eq!(fcs.value.as_float(), Some(0.04));
    }

    #[test]
    fn repeated_rounds_update_in_place() {
        let (net, storage, graph, clock) = setup();
        let m = Monitor::new(net, storage.clone(), graph);
        let r1 = m.run_round().unwrap();
        assert_eq!(r1.writes_suppressed, 0, "first round writes everything");
        let n1 = storage.pool_len(&DatacenterId::new("dc1"), &Pool::Observed);
        clock.advance(SimDuration::from_mins(5));
        let r2 = m.run_round().unwrap();
        let n2 = storage.pool_len(&DatacenterId::new("dc1"), &Pool::Observed);
        assert_eq!(n1, n2, "rows are upserts, not appends");
        // A quiescent round suppresses the unchanged rows instead of
        // rewriting them; the stored row keeps its original timestamp.
        assert!(r2.writes_suppressed > 0);
        assert!(r2.rows_written < r1.rows_written);
        let rows = storage
            .read(statesman_storage::ReadRequest {
                datacenter: DatacenterId::new("dc1"),
                pool: Pool::Observed,
                freshness: Freshness::UpToDate,
                entity: Some(EntityName::device("dc1", "core-1")),
                attribute: Some(Attribute::DeviceFirmwareVersion),
            })
            .unwrap();
        assert!(
            rows[0].updated_at < clock.now(),
            "unchanged value not rewritten"
        );
    }

    #[test]
    fn resync_round_rewrites_the_full_view() {
        let (net, storage, graph, clock) = setup();
        let m = Monitor::new(net, storage.clone(), graph).with_resync_every(2);
        let r1 = m.run_round().unwrap(); // round 0: forced full
        clock.advance(SimDuration::from_mins(5));
        let r2 = m.run_round().unwrap(); // round 1: delta
        clock.advance(SimDuration::from_mins(5));
        let r3 = m.run_round().unwrap(); // round 2: forced full again
        assert!(r2.rows_written < r1.rows_written);
        assert_eq!(r3.rows_written, r1.rows_written);
        assert_eq!(r3.writes_suppressed, 0);
    }

    #[test]
    fn resync_every_one_disables_the_delta_path() {
        let (net, storage, graph, clock) = setup();
        let m = Monitor::new(net, storage.clone(), graph).with_resync_every(1);
        let r1 = m.run_round().unwrap();
        clock.advance(SimDuration::from_mins(5));
        let r2 = m.run_round().unwrap();
        assert_eq!(r1.rows_written, r2.rows_written);
        assert_eq!(r2.writes_suppressed, 0);
    }

    #[test]
    fn write_failure_clears_the_diff_base() {
        let (net, storage, graph, clock) = setup();
        let m = Monitor::new(net, storage.clone(), graph).with_resync_every(2);
        let dc = DatacenterId::new("dc1");
        let r0 = m.run_round().unwrap(); // round 0: full
        clock.advance(SimDuration::from_mins(5));
        m.run_round().unwrap(); // round 1: delta
        storage.set_partition_available(&dc, false);
        clock.advance(SimDuration::from_mins(5));
        // Round 2 is a forced resync: the write fails against the offline
        // partition and must clear the diff base.
        assert!(m.run_round().is_err());
        storage.set_partition_available(&dc, true);
        clock.advance(SimDuration::from_mins(5));
        // Round 3 would normally be a delta round, but with the base
        // cleared it rewrites the whole view.
        let r3 = m.run_round().unwrap();
        assert_eq!(r3.rows_written, r0.rows_written);
        assert_eq!(r3.writes_suppressed, 0);
    }

    #[test]
    fn parallel_round_matches_serial() {
        // Two identical worlds: one polled serially, one with 4 monitor
        // instances. The resulting OS must be identical.
        let build = || {
            let clock = SimClock::new();
            let graph = DcnSpec::tiny("dc1").build();
            let net = SimNetwork::new(&graph, clock.clone(), SimConfig::ideal());
            let storage = StorageService::single_dc("dc1", clock.clone());
            (Monitor::new(net, storage.clone(), graph), storage)
        };
        let (serial, s_storage) = build();
        let (parallel, p_storage) = build();
        let r1 = serial.run_round().unwrap();
        let r2 = parallel.run_round_parallel(4).unwrap();
        assert_eq!(r1.rows_written, r2.rows_written);
        assert_eq!(r1.devices_polled, r2.devices_polled);
        assert_eq!(r1.links_polled, r2.links_polled);

        let dc = DatacenterId::new("dc1");
        let read = |st: &StorageService| {
            let mut rows = st
                .read(statesman_storage::ReadRequest {
                    datacenter: dc.clone(),
                    pool: Pool::Observed,
                    freshness: Freshness::UpToDate,
                    entity: None,
                    attribute: None,
                })
                .unwrap();
            rows.sort_by_key(|a| a.key());
            rows.into_iter()
                .map(|r| (r.key(), r.value))
                .collect::<Vec<_>>()
        };
        assert_eq!(read(&s_storage), read(&p_storage));
    }

    #[test]
    fn parallel_round_handles_unreachable_devices() {
        let clock = SimClock::new();
        let graph = DcnSpec::tiny("dc1").build();
        let mut cfg = SimConfig::ideal();
        cfg.faults.reboot_window_ms = 600_000;
        let net = SimNetwork::new(&graph, clock.clone(), cfg);
        let storage = StorageService::single_dc("dc1", clock.clone());
        net.submit(
            &DeviceName::new("agg-1-1"),
            DeviceCommand::UpgradeFirmware {
                version: "7".into(),
            },
        );
        net.step(SimDuration::from_millis(1));
        let m = Monitor::new(net, storage, graph);
        let r = m.run_round_parallel(3).unwrap();
        assert_eq!(r.devices_unreachable, 1);
    }

    /// A world where agg-1-1 is mid-reboot (unreachable) for `reboot_ms`.
    fn rebooting_world(reboot_ms: u64) -> (SimNetwork, StorageService, NetworkGraph, SimClock) {
        let clock = SimClock::new();
        let graph = DcnSpec::tiny("dc1").build();
        let mut cfg = SimConfig::ideal();
        cfg.faults.reboot_window_ms = reboot_ms;
        let net = SimNetwork::new(&graph, clock.clone(), cfg);
        let storage = StorageService::single_dc("dc1", clock.clone());
        net.submit(
            &DeviceName::new("agg-1-1"),
            DeviceCommand::UpgradeFirmware {
                version: "7".into(),
            },
        );
        net.step(SimDuration::from_millis(1));
        (net, storage, graph, clock)
    }

    #[test]
    fn failed_device_is_quarantined_then_reprobed() {
        let (net, storage, graph, clock) = rebooting_world(120_000);
        let m = Monitor::new(net.clone(), storage.clone(), graph.clone())
            .with_quarantine_cooldown(SimDuration::from_mins(5));

        // Round 1: the poll fails; the device enters quarantine.
        let r1 = m.run_round().unwrap();
        assert_eq!(r1.devices_unreachable, 1);
        assert_eq!(r1.devices_quarantined, 0);
        assert_eq!(m.quarantined_devices(clock.now()).len(), 1);

        // Round 2, inside the cooldown: no re-poll, links stay inferred
        // down, the round completes.
        net.step(SimDuration::from_mins(1));
        let r2 = m.run_round().unwrap();
        assert_eq!(r2.devices_unreachable, 0);
        assert_eq!(r2.devices_quarantined, 1);
        assert!(r2.sim_io <= r1.sim_io, "quarantine must not add poll cost");
        let oper = storage
            .read_row(
                &Pool::Observed,
                &StateKey::new(
                    EntityName::link("dc1", "tor-1-1", "agg-1-1"),
                    Attribute::LinkOperStatus,
                ),
            )
            .unwrap()
            .unwrap();
        assert!(!oper.value.as_oper().unwrap().is_up());

        // Cooldown over, reboot finished: the half-open probe succeeds.
        net.step(SimDuration::from_mins(5));
        let r3 = m.run_round().unwrap();
        assert_eq!(r3.devices_quarantined, 0);
        assert_eq!(r3.devices_polled, graph.node_count());
        assert!(m.quarantined_devices(clock.now()).is_empty());
    }

    #[test]
    fn failed_reprobe_renews_quarantine() {
        let (net, storage, graph, clock) = rebooting_world(20 * 60_000);
        let m = Monitor::new(net.clone(), storage, graph)
            .with_quarantine_cooldown(SimDuration::from_mins(5));
        m.run_round().unwrap();
        // Past the cooldown but still rebooting: the probe fails and the
        // quarantine is renewed rather than dropped.
        net.step(SimDuration::from_mins(6));
        let r2 = m.run_round().unwrap();
        assert_eq!(r2.devices_unreachable, 1);
        assert_eq!(m.quarantined_devices(clock.now()).len(), 1);
    }

    #[test]
    fn shard_count_follows_paper_sizing() {
        // 2,500 devices → 3 instances at 1,000 switches each.
        assert_eq!(2_500usize.div_ceil(SHARD_SIZE), 3);
    }
}
