#![warn(missing_docs)]

//! # statesman-core
//!
//! The Statesman service proper (Sun et al., SIGCOMM 2014): the three-view
//! state model made operational.
//!
//! * [`view`] — read abstractions over pools of rows, and the *projection*
//!   of a target state onto the network graph (which devices/links would
//!   be up if the TS were realized) that invariant checking evaluates;
//! * [`deps`] — the Fig-4 state dependency model as an extensible rule
//!   set: a variable is controllable only when its ancestors hold
//!   appropriate observed values;
//! * [`invariants`] — operator-specified network-wide invariants
//!   (connectivity, ToR-pair capacity, WAN capacity) checked against the
//!   projected post-TS network;
//! * [`locks`] — priority-based per-entity locks (§7.3), stored as
//!   ordinary replicated state and arbitrated by the checker;
//! * [`checker`] — the conflict resolver and invariant guardian: validates
//!   proposals against the observed state, resolves PS–PS and PS–TS
//!   conflicts (last-writer-wins or priority locks), merges survivors into
//!   the target state, and posts acceptance/rejection receipts;
//! * [`monitor`] — periodic, sharded collection of device/link state into
//!   the observed state through protocol adapters;
//! * [`updater`] — the memoryless OS→TS difference engine: renders state
//!   deltas into device commands via a per-model command-template pool and
//!   relies on rediffing (not memory) to survive failures;
//! * [`plan`] — the update-plan synthesizer: compiles a round's
//!   difference set into a DAG of command steps ordered along the Fig-4
//!   chains, maximally parallel across independent segments, executed in
//!   deterministic waves with per-step in-flight invariant checks;
//! * [`groups`] — impact groups: one checker scope per datacenter plus one
//!   for border routers and WAN links;
//! * [`coordinator`] — wires monitor → checker → updater into one control
//!   round and accounts per-stage latency (the §8 breakdown);
//! * [`client`] — the application-facing API: read OS at a chosen
//!   freshness, write PS, poll receipts, acquire/release locks.

pub mod checker;
pub mod client;
pub mod coordinator;
pub mod deps;
pub mod engine;
pub mod groups;
pub mod invariants;
pub mod locks;
pub mod monitor;
pub mod plan;
pub mod updater;
pub mod view;

pub use checker::{Checker, CheckerConfig, CheckerPassReport, MergePolicy};
pub use client::StatesmanClient;
pub use coordinator::{Coordinator, CoordinatorConfig, RoundReport};
pub use deps::DependencyModel;
pub use engine::{default_worker_threads, WorkerPool};
pub use groups::ImpactGroup;
pub use invariants::{
    ConnectivityInvariant, Invariant, InvariantContext, TorPairCapacityInvariant, WanLinkInvariant,
};
pub use monitor::{Monitor, MonitorReport};
pub use plan::{PlanStep, UpdatePlan};
pub use updater::{CommandTemplatePool, Updater, UpdaterReport, UpdaterScope};
pub use view::{MapView, StateView};
