//! Property-based tests over the core invariants of the system:
//!
//! * **checker safety** — whatever random proposals a fleet of apps
//!   throws at it, the merged target state never violates the installed
//!   invariants and every proposal gets exactly one receipt;
//! * **checker determinism** — identical inputs produce identical
//!   decisions;
//! * **replication agreement** — a Paxos ring under random message loss
//!   commits every submitted command on all live replicas, in the same
//!   order;
//! * **forwarding conservation** — the traffic engine never creates or
//!   destroys demand: delivered + lost == offered.

use proptest::prelude::*;
use statesman_core::groups::ImpactGroup;
use statesman_core::{
    Checker, CheckerConfig, MergePolicy, Monitor, StatesmanClient, TorPairCapacityInvariant,
};
use statesman_net::{SimClock, SimConfig, SimNetwork};
use statesman_storage::{ClusterConfig, LogCommand, PaxosCluster, StorageConfig, StorageService};
use statesman_types::{AppId, Attribute, DatacenterId, EntityName, NetworkState, Pool, Value};

/// A randomly generated proposal against the Fig-7 fabric's Aggs.
#[derive(Debug, Clone)]
struct RandomProposal {
    app: u8,
    pod: u32,
    agg: u32,
    attr_pick: u8,
    when: u64,
}

fn proposal_strategy() -> impl Strategy<Value = RandomProposal> {
    (0..4u8, 1..=10u32, 1..=4u32, 0..3u8, 0..10_000u64).prop_map(
        |(app, pod, agg, attr_pick, when)| RandomProposal {
            app,
            pod,
            agg,
            attr_pick,
            when,
        },
    )
}

fn to_change(p: &RandomProposal) -> (EntityName, Attribute, Value) {
    let entity = EntityName::device("dc1", format!("agg-{}-{}", p.pod, p.agg));
    match p.attr_pick {
        0 => (entity, Attribute::DeviceFirmwareVersion, Value::text("9.9")),
        1 => (entity, Attribute::DeviceBootImage, Value::text("img-x")),
        _ => (entity, Attribute::DeviceAdminPower, Value::power(false)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn checker_never_merges_an_invariant_violation(
        proposals in proptest::collection::vec(proposal_strategy(), 1..24)
    ) {
        let clock = SimClock::new();
        let dc = DatacenterId::new("dc1");
        let graph = statesman_topology::DcnSpec::fig7("dc1").build();
        let net = SimNetwork::new(&graph, clock.clone(), SimConfig::ideal());
        let storage = StorageService::new([dc.clone()], clock.clone(), StorageConfig::default());
        Monitor::new(net, storage.clone(), graph.clone()).run_round().unwrap();

        let mut checker = Checker::new(
            CheckerConfig {
                group: ImpactGroup::Datacenter(dc.clone()),
                policy: MergePolicy::LastWriterWins,
            },
            graph.clone(),
        );
        let inv = TorPairCapacityInvariant::paper_default(&graph, dc.clone(), Some(1));
        checker.add_invariant(Box::new(inv));

        let mut total = 0usize;
        for p in &proposals {
            let client = StatesmanClient::new(
                format!("app-{}", p.app),
                storage.clone(),
                clock.clone(),
            );
            let (e, a, v) = to_change(p);
            let row = NetworkState::new(e, a, v, statesman_types::SimTime(p.when), client.app().clone());
            storage
                .write(statesman_storage::WriteRequest {
                    pool: Pool::Proposed(client.app().clone()),
                    rows: vec![row],
                })
                .unwrap();
            total += 1;
        }
        // Duplicate keys within one app's PS shadow each other; count the
        // distinct rows the checker will actually see.
        let distinct: usize = (0..4u8)
            .map(|a| storage.pool_len(&dc, &Pool::Proposed(AppId::new(format!("app-{a}")))))
            .sum();
        let report = checker.run_pass(&storage, clock.now()).unwrap();
        prop_assert_eq!(report.proposals_seen, distinct);
        prop_assert!(distinct <= total);
        // Every processed row got exactly one receipt.
        prop_assert_eq!(
            report.receipts.len(),
            report.accepted + report.rejected + report.already_satisfied
        );
        prop_assert_eq!(report.receipts.len(), distinct);

        // The merged TS, projected over the OS, satisfies the invariant.
        let ts_rows = storage
            .read(statesman_storage::ReadRequest {
                datacenter: dc.clone(),
                pool: Pool::Target,
                freshness: statesman_types::Freshness::UpToDate,
                entity: None,
                attribute: None,
            })
            .unwrap();
        let os_rows = storage
            .read(statesman_storage::ReadRequest {
                datacenter: dc.clone(),
                pool: Pool::Observed,
                freshness: statesman_types::Freshness::UpToDate,
                entity: None,
                attribute: None,
            })
            .unwrap();
        let os = statesman_core::MapView::from_rows(os_rows);
        let ts = statesman_core::MapView::from_rows(ts_rows);
        let projected = statesman_core::view::project_health(
            &graph,
            &os,
            Some(&ts as &dyn statesman_core::StateView),
        );
        let pairs = statesman_topology::capacity::select_tor_pairs(&graph, &dc, Some(1));
        let report = statesman_topology::capacity::evaluate(&graph, &projected, &pairs);
        prop_assert!(
            report.fraction_meeting(0.5) + 1e-9 >= 0.99,
            "projected TS violates capacity: {:.3}",
            report.fraction_meeting(0.5)
        );
    }

    #[test]
    fn checker_is_deterministic(
        proposals in proptest::collection::vec(proposal_strategy(), 1..12)
    ) {
        let run = || {
            let clock = SimClock::new();
            let dc = DatacenterId::new("dc1");
            let graph = statesman_topology::DcnSpec::tiny("dc1").build();
            let net = SimNetwork::new(&graph, clock.clone(), SimConfig::ideal());
            let storage =
                StorageService::new([dc.clone()], clock.clone(), StorageConfig::default());
            Monitor::new(net, storage.clone(), graph.clone()).run_round().unwrap();
            let checker = Checker::new(
                CheckerConfig {
                    group: ImpactGroup::Datacenter(dc.clone()),
                    policy: MergePolicy::LastWriterWins,
                },
                graph,
            );
            for p in &proposals {
                // Map pods/aggs into the tiny fabric's 2x2 range.
                let entity =
                    EntityName::device("dc1", format!("agg-{}-{}", p.pod % 2 + 1, p.agg % 2 + 1));
                let app = AppId::new(format!("app-{}", p.app));
                let row = NetworkState::new(
                    entity,
                    Attribute::DeviceBootImage,
                    Value::text(format!("img-{}", p.attr_pick)),
                    statesman_types::SimTime(p.when),
                    app.clone(),
                );
                storage
                    .write(statesman_storage::WriteRequest {
                        pool: Pool::Proposed(app),
                        rows: vec![row],
                    })
                    .unwrap();
            }
            let report = checker.run_pass(&storage, clock.now()).unwrap();
            let mut decisions: Vec<String> = report
                .receipts
                .iter()
                .map(|r| format!("{}|{}|{}", r.app, r.key, r.outcome.tag()))
                .collect();
            decisions.sort();
            decisions
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn paxos_agreement_under_loss(
        drop_milli in 0u32..400,
        n_cmds in 1usize..25,
        seed in 0u64..1_000
    ) {
        let mut cfg = ClusterConfig::intra_dc(seed);
        cfg.drop_prob = drop_milli as f64 / 1000.0;
        cfg.max_retries = 64;
        let mut ring = PaxosCluster::new(cfg);
        for i in 0..n_cmds {
            let cmd = LogCommand::WriteBatch {
                pool: Pool::Observed,
                rows: vec![NetworkState::new(
                    EntityName::device("dc1", format!("d{i}")),
                    Attribute::DeviceBootImage,
                    Value::text("x"),
                    statesman_types::SimTime::ZERO,
                    AppId::monitor(),
                )],
            };
            ring.submit(cmd).unwrap();
        }
        // Every committed slot applied on the leader. Failover
        // re-proposals may occupy extra slots (plus Noop barriers from
        // leader changes), but request-id dedupe guarantees each logical
        // command took effect exactly once: the pool has exactly one row
        // per distinct command.
        let leader = ring.leader().unwrap();
        prop_assert!(ring.applied_through(leader) as usize >= n_cmds);
        let m = ring.leader_machine().unwrap();
        prop_assert_eq!(m.pool_len(&Pool::Observed), n_cmds);
    }

    #[test]
    fn forwarding_conserves_demand(
        demands in proptest::collection::vec((0..4usize, 0..4usize, 1.0f64..10_000.0), 1..12)
    ) {
        let clock = SimClock::new();
        let graph = statesman_topology::WanSpec::fig9().build();
        let net = SimNetwork::new(&graph, clock, SimConfig::ideal());
        // Random flows between plane-0 routers (br-1,3,5,7), no rules
        // installed for some → loss; install rules for direct links only.
        use statesman_net::{DeviceCommand, FlowSpec};
        use statesman_types::{FlowLinkRule, LinkName};
        let brs = ["br-1", "br-3", "br-5", "br-7"];
        let mut flows = Vec::new();
        let mut offered = 0.0;
        for (i, (s, d, mbps)) in demands.iter().enumerate() {
            if s == d {
                continue;
            }
            let id = format!("f{i}");
            let (src, dst) = (brs[*s], brs[*d]);
            // Install the direct rule on even flows; odd flows are
            // deliberately unrouted (lost).
            if i % 2 == 0 {
                net.submit(
                    &src.into(),
                    DeviceCommand::SetRoutingRules {
                        rules: vec![FlowLinkRule::new(
                            id.clone(),
                            LinkName::between(src, dst),
                            1.0,
                        )],
                    },
                );
            }
            flows.push(FlowSpec::new(id, src, dst, *mbps));
            offered += *mbps;
        }
        // Device rule-sets overwrite each other per submit; rebuild the
        // union per device instead.
        // (Simplest: re-submit cumulative rules per device.)
        use std::collections::HashMap;
        let mut per_dev: HashMap<&str, Vec<FlowLinkRule>> = HashMap::new();
        for (i, (s, d, _)) in demands.iter().enumerate() {
            if s == d || i % 2 != 0 {
                continue;
            }
            let (src, dst) = (brs[*s], brs[*d]);
            per_dev.entry(src).or_default().push(FlowLinkRule::new(
                format!("f{i}"),
                LinkName::between(src, dst),
                1.0,
            ));
        }
        for (dev, rules) in per_dev {
            net.submit(&dev.into(), DeviceCommand::SetRoutingRules { rules });
        }
        net.offer_flows(flows);
        net.step(statesman_types::SimDuration::from_secs(1));
        let report = net.traffic_report();
        prop_assert!(
            (report.accounted_mbps() - offered).abs() < 1e-6 * offered.max(1.0),
            "offered {offered}, accounted {}",
            report.accounted_mbps()
        );
    }
}
