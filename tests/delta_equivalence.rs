//! The delta state plane's load-bearing property: a view maintained
//! purely by applying `read_since` changefeeds is **bit-equal** to a
//! fresh full read at every step — across random churn, value-identical
//! rewrites (suppressed writes), deletes, partition outages, and
//! change-index evictions that force snapshot fallbacks.
//!
//! This is what makes the paper's §6.2 statelessness argument carry over
//! to the delta plane: any component's cached view can be discarded and
//! rebuilt at any time, because the delta-fed view *is* the full read.

use proptest::prelude::*;
use statesman_core::MapView;
use statesman_net::SimClock;
use statesman_storage::{ReadRequest, StorageConfig, StorageService, WriteRequest};
use statesman_types::{
    AppId, Attribute, DatacenterId, EntityName, Freshness, NetworkState, Pool, SimDuration,
    StateKey, Value, Version,
};

fn full_sorted(storage: &StorageService, dc: &DatacenterId) -> Vec<NetworkState> {
    let mut rows = storage
        .read(ReadRequest {
            datacenter: dc.clone(),
            pool: Pool::Observed,
            freshness: Freshness::UpToDate,
            entity: None,
            attribute: None,
        })
        .unwrap();
    rows.sort_by_key(|r| r.key());
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random op soup: upserts, value-identical rewrites, deletes, and
    /// partition outages, with the delta-fed view checked for
    /// bit-equality against a full read after every single op.
    #[test]
    fn delta_view_matches_full_reads_across_churn(
        ops in proptest::collection::vec((0..6u8, 0..48u16, 0..6u8), 1..60)
    ) {
        let clock = SimClock::new();
        let dc = DatacenterId::new("dc1");
        let storage = StorageService::new([dc.clone()], clock.clone(), StorageConfig::default());
        let writer = AppId::monitor();
        let key = |idx: u16| StateKey::new(
            EntityName::device("dc1", format!("dev-{idx}")),
            Attribute::DeviceBootImage,
        );
        let row = |idx: u16, val: u8, at| NetworkState::new(
            EntityName::device("dc1", format!("dev-{idx}")),
            Attribute::DeviceBootImage,
            Value::text(format!("img-{val}")),
            at,
            writer.clone(),
        );

        let mut view = MapView::new();
        let mut watermark = Version::GENESIS;

        for (kind, idx, val) in ops {
            clock.advance(SimDuration::from_secs(1));
            match kind {
                // Upsert (possibly overwriting with a new value).
                0..=2 => {
                    storage.write(WriteRequest {
                        pool: Pool::Observed,
                        rows: vec![row(idx, val, clock.now())],
                    }).unwrap();
                }
                // Value-identical rewrite: a suppressed write must move
                // neither the watermark nor the stored row.
                3 => {
                    if let Some(existing) = storage
                        .read_row(&Pool::Observed, &key(idx))
                        .unwrap()
                    {
                        let before = storage.pool_watermark(&dc, &Pool::Observed).unwrap();
                        storage.write(WriteRequest {
                            pool: Pool::Observed,
                            rows: vec![NetworkState::new(
                                existing.entity.clone(),
                                existing.attribute,
                                existing.value.clone(),
                                clock.now(),
                                existing.writer.clone(),
                            )],
                        }).unwrap();
                        let after = storage.pool_watermark(&dc, &Pool::Observed).unwrap();
                        prop_assert_eq!(before, after, "suppressed write moved the watermark");
                    }
                }
                // Delete (tombstone rides the changefeed).
                4 => {
                    let _ = storage.delete(Pool::Observed, vec![key(idx)]);
                }
                // Partition outage: the changefeed read fails fast and
                // the consumer resumes from the same watermark after the
                // heal — no changes may be lost across the gap.
                _ => {
                    storage.set_partition_available(&dc, false);
                    prop_assert!(
                        storage.read_since(&dc, &Pool::Observed, watermark).is_err(),
                        "offline partition must fail delta reads fast"
                    );
                    storage.set_partition_available(&dc, true);
                }
            }

            let delta = storage.read_since(&dc, &Pool::Observed, watermark).unwrap();
            watermark = delta.watermark;
            view.apply_delta(delta);
            prop_assert_eq!(
                view.clone().into_sorted_rows(),
                full_sorted(&storage, &dc),
                "delta-fed view diverged from the full read"
            );
        }
    }

    /// A consumer that skips ahead (reads from an arbitrary future/past
    /// version) still converges: whatever `since` it presents, applying
    /// the reply to a view seeded from a full read at that watermark
    /// matches the current full read.
    #[test]
    fn any_starting_watermark_is_recoverable(
        writes in proptest::collection::vec((0..32u16, 0..6u8), 1..40),
        resume_at in 0..64u64
    ) {
        let clock = SimClock::new();
        let dc = DatacenterId::new("dc1");
        let storage = StorageService::new([dc.clone()], clock.clone(), StorageConfig::default());
        for (idx, val) in writes {
            clock.advance(SimDuration::from_secs(1));
            storage.write(WriteRequest {
                pool: Pool::Observed,
                rows: vec![NetworkState::new(
                    EntityName::device("dc1", format!("dev-{idx}")),
                    Attribute::DeviceBootImage,
                    Value::text(format!("img-{val}")),
                    clock.now(),
                    AppId::monitor(),
                )],
            }).unwrap();
        }
        let head = storage.pool_watermark(&dc, &Pool::Observed).unwrap();
        // `since` past the head is out of the index's window and must be
        // answered with a snapshot rather than garbage.
        let delta = storage.read_since(&dc, &Pool::Observed, Version(resume_at)).unwrap();
        prop_assert_eq!(delta.watermark, head);
        if resume_at > head.0 {
            prop_assert!(delta.snapshot, "future since must snapshot-fallback");
        }
        let mut view = MapView::new();
        if !delta.snapshot {
            // Seed as a consumer that had a correct view at `resume_at`
            // would be seeded: with the rows current at that version —
            // approximated by the current full read minus the delta's
            // changed keys (the delta rewrites exactly those).
            let changed: std::collections::HashSet<StateKey> = delta
                .upserts
                .iter()
                .map(|r| r.key())
                .chain(delta.deletes.iter().cloned())
                .collect();
            for r in full_sorted(&storage, &dc) {
                if !changed.contains(&r.key()) {
                    view.upsert(r);
                }
            }
        }
        view.apply_delta(delta);
        prop_assert_eq!(view.into_sorted_rows(), full_sorted(&storage, &dc));
    }
}

/// Crossing the change index's compaction floor over the service API: a
/// churn burst larger than the index forces the next `read_since` into a
/// full snapshot, after which the feed resumes incrementally. The view
/// stays bit-equal to a full read through the whole crossing.
#[test]
fn compaction_floor_crossing_falls_back_to_snapshot_and_recovers() {
    let clock = SimClock::new();
    let dc = DatacenterId::new("dc1");
    let storage = StorageService::new([dc.clone()], clock.clone(), StorageConfig::default());
    let write_burst = |start: u32, n: u32, tag: &str| {
        let rows: Vec<NetworkState> = (start..start + n)
            .map(|i| {
                NetworkState::new(
                    EntityName::device("dc1", format!("dev-{i}")),
                    Attribute::DeviceBootImage,
                    Value::text(format!("img-{tag}")),
                    clock.now(),
                    AppId::monitor(),
                )
            })
            .collect();
        storage
            .write(WriteRequest {
                pool: Pool::Observed,
                rows,
            })
            .unwrap();
    };

    // Seed a small pool and catch the consumer up incrementally.
    write_burst(0, 100, "a");
    let mut view = MapView::new();
    let d0 = storage
        .read_since(&dc, &Pool::Observed, Version::GENESIS)
        .unwrap();
    let mut watermark = d0.watermark;
    view.apply_delta(d0);
    assert_eq!(view.len(), 100);

    // Churn far past the index capacity (65,536 entries) while the
    // consumer isn't looking.
    clock.advance(SimDuration::from_secs(60));
    for burst in 0..3u32 {
        write_burst(0, 30_000, &format!("b{burst}"));
    }

    // The consumer's watermark is now below the compaction floor: the
    // reply must be a snapshot, and applying it must resynchronize.
    let d1 = storage.read_since(&dc, &Pool::Observed, watermark).unwrap();
    assert!(d1.snapshot, "below-floor read must be a full snapshot");
    watermark = d1.watermark;
    view.apply_delta(d1);
    assert_eq!(view.clone().into_sorted_rows(), full_sorted(&storage, &dc));

    // And the feed resumes incrementally afterwards.
    clock.advance(SimDuration::from_secs(60));
    write_burst(7, 1, "c");
    let d2 = storage.read_since(&dc, &Pool::Observed, watermark).unwrap();
    assert!(!d2.snapshot, "post-recovery read should be incremental");
    assert_eq!(d2.upserts.len(), 1);
    view.apply_delta(d2);
    assert_eq!(view.into_sorted_rows(), full_sorted(&storage, &dc));
}

/// Quarantine rounds force the full-read fallback in the live loop and
/// must not desynchronize anything: the same chaotic history driven
/// through a delta-plane coordinator and a snapshot-plane coordinator
/// converges identically (the chaos harness runs quarantines, degraded
/// rounds, and command faults; seed fixed for reproducibility).
#[test]
fn chaotic_delta_plane_matches_snapshot_plane_outcomes() {
    use statesman_chaos::ChaosScenario;
    let scenario = ChaosScenario::standard(4);
    let (outcome, wire) = scenario.run_with_wire_reader();
    assert!(
        wire.mismatches.is_empty(),
        "wire delta view diverged under chaos: {:?}",
        wire.mismatches
    );
    assert!(outcome.safety_violations.is_empty());
    assert_eq!(outcome.tick_errors, 0);
    assert!(
        outcome.converged_at.is_some(),
        "never converged: {outcome:?}"
    );
    assert!(wire.delta_reads > 0, "{wire:?}");
}
