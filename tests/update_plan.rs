//! Property tests for the update-plan synthesizer (ordered, minimal,
//! maximally-parallel transitions with in-flight invariant checks).
//!
//! Three properties, checked across chaos seeds:
//!
//! * **Intermediate-state safety** — under the upgrade-race plan (rolling
//!   firmware reboots racing heavy link flapping, plus flash-crowd TE
//!   churn), the ground truth sampled every round never loses a pod's
//!   aggregation capacity. The per-step in-flight checks are what gate
//!   transitions whose checker-time validation went stale.
//! * **Plan/chain-walk equivalence** — a run with plan synthesis on
//!   converges exactly like the legacy chain walk: on a fault-free plan
//!   the two outcomes are bit-identical (the plan degenerates to legacy
//!   order when nothing depends on anything), and under multi-layer
//!   chaos both stay safe and converge to the same realized intent.
//! * **Determinism** — the same seed replays to a bit-identical outcome,
//!   plan tallies included.

use proptest::prelude::*;
use statesman_chaos::{ChaosPlan, ChaosScenario, ScenarioOutcome};

/// Strip the tallies only the planned executor produces, so a planned
/// outcome can be compared bit-for-bit against a chain-walk outcome.
fn without_plan_tallies(mut o: ScenarioOutcome) -> ScenarioOutcome {
    o.plan_steps = 0;
    o.plan_max_width = 0;
    o.plan_inflight_rejections = 0;
    o.plan_rollbacks = 0;
    o
}

/// The headline: rolling upgrades racing link failures and TE churn,
/// across five fixed seeds. Every round's ground truth keeps at least
/// one aggregation switch per pod, no round aborts, the campaign still
/// converges, and the plan actually planned something.
#[test]
fn upgrade_race_intermediate_states_stay_safe_across_seeds() {
    for seed in 1..=5u64 {
        let scenario = ChaosScenario::upgrade_race(seed);
        let outcome = scenario.run();
        assert!(
            outcome.safety_violations.is_empty(),
            "seed {seed}: intermediate state violated pod capacity: {:?}",
            outcome.safety_violations
        );
        assert_eq!(outcome.tick_errors, 0, "seed {seed}: rounds aborted");
        assert!(
            outcome.converged_at.is_some(),
            "seed {seed}: never converged: {outcome:?}"
        );
        assert!(
            outcome.plan_steps >= 1,
            "seed {seed}: the planned executor never planned: {outcome:?}"
        );
        println!(
            "seed {seed}: converged at {:?}, plan_steps={}, max_width={}, \
             inflight_rejections={}, rollbacks={}",
            outcome.converged_at,
            outcome.plan_steps,
            outcome.plan_max_width,
            outcome.plan_inflight_rejections,
            outcome.plan_rollbacks
        );
    }
}

/// Fault-free equivalence: with no chaos, the plan degenerates to the
/// legacy execution order (independent steps keep their chain-walk
/// order inside one wave), so a planned run is bit-identical to a
/// chain-walk run once the plan-only tallies are stripped.
#[test]
fn quiet_planned_runs_match_the_chain_walk_bit_for_bit() {
    for seed in 1..=5u64 {
        let run = |planned: bool| {
            let mut scenario = ChaosScenario::standard(seed);
            scenario.plan = ChaosPlan::quiet(seed);
            scenario.plan_synthesis = planned;
            scenario.run()
        };
        let planned = run(true);
        let walked = run(false);
        assert!(planned.plan_steps >= 1, "seed {seed}: {planned:?}");
        assert_eq!(walked.plan_steps, 0, "seed {seed}: {walked:?}");
        assert_eq!(
            without_plan_tallies(planned),
            without_plan_tallies(walked),
            "seed {seed}: planned execution diverged from the chain walk"
        );
    }
}

/// Multi-layer chaos equivalence: under the standard plan both executors
/// must stay safe, never abort a round, and converge to the realized
/// intent (convergence is sampled on ground truth, so agreeing on it
/// means agreeing on the final network state).
#[test]
fn chaos_planned_runs_converge_like_the_chain_walk() {
    for seed in 1..=5u64 {
        let run = |planned: bool| {
            let mut scenario = ChaosScenario::standard(seed);
            scenario.plan_synthesis = planned;
            scenario.run()
        };
        let planned = run(true);
        let walked = run(false);
        for (mode, o) in [("planned", &planned), ("chain-walk", &walked)] {
            assert!(
                o.safety_violations.is_empty(),
                "seed {seed} ({mode}): {:?}",
                o.safety_violations
            );
            assert_eq!(o.tick_errors, 0, "seed {seed} ({mode}): rounds aborted");
            assert!(
                o.converged_at.is_some(),
                "seed {seed} ({mode}): never converged: {o:?}"
            );
        }
    }
}

/// Double-run determinism, on the richest scenario: the upgrade-race run
/// (plan synthesis, in-flight checks, TE churn, heavy flapping) replays
/// bit-identically — plan tallies included.
#[test]
fn upgrade_race_runs_are_deterministic() {
    let a = ChaosScenario::upgrade_race(3).run();
    let b = ChaosScenario::upgrade_race(3).run();
    assert_eq!(a, b, "upgrade-race chaos must replay bit-identically");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Randomized seeds beyond the fixed panel: whatever the seed, the
    /// upgrade-race scenario never exhibits an unsafe intermediate state
    /// and never aborts a round. (Convergence is asserted only on the
    /// fixed panel above — a random seed may legitimately schedule its
    /// heal too late in the round budget.)
    #[test]
    fn upgrade_race_safety_holds_for_arbitrary_seeds(seed in 6..10_000u64) {
        let outcome = ChaosScenario::upgrade_race(seed).run();
        prop_assert!(
            outcome.safety_violations.is_empty(),
            "seed {}: {:?}",
            seed,
            outcome.safety_violations
        );
        prop_assert_eq!(outcome.tick_errors, 0);
        prop_assert!(outcome.plan_steps >= 1);
    }
}
