//! A fleet-wide WAN rollout: the §7.3 mechanism applied to several border
//! routers in sequence ("Once the upgrade is done, the switch-upgrade
//! application releases the high-priority lock of the router, and
//! proceeds to the next candidate").
//!
//! Asserts that each router is upgraded strictly one at a time, always at
//! zero load, and that aggregate delivery never collapses: the mesh keeps
//! carrying the demand on the untouched plane while each router cycles.

use statesman_bench::fig10::{Fig10Config, Fig10Scenario};
use statesman_types::DeviceName;

#[test]
fn sequential_multi_router_rollout() {
    let config = Fig10Config {
        targets: vec!["br-1", "br-3"],
        horizon: statesman_types::SimDuration::from_mins(400),
        ..Default::default()
    };
    let result = Fig10Scenario::new(config).run();

    // Both routers ended on the target firmware.
    assert_eq!(result.final_versions.len(), 2);
    for (dev, version) in &result.final_versions {
        assert_eq!(version, "9.4.2", "{dev} not upgraded");
    }

    // Never both down at once (strictly sequential rollout), and traffic
    // never collapses: with one router draining/rebooting, the rest of
    // the mesh still carries most of the demand.
    let br1 = DeviceName::new("br-1");
    let br3 = DeviceName::new("br-3");
    let mut saw_br1_drained = false;
    let mut saw_br3_drained = false;
    let peak_total = result
        .samples
        .iter()
        .map(|s| s.total_load())
        .fold(0.0f64, f64::max);
    assert!(peak_total > 0.0);
    for s in &result.samples {
        let l1 = s.device_load(&br1);
        let l3 = s.device_load(&br3);
        if l1 < 1.0 && s.total_load() > 1.0 {
            saw_br1_drained = true;
        }
        if l3 < 1.0 && s.total_load() > 1.0 {
            saw_br3_drained = true;
        }
        // While traffic exists at all, at least half of peak keeps moving
        // (losing one of eight routers cannot halve a 2-plane mesh).
        if s.total_load() > 1.0 {
            assert!(
                s.total_load() >= peak_total * 0.5,
                "delivery collapsed at {}: {} vs peak {peak_total}",
                s.at,
                s.total_load()
            );
        }
    }
    assert!(saw_br1_drained, "br-1 never drained");
    assert!(saw_br3_drained, "br-3 never drained");
}
