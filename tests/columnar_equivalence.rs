//! Columnar state-plane equivalence suite.
//!
//! The columnar refactor swaps every hot-path state container — storage
//! pools, checker mirrors, monitor diff base — from `HashMap<VarId, _>`
//! to dense slot-indexed columns, and makes the checker incremental
//! (blast-radius re-projection + cached verdicts). None of that may be
//! observable: columnar reads must stay bit-equal to the hashmap
//! reference, and an incremental pass must decide exactly what a full
//! pass decides. This suite pins both:
//!
//! * **view equivalence** — a columnar `MapView` and a hash `MapView`
//!   driven through the same interleaved upsert/remove/remove_var/clear
//!   soup agree on every read, including the returned rows of removals;
//! * **machine equivalence** — the columnar `StateMachine` pools match a
//!   plain `HashMap` shadow model across churn and deletes, slots are
//!   never reused across delete/re-insert cycles, and point reads agree
//!   for every key ever written;
//! * **compaction crossing** — a columnar mirror fed `read_since` deltas
//!   survives a change-index compaction (snapshot fallback) bit-equal to
//!   a full read;
//! * **incremental checker equivalence** — a delta+columnar checker and
//!   a full-read checker driven through identical proposal/churn/outage
//!   histories issue identical receipts and leave identical pools;
//! * **stale-cache regression** — a checker whose mirrors and seed cache
//!   predate a compaction-floor crossing must still decide like a fresh
//!   checker (the snapshot fallback evicts, never serves stale parts).

use proptest::prelude::*;
use statesman_core::groups::ImpactGroup;
use statesman_core::{
    Checker, CheckerConfig, MapView, MergePolicy, Monitor, StateView, TorPairCapacityInvariant,
};
use statesman_net::{SimClock, SimConfig, SimNetwork};
use statesman_storage::{
    LogCommand, ReadRequest, StateMachine, StorageConfig, StorageService, WriteRequest,
};
use statesman_types::{
    slot_registry, AppId, Attribute, DatacenterId, EntityName, Freshness, NetworkState, Pool,
    SimTime, StateKey, Value,
};
use std::collections::{HashMap, HashSet};

/// The change-index depth (mirrors `CHANGE_INDEX_CAPACITY` in
/// `statesman-storage`); writing more distinct rows than this between two
/// `read_since` calls forces the snapshot fallback.
const CHANGE_INDEX_CAPACITY: usize = 65_536;

fn test_key(idx: u8) -> (EntityName, Attribute) {
    let entity = EntityName::device("dc1", format!("cev-{}", idx % 48));
    let attr = match idx % 3 {
        0 => Attribute::DeviceFirmwareVersion,
        1 => Attribute::DeviceBootImage,
        _ => Attribute::DeviceCpuUtilization,
    };
    (entity, attr)
}

fn test_row(idx: u8, val: u8, when: u64) -> NetworkState {
    let (entity, attr) = test_key(idx);
    NetworkState::new(
        entity,
        attr,
        Value::text(format!("v-{val}")),
        SimTime(when),
        AppId::new("prop-writer"),
    )
}

/// One operation against a state view or a storage pool.
#[derive(Debug, Clone)]
enum SoupOp {
    Upsert { idx: u8, val: u8, when: u64 },
    RemoveKey { idx: u8 },
    RemoveVar { idx: u8 },
    Clear,
}

fn soup_op() -> impl Strategy<Value = SoupOp> {
    // Weighted mix: mostly upserts, a fair share of both removal shapes,
    // the occasional clear.
    (0..11u8, any::<u8>(), any::<u8>(), 0..10_000u64).prop_map(
        |(kind, idx, val, when)| match kind {
            0..=5 => SoupOp::Upsert { idx, val, when },
            6 | 7 => SoupOp::RemoveKey { idx },
            8 | 9 => SoupOp::RemoveVar { idx },
            _ => SoupOp::Clear,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A columnar `MapView` is observationally identical to the hashmap
    /// representation under interleaved upserts, key removals, var-id
    /// removals (the mirror-delete path), and clears — including the
    /// rows the removal operations hand back.
    #[test]
    fn columnar_view_matches_hash_view(
        ops in proptest::collection::vec(soup_op(), 1..80)
    ) {
        let mut hash = MapView::new();
        let mut col = MapView::columnar(Pool::Observed);
        prop_assert!(col.is_columnar() && !hash.is_columnar());
        for op in &ops {
            match op {
                SoupOp::Upsert { idx, val, when } => {
                    hash.upsert(test_row(*idx, *val, *when));
                    col.upsert(test_row(*idx, *val, *when));
                }
                SoupOp::RemoveKey { idx } => {
                    let (entity, attr) = test_key(*idx);
                    let key = StateKey::new(entity, attr);
                    prop_assert_eq!(hash.remove(&key), col.remove(&key));
                }
                SoupOp::RemoveVar { idx } => {
                    let (entity, attr) = test_key(*idx);
                    let var = StateKey::new(entity, attr).var_id();
                    prop_assert_eq!(hash.remove_var(var), col.remove_var(var));
                }
                SoupOp::Clear => {
                    hash.clear();
                    col.clear();
                }
            }
            prop_assert_eq!(hash.len(), col.len());
            prop_assert_eq!(hash.is_empty(), col.is_empty());
        }
        // Full-scan equality (sorted by key, payload bit-equal).
        prop_assert_eq!(
            hash.clone().into_sorted_rows(),
            col.clone().into_sorted_rows()
        );
        // Point reads agree over the whole key universe, hits and misses.
        for idx in 0..=255u8 {
            let (entity, attr) = test_key(idx);
            let var = StateKey::new(entity, attr).var_id();
            prop_assert_eq!(hash.get_var(var), col.get_var(var));
        }
        // The columnar byte accounting tracks occupancy.
        if !col.is_empty() {
            prop_assert!(col.approx_bytes() > 0);
        }
    }

    /// The columnar `StateMachine` pools match a plain hashmap shadow
    /// model under interleaved write/delete batches across two pools,
    /// and a slot, once assigned to a variable, is never reassigned —
    /// delete/re-insert cycles reuse the *same* slot, and no two
    /// variables ever share one.
    #[test]
    fn machine_pools_match_hashmap_shadow(
        ops in proptest::collection::vec(
            (soup_op(), any::<bool>()), 1..120
        )
    ) {
        let mut machine = StateMachine::new();
        let mut shadow: HashMap<Pool, HashMap<StateKey, NetworkState>> = HashMap::new();
        let mut first_slot: HashMap<(Pool, StateKey), u32> = HashMap::new();
        let mut seen: HashSet<(Pool, StateKey)> = HashSet::new();

        for (op, to_target) in &ops {
            let pool = if *to_target { Pool::Target } else { Pool::Observed };
            match op {
                SoupOp::Upsert { idx, val, when } => {
                    let row = test_row(*idx, *val, *when);
                    let key = row.key();
                    machine.apply(&LogCommand::WriteBatch {
                        pool: pool.clone(),
                        rows: vec![row.clone()],
                    });
                    shadow.entry(pool.clone()).or_default().insert(key.clone(), row);
                    let slot = slot_registry().slot_of(&pool, key.var_id()).0;
                    let prior = first_slot
                        .entry((pool.clone(), key.clone()))
                        .or_insert(slot);
                    prop_assert_eq!(*prior, slot, "slot moved for {:?}", key);
                    seen.insert((pool, key));
                }
                // The machine has no clear/var-id command; fold the other
                // soup shapes into key deletes so the mix stays dense.
                other => {
                    let idx = match other {
                        SoupOp::RemoveKey { idx } | SoupOp::RemoveVar { idx } => *idx,
                        _ => 0,
                    };
                    let (entity, attr) = test_key(idx);
                    let key = StateKey::new(entity, attr);
                    machine.apply(&LogCommand::DeleteBatch {
                        pool: pool.clone(),
                        keys: vec![key.clone()],
                    });
                    shadow.entry(pool.clone()).or_default().remove(&key);
                }
            }
        }

        // The machine stamps rows with commit versions the shadow cannot
        // know; compare everything else bit-for-bit.
        fn essence(r: &NetworkState) -> (String, Value, SimTime, AppId) {
            (r.key().to_string(), r.value.clone(), r.updated_at, r.writer.clone())
        }
        for pool in [Pool::Observed, Pool::Target] {
            let model = shadow.remove(&pool).unwrap_or_default();
            prop_assert_eq!(machine.pool_len(&pool), model.len());
            let mut got: Vec<_> = machine.pool_rows(&pool).iter().map(essence).collect();
            got.sort_by(|a, b| a.0.cmp(&b.0));
            let mut want: Vec<_> = model.values().map(essence).collect();
            want.sort_by(|a, b| a.0.cmp(&b.0));
            prop_assert_eq!(got, want);
            // Point reads agree for every key ever touched in this pool,
            // live or deleted.
            for (p, key) in &seen {
                if *p != pool {
                    continue;
                }
                prop_assert_eq!(
                    machine.get(&pool, key).map(essence),
                    model.get(key).map(essence)
                );
            }
        }

        // Slot uniqueness: distinct variables of one pool never collide.
        for pool in [Pool::Observed, Pool::Target] {
            let slots: HashSet<u32> = first_slot
                .iter()
                .filter(|((p, _), _)| *p == pool)
                .map(|(_, s)| *s)
                .collect();
            let vars = first_slot.keys().filter(|(p, _)| *p == pool).count();
            prop_assert_eq!(slots.len(), vars);
        }
    }
}

fn full_sorted(storage: &StorageService, dc: &DatacenterId, pool: Pool) -> Vec<NetworkState> {
    let mut rows = storage
        .read(ReadRequest {
            datacenter: dc.clone(),
            pool,
            freshness: Freshness::UpToDate,
            entity: None,
            attribute: None,
        })
        .unwrap();
    rows.sort_by(|a, b| a.key_ref().cmp(&b.key_ref()));
    rows
}

/// A columnar changefeed mirror crossing the change-index compaction
/// floor: the `read_since` snapshot fallback must rebuild the columnar
/// view bit-equal to a full read (this is the path that evicts checker
/// mirrors after compaction).
#[test]
fn columnar_mirror_survives_change_index_compaction() {
    let clock = SimClock::new();
    let dc = DatacenterId::new("dc1");
    let storage = StorageService::new([dc.clone()], clock.clone(), StorageConfig::default());

    // Seed a handful of rows and sync a columnar mirror incrementally.
    let rows: Vec<NetworkState> = (0..20u8).map(|i| test_row(i, 1, 10)).collect();
    storage
        .write(WriteRequest {
            pool: Pool::Observed,
            rows,
        })
        .unwrap();
    let mut view = MapView::columnar(Pool::Observed);
    let d0 = storage
        .read_since(&dc, &Pool::Observed, statesman_types::Version::GENESIS)
        .unwrap();
    let watermark = d0.watermark;
    view.apply_delta(d0);
    assert_eq!(
        view.clone().into_sorted_rows(),
        full_sorted(&storage, &dc, Pool::Observed)
    );

    // Blow past the change-index capacity in one commit: every entry the
    // mirror's watermark could have been served from is compacted away.
    let burst: Vec<NetworkState> = (0..CHANGE_INDEX_CAPACITY as u32 + 10)
        .map(|i| {
            NetworkState::new(
                EntityName::device("dc1", format!("bulk-{i}")),
                Attribute::DeviceCpuUtilization,
                Value::text(format!("load-{i}")),
                SimTime(100),
                AppId::new("bulk-writer"),
            )
        })
        .collect();
    storage
        .write(WriteRequest {
            pool: Pool::Observed,
            rows: burst,
        })
        .unwrap();

    let d1 = storage.read_since(&dc, &Pool::Observed, watermark).unwrap();
    assert!(
        d1.snapshot,
        "a burst past the change-index capacity must force the snapshot fallback"
    );
    view.apply_delta(d1);
    assert!(view.is_columnar(), "snapshot rebuild must stay columnar");
    assert_eq!(
        view.into_sorted_rows(),
        full_sorted(&storage, &dc, Pool::Observed)
    );
}

/// One control-loop stack for the incremental-vs-full comparison.
struct Stack {
    clock: SimClock,
    dc: DatacenterId,
    storage: StorageService,
    checker: Checker,
}

fn build_stack(incremental: bool) -> Stack {
    let clock = SimClock::new();
    let dc = DatacenterId::new("dc1");
    let graph = statesman_topology::DcnSpec::tiny("dc1").build();
    let net = SimNetwork::new(&graph, clock.clone(), SimConfig::ideal());
    let storage = StorageService::new([dc.clone()], clock.clone(), StorageConfig::default());
    Monitor::new(net, storage.clone(), graph.clone())
        .run_round()
        .unwrap();
    let mut checker = Checker::new(
        CheckerConfig {
            group: ImpactGroup::Datacenter(dc.clone()),
            policy: MergePolicy::LastWriterWins,
        },
        graph.clone(),
    )
    .with_delta_reads(incremental)
    .with_columnar_state(incremental);
    checker.add_invariant(Box::new(TorPairCapacityInvariant::paper_default(
        &graph,
        dc.clone(),
        Some(1),
    )));
    Stack {
        clock,
        dc,
        storage,
        checker,
    }
}

/// A randomly generated proposal against the tiny fabric's aggs.
#[derive(Debug, Clone)]
struct RandomProposal {
    app: u8,
    pod: u32,
    agg: u32,
    attr_pick: u8,
    when: u64,
}

fn proposal_strategy() -> impl Strategy<Value = RandomProposal> {
    (0..3u8, 1..=2u32, 1..=2u32, 0..3u8, 0..10_000u64).prop_map(
        |(app, pod, agg, attr_pick, when)| RandomProposal {
            app,
            pod,
            agg,
            attr_pick,
            when,
        },
    )
}

/// Observed-state churn applied between checker passes: the monitor-shaped
/// writes and deletes that drive the incremental path's blast radius.
#[derive(Debug, Clone)]
enum ChurnOp {
    /// Flip a device's admin power in the OS (projected-down blast).
    Power { pod: u32, agg: u32, on: bool },
    /// Rewrite a counter row (radius-affecting but invariant-neutral).
    Counter { pod: u32, agg: u32, val: u8 },
    /// Delete an OS row outright (tombstone through the mirrors).
    Delete { pod: u32, agg: u32 },
}

fn churn_strategy() -> impl Strategy<Value = ChurnOp> {
    (0..6u8, 1..=2u32, 1..=2u32, any::<u8>()).prop_map(|(kind, pod, agg, val)| match kind {
        0 | 1 => ChurnOp::Power {
            pod,
            agg,
            on: val & 1 == 0,
        },
        2..=4 => ChurnOp::Counter { pod, agg, val },
        _ => ChurnOp::Delete { pod, agg },
    })
}

fn apply_churn(storage: &StorageService, op: &ChurnOp, when: u64) {
    let entity = |pod: &u32, agg: &u32| EntityName::device("dc1", format!("agg-{pod}-{agg}"));
    match op {
        ChurnOp::Power { pod, agg, on } => {
            storage
                .write(WriteRequest {
                    pool: Pool::Observed,
                    rows: vec![NetworkState::new(
                        entity(pod, agg),
                        Attribute::DeviceAdminPower,
                        Value::power(*on),
                        SimTime(when),
                        AppId::new("monitor"),
                    )],
                })
                .unwrap();
        }
        ChurnOp::Counter { pod, agg, val } => {
            storage
                .write(WriteRequest {
                    pool: Pool::Observed,
                    rows: vec![NetworkState::new(
                        entity(pod, agg),
                        Attribute::DeviceCpuUtilization,
                        Value::text(format!("cpu-{val}")),
                        SimTime(when),
                        AppId::new("monitor"),
                    )],
                })
                .unwrap();
        }
        ChurnOp::Delete { pod, agg } => {
            storage
                .delete(
                    Pool::Observed,
                    vec![StateKey::new(
                        entity(pod, agg),
                        Attribute::DeviceCpuUtilization,
                    )],
                )
                .unwrap();
        }
    }
}

fn write_proposal(stack: &Stack, p: &RandomProposal) {
    let entity = EntityName::device("dc1", format!("agg-{}-{}", p.pod, p.agg));
    let app = AppId::new(format!("app-{}", p.app));
    let (attr, value) = match p.attr_pick {
        0 => (Attribute::DeviceFirmwareVersion, Value::text("9.9")),
        1 => (Attribute::DeviceBootImage, Value::text("img-x")),
        _ => (Attribute::DeviceAdminPower, Value::power(false)),
    };
    let row = NetworkState::new(entity, attr, value, SimTime(p.when), app.clone());
    stack
        .storage
        .write(WriteRequest {
            pool: Pool::Proposed(app),
            rows: vec![row],
        })
        .unwrap();
}

fn receipt_lines(report: &statesman_core::CheckerPassReport) -> Vec<String> {
    let mut lines: Vec<String> = report
        .receipts
        .iter()
        .map(|r| format!("{}|{}|{}", r.app, r.key, r.outcome.tag()))
        .collect();
    lines.sort();
    lines
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The incremental checker (delta reads + columnar mirrors +
    /// blast-radius seed cache) decides exactly what a full-read checker
    /// decides, pass after pass, under proposal load, observed-state
    /// churn, deletes, and a mid-history partition outage.
    #[test]
    fn incremental_checker_matches_full_checker(
        proposals in proptest::collection::vec(proposal_strategy(), 1..18),
        churn in proptest::collection::vec(churn_strategy(), 0..10),
    ) {
        let inc = build_stack(true);
        let full = build_stack(false);
        let rounds = 4usize;
        let mut when = 20_000u64;

        for round in 0..rounds {
            // Identical proposal slices land on both stacks.
            for p in proposals.iter().skip(round).step_by(rounds) {
                write_proposal(&inc, p);
                write_proposal(&full, p);
            }
            // Identical churn between passes.
            for op in churn.iter().skip(round).step_by(rounds) {
                when += 1;
                apply_churn(&inc.storage, op, when);
                apply_churn(&full.storage, op, when);
            }
            // Mid-history outage: both passes fail, the incremental
            // checker's seed cache is invalidated, and the next pass
            // must recover bit-equal.
            if round == 2 {
                inc.storage.set_partition_available(&inc.dc, false);
                full.storage.set_partition_available(&full.dc, false);
                prop_assert!(inc.checker.run_pass(&inc.storage, inc.clock.now()).is_err());
                prop_assert!(full.checker.run_pass(&full.storage, full.clock.now()).is_err());
                inc.storage.set_partition_available(&inc.dc, true);
                full.storage.set_partition_available(&full.dc, true);
            }

            let ri = inc.checker.run_pass(&inc.storage, inc.clock.now()).unwrap();
            let rf = full.checker.run_pass(&full.storage, full.clock.now()).unwrap();
            prop_assert_eq!(ri.proposals_seen, rf.proposals_seen, "round {}", round);
            prop_assert_eq!(ri.accepted, rf.accepted, "round {}", round);
            prop_assert_eq!(ri.rejected, rf.rejected, "round {}", round);
            prop_assert_eq!(ri.already_satisfied, rf.already_satisfied, "round {}", round);
            prop_assert_eq!(ri.ts_pruned, rf.ts_pruned, "round {}", round);
            prop_assert_eq!(ri.variables_read, rf.variables_read, "round {}", round);
            prop_assert_eq!(receipt_lines(&ri), receipt_lines(&rf), "round {}", round);
        }

        // Final pool contents are bit-equal.
        for pool in [Pool::Observed, Pool::Target] {
            prop_assert_eq!(
                full_sorted(&inc.storage, &inc.dc, pool.clone()),
                full_sorted(&full.storage, &full.dc, pool)
            );
        }
    }
}

/// Regression (stale cache after compaction): a checker holding columnar
/// mirrors and a verdict seed from before a change-index compaction must
/// not reuse them against the stale watermark — the snapshot-fallback
/// delta rebuilds the mirror and forces a full reseed. A fresh checker
/// reading the same storage is the oracle.
#[test]
fn checker_cache_evicted_on_compaction_crossing() {
    // The identical history, driven through either stack: a first pass
    // seeds the mirrors and verdict cache, then a burst of distinct OS
    // rows crosses the compaction floor (plus a real health flip the
    // stale seed doesn't know about), then new proposals force a second
    // decision pass. Returns that second pass's report.
    let drive = |stack: &Stack| -> statesman_core::CheckerPassReport {
        write_proposal(
            stack,
            &RandomProposal {
                app: 0,
                pod: 1,
                agg: 1,
                attr_pick: 0,
                when: 100,
            },
        );
        stack
            .checker
            .run_pass(&stack.storage, stack.clock.now())
            .unwrap();

        let mut burst: Vec<NetworkState> = (0..CHANGE_INDEX_CAPACITY as u32 + 10)
            .map(|i| {
                NetworkState::new(
                    EntityName::device("dc1", format!("bulk-{i}")),
                    Attribute::DeviceCpuUtilization,
                    Value::text(format!("load-{i}")),
                    SimTime(200),
                    AppId::new("bulk-writer"),
                )
            })
            .collect();
        burst.push(NetworkState::new(
            EntityName::device("dc1", "agg-2-1"),
            Attribute::DeviceAdminPower,
            Value::power(false),
            SimTime(201),
            AppId::new("monitor"),
        ));
        stack
            .storage
            .write(WriteRequest {
                pool: Pool::Observed,
                rows: burst,
            })
            .unwrap();

        for (app, pod, agg, pick) in [(1u8, 1u32, 2u32, 0u8), (2, 2, 2, 2)] {
            write_proposal(
                stack,
                &RandomProposal {
                    app,
                    pod,
                    agg,
                    attr_pick: pick,
                    when: 300,
                },
            );
        }
        stack
            .checker
            .run_pass(&stack.storage, stack.clock.now())
            .unwrap()
    };

    let stale = build_stack(true);
    let report = drive(&stale);
    let oracle = build_stack(false);
    let want = drive(&oracle);

    assert_eq!(report.proposals_seen, want.proposals_seen);
    assert_eq!(report.accepted, want.accepted);
    assert_eq!(report.rejected, want.rejected);
    assert_eq!(report.already_satisfied, want.already_satisfied);
    assert_eq!(report.variables_read, want.variables_read);
    assert_eq!(receipt_lines(&report), receipt_lines(&want));
    assert_eq!(
        full_sorted(&stale.storage, &stale.dc, Pool::Target),
        full_sorted(&oracle.storage, &oracle.dc, Pool::Target)
    );
}

/// One chaos seed, bit-equal across representations: the standard chaos
/// scenario (quarantines, degraded rounds, command faults) driven through
/// a columnar-state coordinator and a hashmap-state coordinator produces
/// the identical `ScenarioOutcome`.
#[test]
fn chaos_outcome_identical_columnar_vs_hash() {
    use statesman_chaos::ChaosScenario;
    let columnar = {
        let mut s = ChaosScenario::standard(7);
        s.columnar_state = true;
        s.run()
    };
    let hash = {
        let mut s = ChaosScenario::standard(7);
        s.columnar_state = false;
        s.run()
    };
    assert_eq!(
        columnar, hash,
        "chaos outcome diverged between columnar and hashmap state planes"
    );
    assert!(columnar.safety_violations.is_empty());
    assert!(columnar.converged_at.is_some(), "never converged");
}
