//! Ablation: the §6.2 stateless-updater design under injected failures.
//!
//! "When any failure happens in one run of update, the state changes
//! resulted by the failure reflect as a changed OS ... In the next run,
//! the updater picks up the new OS which already includes the failure's
//! impact ... the updater always brings the latest OS towards the TS, no
//! matter what failures have happened in the process."
//!
//! We inject heavy command failures (30% reject + 20% timeout) and show
//! that the rediff-every-round updater still converges the network to the
//! target state — and contrast it with a deliberately *wrong* fire-once
//! updater that stops after its first attempt and never converges.

use statesman_core::{Monitor, Updater};
use statesman_net::{SimClock, SimConfig, SimNetwork};
use statesman_storage::{StorageConfig, StorageService, WriteRequest};
use statesman_topology::DcnSpec;
use statesman_types::{
    AppId, Attribute, DatacenterId, DeviceName, EntityName, NetworkState, Pool, SimDuration, Value,
};

fn setup(seed: u64) -> (SimNetwork, StorageService, statesman_topology::NetworkGraph) {
    let clock = SimClock::new();
    let graph = DcnSpec::tiny("dc1").build();
    let mut cfg = SimConfig::ideal();
    cfg.seed = seed;
    cfg.faults.command_latency_ms = 500;
    cfg.faults.command_failure_prob = 0.3;
    cfg.faults.command_timeout_prob = 0.2;
    let net = SimNetwork::new(&graph, clock.clone(), cfg);
    let storage = StorageService::new(
        [DatacenterId::new("dc1")],
        clock.clone(),
        StorageConfig::default(),
    );
    (net, storage, graph)
}

/// The target: a new boot image on every device (40 changes; with 50%
/// failure odds, one round cannot land them all).
fn write_targets(storage: &StorageService, graph: &statesman_topology::NetworkGraph) -> usize {
    let rows: Vec<NetworkState> = graph
        .nodes()
        .map(|(_, n)| {
            NetworkState::new(
                EntityName::device(n.datacenter.clone(), n.name.clone()),
                Attribute::DeviceBootImage,
                Value::text("golden-image"),
                statesman_types::SimTime::ZERO,
                AppId::new("config-app"),
            )
        })
        .collect();
    let n = rows.len();
    storage
        .write(WriteRequest {
            pool: Pool::Target,
            rows,
        })
        .unwrap();
    n
}

fn converged(net: &SimNetwork) -> bool {
    net.device_names()
        .iter()
        .all(|d| net.device_snapshot(d).unwrap().boot_image == "golden-image")
}

#[test]
fn stateless_updater_converges_under_failures() {
    let (net, storage, graph) = setup(99);
    let monitor = Monitor::new(net.clone(), storage.clone(), graph.clone());
    let updater = Updater::new(net.clone(), storage.clone(), graph.clone());
    monitor.run_round().unwrap();
    let n_targets = write_targets(&storage, &graph);

    let mut rounds = 0;
    let mut total_failures = 0;
    while !converged(&net) {
        rounds += 1;
        assert!(rounds <= 30, "did not converge in 30 rounds");
        let r = updater.run_round().unwrap();
        total_failures += r.commands_failed;
        net.step(SimDuration::from_mins(1));
        monitor.run_round().unwrap();
    }
    assert!(rounds > 1, "failure injection must force retries");
    assert!(total_failures > 0, "failures must actually have occurred");
    println!(
        "converged {n_targets} devices after {rounds} rounds, {total_failures} failed commands"
    );

    // Once converged, the updater goes quiescent.
    let r = updater.run_round().unwrap();
    assert_eq!(r.diffs, 0);
}

#[test]
fn retry_enabled_updater_converges_under_failures() {
    // In-round bounded retry (the robustness extension) composes with the
    // §6.2 cross-round implicit retry: under the same 30% reject + 20%
    // timeout injection, a retry-enabled updater still converges, spends
    // actual in-round retries on the way, and the per-round work stays
    // bounded by the policy's worst-case backoff.
    let (net, storage, graph) = setup(99);
    let monitor = Monitor::new(net.clone(), storage.clone(), graph.clone());
    let policy = statesman_types::RetryPolicy {
        max_attempts: 3,
        base_backoff: SimDuration::from_secs(1),
        max_backoff: SimDuration::from_secs(4),
        jitter_frac: 0.5,
    };
    let updater = Updater::new(net.clone(), storage.clone(), graph.clone()).with_retry(policy);
    monitor.run_round().unwrap();
    write_targets(&storage, &graph);

    let mut rounds = 0;
    let mut total_retries = 0;
    while !converged(&net) {
        rounds += 1;
        assert!(rounds <= 30, "did not converge in 30 rounds");
        let r = updater.run_round().unwrap();
        total_retries += r.retries;
        net.step(SimDuration::from_mins(1));
        monitor.run_round().unwrap();
    }
    assert!(
        total_retries > 0,
        "50% per-command failure odds must exercise the in-round retry path"
    );

    let r = updater.run_round().unwrap();
    assert_eq!(r.diffs, 0);
}

#[test]
fn fire_once_updater_does_not_converge() {
    // The wrong design: issue each command once, remember "done", never
    // rediff. Under the same failure injection it strands devices.
    let (net, storage, graph) = setup(99);
    let monitor = Monitor::new(net.clone(), storage.clone(), graph.clone());
    let updater = Updater::new(net.clone(), storage.clone(), graph.clone());
    monitor.run_round().unwrap();
    write_targets(&storage, &graph);

    // One shot only (the "stateful" updater treats issuance as success).
    let r = updater.run_round().unwrap();
    assert!(r.commands_failed > 0, "seed must produce failures");
    net.step(SimDuration::from_mins(5));

    let stranded: Vec<DeviceName> = net
        .device_names()
        .into_iter()
        .filter(|d| net.device_snapshot(d).unwrap().boot_image != "golden-image")
        .collect();
    assert!(
        !stranded.is_empty(),
        "fire-once updating must strand devices under failures"
    );
}
