//! The thesis test: four loosely coupled applications — switch-upgrade,
//! failure-mitigation, inter-DC TE, and the energy saver — run
//! simultaneously on a two-DC + WAN deployment for a long stretch of
//! simulated time, never talking to each other, each greedy about its own
//! objective. Statesman alone keeps the network safe.
//!
//! Asserted every tick (against simulator ground truth, not the OS):
//!
//! * no pod's ToRs are ever disconnected from the core tier;
//! * every DC pair always keeps at least one usable WAN link;
//! * the per-pod capacity floor (≥ 2 of 4 fabric Aggs implied by the 50%
//!   invariant; here tiny pods with 2 Aggs keep ≥ 1) holds.
//!
//! Asserted at the end:
//!
//! * the upgrade finished its target list;
//! * the flaky link was shut and ticketed;
//! * TE demand is delivered;
//! * each application made progress (no starvation).

use statesman_apps::{
    upgrade::agg_pods_of, EnergyConfig, EnergySaverApp, FailureMitigationApp, InterDcTeApp,
    ManagementApp, MitigationConfig, SwitchUpgradeApp, TeConfig, TrafficDemand, UpgradeConfig,
    UpgradePlan,
};
use statesman_core::{Coordinator, CoordinatorConfig, StatesmanClient};
use statesman_net::{FaultEvent, SimClock, SimConfig, SimNetwork};
use statesman_storage::{StorageConfig, StorageService};
use statesman_topology::{graph::connected, DcnSpec, DeploymentSpec, HealthView, WanSpec};
use statesman_types::{DatacenterId, DeviceName, DeviceRole, LinkName, SimDuration, SimTime};

fn ground_truth_health(net: &SimNetwork) -> HealthView {
    let mut h = HealthView::all_up();
    for d in net.device_names() {
        if !net.device_operational(&d) {
            h.set_device_down(d);
        }
    }
    for l in net.link_names() {
        if !net.link_oper_up(&l) {
            h.set_link_down(l);
        }
    }
    h
}

#[test]
fn four_applications_coexist_safely() {
    let clock = SimClock::new();
    let dep = DeploymentSpec {
        dcns: vec![DcnSpec::tiny("dc1"), DcnSpec::tiny("dc2")],
        wan: Some(WanSpec {
            dc_names: vec!["dc1".into(), "dc2".into()],
            border_routers_per_dc: 2,
            wan_link_mbps: 100_000.0,
        }),
        br_core_mbps: 100_000.0,
    };
    let graph = dep.build();

    let flaky = LinkName::between("dc1.tor-2-1", "dc1.agg-2-1");
    let mut sim_cfg = SimConfig::ideal();
    sim_cfg.faults.command_latency_ms = 1_000;
    sim_cfg.faults.reboot_window_ms = 4 * 60_000;
    sim_cfg.faults = sim_cfg.faults.with_event(
        SimTime::from_mins(30),
        FaultEvent::SetFcsErrorRate {
            link: flaky.clone(),
            rate: 0.05,
        },
    );
    let net = SimNetwork::new(&graph, clock.clone(), sim_cfg);
    let storage = StorageService::new(
        [DatacenterId::new("dc1"), DatacenterId::new("dc2")],
        clock.clone(),
        StorageConfig::default(),
    );
    let statesman = Coordinator::new(
        &graph,
        net.clone(),
        storage.clone(),
        CoordinatorConfig::default(),
    );

    // --- the four applications, each with its own client identity ---
    let mut upgrade = SwitchUpgradeApp::new(
        StatesmanClient::new("switch-upgrade", storage.clone(), clock.clone()),
        UpgradeConfig {
            target_version: "8.1".into(),
            plan: UpgradePlan::PodByPod {
                datacenter: DatacenterId::new("dc1"),
                pods: agg_pods_of(&graph, &DatacenterId::new("dc1")),
            },
        },
    );
    let mut mitigation = FailureMitigationApp::new(
        StatesmanClient::new("failure-mitigation", storage.clone(), clock.clone()),
        MitigationConfig {
            datacenters: vec![DatacenterId::new("dc1"), DatacenterId::new("dc2")],
            fcs_threshold: 0.01,
            persistence: 2,
        },
    );
    let wan_spec = WanSpec {
        dc_names: vec!["dc1".into(), "dc2".into()],
        border_routers_per_dc: 2,
        wan_link_mbps: 100_000.0,
    };
    let mut te = InterDcTeApp::new(
        StatesmanClient::new("inter-dc-te", storage.clone(), clock.clone()),
        TeConfig::from_wan_spec(
            &wan_spec,
            vec![
                TrafficDemand::new("dc1", "dc2", 40_000.0),
                TrafficDemand::new("dc2", "dc1", 40_000.0),
            ],
        ),
    );
    // Energy saver works dc2 (upgrade works dc1) so both power apps run.
    let mut energy = EnergySaverApp::new(
        StatesmanClient::new("energy-saver", storage.clone(), clock.clone()),
        EnergyConfig {
            datacenter: DatacenterId::new("dc2"),
            pods: agg_pods_of(&graph, &DatacenterId::new("dc2")),
            sleep_below_utilization: 0.1,
            wake_above_utilization: 0.6,
            persistence: 2,
        },
    );
    // --- run 40 rounds of 5 minutes = 200 simulated minutes ---
    let mut energy_slept = false;
    for round in 0..40 {
        upgrade.step().unwrap();
        mitigation.step().unwrap();
        te.step().unwrap();
        energy.step().unwrap();
        statesman
            .tick_and_advance(SimDuration::from_millis(1))
            .unwrap();
        net.offer_flows(te.flow_specs());
        net.step(SimDuration::from_mins(5));

        if !energy.sleeping().is_empty() {
            energy_slept = true;
        }

        // ---- per-tick ground-truth safety ----
        let h = ground_truth_health(&net);
        // 1. No up-ToR disconnected from its cores.
        for (id, info) in graph.nodes() {
            if info.role == DeviceRole::ToR && h.device_up(&info.name) {
                let core_name = DeviceName::new(format!("{}.core-1", info.datacenter));
                let core = graph.node_id(&core_name).unwrap();
                // Either core may be down briefly? Cores are never touched
                // by these apps, so core-1 is always up.
                assert!(
                    connected(&graph, &h, id, core),
                    "round {round}: {} disconnected",
                    info.name
                );
            }
        }
        // 2. Every DC pair keeps a usable WAN link.
        let usable_wan = graph
            .edges()
            .filter(|(_, e)| e.datacenter.is_wan() && h.link_usable(&e.name))
            .count();
        assert!(usable_wan >= 1, "round {round}: WAN severed");
        // 3. Per-pod floor: at least 1 of 2 Aggs up in every tiny pod.
        for dc in ["dc1", "dc2"] {
            let dcid = DatacenterId::new(dc);
            for pod in graph.pods_in(&dcid) {
                let up_aggs = graph
                    .devices_in_pod(&dcid, pod)
                    .into_iter()
                    .filter(|&id| {
                        graph.node(id).role == DeviceRole::Agg && h.device_up(&graph.node(id).name)
                    })
                    .count();
                assert!(up_aggs >= 1, "round {round}: pod {dc}/{pod} lost all Aggs");
            }
        }
    }

    // ---- end-state progress: nobody starved ----
    assert!(
        upgrade.is_done(),
        "upgrade finished: {:?}",
        upgrade.status()
    );
    for pod in 1..=2 {
        for a in 1..=2 {
            let name = DeviceName::new(format!("dc1.agg-{pod}-{a}"));
            assert_eq!(
                net.device_snapshot(&name).unwrap().observed_firmware(),
                "8.1",
                "{name}"
            );
        }
    }
    assert_eq!(mitigation.tickets().len(), 1, "flaky link ticketed");
    assert!(!net.link_oper_up(&flaky), "flaky link shut");
    assert!(energy_slept, "energy saver made progress in dc2");
    let report = net.traffic_report();
    assert!(
        report.delivered_mbps > 79_000.0,
        "TE delivers the demand: {report:?}"
    );
}
