//! Stability under churn: a flapping link must not destabilize Statesman.
//!
//! The paper's motivation (§1): "at any given moment, multiple switches
//! experience component failures" — the service must stay predictable
//! while the network misbehaves underneath it. This test flaps a link up
//! and down across many monitor rounds and asserts:
//!
//! * the OS tracks the flapping truthfully (oper status follows);
//! * the TS stays **empty** — no application proposed anything, so the
//!   checker must not manufacture state from churn;
//! * the updater stays quiescent (zero commands) — flapping is an
//!   observation, not a difference to reconcile;
//! * failure-mitigation, watching FCS (not oper status), does not shoot
//!   the flapping link down.

use statesman_apps::{FailureMitigationApp, ManagementApp, MitigationConfig};
use statesman_core::{Coordinator, CoordinatorConfig, StatesmanClient};
use statesman_net::{FaultEvent, SimClock, SimConfig, SimNetwork};
use statesman_storage::{StorageConfig, StorageService};
use statesman_topology::DcnSpec;
use statesman_types::{
    Attribute, DatacenterId, EntityName, LinkName, Pool, SimDuration, SimTime, StateKey,
};

#[test]
fn flapping_link_does_not_destabilize_the_service() {
    let clock = SimClock::new();
    let graph = DcnSpec::tiny("dc1").build();
    let link = LinkName::between("tor-1-1", "agg-1-1");

    // Flap every 7 minutes: cut at 7, 21, 35...; restore at 14, 28, 42...
    let mut cfg = SimConfig::ideal();
    for i in 1..=8u64 {
        cfg.faults = cfg.faults.with_event(
            SimTime::from_mins(7 * i),
            FaultEvent::SetPhysicalLinkState {
                link: link.clone(),
                cut: i % 2 == 1,
            },
        );
    }
    let net = SimNetwork::new(&graph, clock.clone(), cfg);
    let storage = StorageService::new(
        [DatacenterId::new("dc1")],
        clock.clone(),
        StorageConfig::default(),
    );
    let statesman = Coordinator::new(
        &graph,
        net.clone(),
        storage.clone(),
        CoordinatorConfig::default(),
    );
    let mut mitigation = FailureMitigationApp::new(
        StatesmanClient::new("failure-mitigation", storage.clone(), clock.clone()),
        MitigationConfig {
            datacenters: vec![DatacenterId::new("dc1")],
            fcs_threshold: 0.01,
            persistence: 2,
        },
    );

    let oper_key = StateKey::new(
        EntityName::link_named("dc1", link.clone()),
        Attribute::LinkOperStatus,
    );
    let mut saw_down = false;
    let mut saw_up_again = false;
    let mut total_commands = 0;
    for round in 0..12 {
        mitigation.step().unwrap();
        let report = statesman
            .tick_and_advance(SimDuration::from_mins(5))
            .unwrap();
        total_commands += report.updater.commands_applied + report.updater.commands_failed;

        // OS tracks the truth.
        let observed = storage
            .read_row(&Pool::Observed, &oper_key)
            .unwrap()
            .map(|r| r.value.as_oper().unwrap().is_up());
        let actual = net.link_oper_up(&link);
        if round > 0 {
            // The OS row was written by the monitor at the start of this
            // round, before the advance — compare against what the round
            // saw, tracked via the flap schedule at multiples of 7 min.
            let _ = actual;
        }
        if observed == Some(false) {
            saw_down = true;
        }
        if saw_down && observed == Some(true) {
            saw_up_again = true;
        }
    }

    assert!(saw_down, "the OS must have observed the flap");
    assert!(saw_up_again, "the OS must have observed recovery");
    // No proposals, no TS, no commands: churn is observed, not acted on.
    assert_eq!(
        storage.pool_len(&DatacenterId::new("dc1"), &Pool::Target),
        0,
        "TS must stay empty under pure churn"
    );
    assert_eq!(total_commands, 0, "updater must stay quiescent");
    assert!(
        mitigation.tickets().is_empty(),
        "FCS watcher must not react to oper flaps"
    );
}
