//! Round-engine determinism: the fork-join parallel stages (parallel
//! invariant evaluation in the checker, wave-parallel rendering and
//! in-flight projection in the updater) must be **bit-identical** to the
//! serial paths at every worker count. All effectful sim interaction —
//! command issue order, RNG draws, storage submits — stays
//! single-threaded by contract (see DESIGN.md "Round engine"); only pure
//! stages fan out, and their results merge in index order. So the same
//! inputs at 1, 2, and 8 worker threads must produce the same
//! `RoundReport`s, receipt streams, and chaos outcomes.

use proptest::prelude::*;
use statesman_core::{Coordinator, CoordinatorConfig, RoundReport};
use statesman_net::{SimClock, SimConfig, SimNetwork};
use statesman_storage::{StorageService, WriteRequest};
use statesman_topology::DcnSpec;
use statesman_types::{AppId, Attribute, EntityName, NetworkState, Pool, SimDuration, Value};

/// Every decision-bearing field of a round, none of the wall-clock ones.
/// Timings (`elapsed`, the stage durations, `SeedStats` milliseconds)
/// legitimately differ run to run; everything here must not.
fn digest(r: &RoundReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "monitor rows={} suppressed={} quarantined={} polled={} seed={:?}\n",
        r.rows_written,
        r.writes_suppressed,
        r.monitor.devices_quarantined,
        r.monitor.devices_polled,
        r.monitor.seed.map(|s| (s.rows, s.partitions)),
    ));
    for c in &r.checkers {
        out.push_str(&format!(
            "checker group={} seen={} accepted={} rejected={} satisfied={} \
             ts_pruned={} quarantine_rejected={} vars_read={}\n",
            c.group,
            c.proposals_seen,
            c.accepted,
            c.rejected,
            c.already_satisfied,
            c.ts_pruned,
            c.quarantine_rejected,
            c.variables_read,
        ));
        for rc in &c.receipts {
            out.push_str(&format!(
                "  receipt app={:?} key={:?} proposed={:?} outcome={:?} at={:?}\n",
                rc.app, rc.key, rc.proposed, rc.outcome, rc.decided_at
            ));
        }
    }
    out.push_str(&format!(
        "updater diffs={} applied={} failed={} unrenderable={} retries={} \
         breaker_skips={} quarantine_skips={} breakers_opened={} \
         plan={}w{}x{} inflight_rej={} rollbacks={} sim_io={:?}\n",
        r.updater.diffs,
        r.updater.commands_applied,
        r.updater.commands_failed,
        r.updater.unrenderable,
        r.updater.retries,
        r.updater.breaker_skips,
        r.updater.quarantine_skips,
        r.updater.breakers_opened,
        r.updater.plan_steps,
        r.updater.plan_waves,
        r.updater.plan_max_width,
        r.updater.plan_inflight_rejections,
        r.updater.plan_rollbacks,
        r.updater.sim_io,
    ));
    out.push_str(&format!(
        "round skipped={:?} delta_reads={} fallbacks={} watermark_lag={} retries={}\n",
        r.skipped_groups, r.delta_reads, r.full_fallbacks, r.watermark_lag, r.storage_retries
    ));
    out
}

/// One proptest-chosen target-state change on the tiny fabric.
#[derive(Debug, Clone)]
struct Churn {
    pod: u32,
    agg: u32,
    attr_pick: u8,
    tag: u8,
}

fn churn_strategy() -> impl Strategy<Value = Churn> {
    (1..=2u32, 1..=2u32, 0..3u8, 0..8u8).prop_map(|(pod, agg, attr_pick, tag)| Churn {
        pod,
        agg,
        attr_pick,
        tag,
    })
}

fn churn_row(c: &Churn, at: statesman_types::SimTime) -> NetworkState {
    let entity = EntityName::device("dc1", format!("agg-{}-{}", c.pod, c.agg));
    let (attr, value) = match c.attr_pick {
        0 => (
            Attribute::DeviceFirmwareVersion,
            Value::text(format!("9.{}", c.tag)),
        ),
        1 => (
            Attribute::DeviceBootImage,
            Value::text(format!("img-{}", c.tag)),
        ),
        _ => (
            Attribute::DeviceAdminPower,
            Value::power(c.tag.is_multiple_of(2)),
        ),
    };
    NetworkState::new(entity, attr, value, at, AppId::new("round-engine-prop"))
}

/// Drive a fresh coordinator at `workers` worker threads through a seed
/// round plus one churn round per entry, returning the digest stream.
fn run_rounds(workers: usize, churn: &[Vec<Churn>]) -> Vec<String> {
    let clock = SimClock::new();
    let graph = DcnSpec::tiny("dc1").build();
    let net = SimNetwork::new(&graph, clock.clone(), SimConfig::ideal());
    let storage = StorageService::single_dc("dc1", clock.clone());
    let coord = Coordinator::new(
        &graph,
        net,
        storage.clone(),
        CoordinatorConfig {
            worker_threads: Some(workers),
            ..Default::default()
        },
    );
    let mut out = vec![digest(&coord.tick().expect("seed round"))];
    for round in churn {
        let rows: Vec<NetworkState> = round.iter().map(|c| churn_row(c, clock.now())).collect();
        if !rows.is_empty() {
            storage
                .write(WriteRequest {
                    pool: Pool::Target,
                    rows,
                })
                .expect("write churn TS");
        }
        out.push(digest(
            &coord
                .tick_and_advance(SimDuration::from_mins(1))
                .expect("churn round"),
        ));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The core property: whatever target churn the rounds see, the
    /// per-round digests are identical at 1 (fully serial), 2, and 8
    /// worker threads.
    #[test]
    fn round_reports_identical_across_worker_counts(
        churn in proptest::collection::vec(
            proptest::collection::vec(churn_strategy(), 0..4), 1..4)
    ) {
        let serial = run_rounds(1, &churn);
        for workers in [2usize, 8] {
            let parallel = run_rounds(workers, &churn);
            prop_assert_eq!(
                &serial, &parallel,
                "round digests diverged at {} workers", workers
            );
        }
    }
}

/// The chaos-grade version: the standard multi-layer fault scenario
/// (device/mgmt/partition outages, command faults, quarantines) across
/// the five standard seeds, run at 1, 2, and 8 worker threads — every
/// `ScenarioOutcome` field must match the serial run exactly.
#[test]
fn chaos_outcomes_identical_across_worker_counts() {
    use statesman_chaos::ChaosScenario;
    for seed in 1..=5u64 {
        let serial = {
            let mut s = ChaosScenario::standard(seed);
            s.worker_threads = Some(1);
            s.run()
        };
        assert!(
            serial.safety_violations.is_empty(),
            "seed {seed}: safety violations: {:?}",
            serial.safety_violations
        );
        for workers in [2usize, 8] {
            let parallel = {
                let mut s = ChaosScenario::standard(seed);
                s.worker_threads = Some(workers);
                s.run()
            };
            assert_eq!(
                serial, parallel,
                "seed {seed}: chaos outcome diverged at {workers} worker threads"
            );
        }
    }
}
