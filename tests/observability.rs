//! Integration test for the observability subsystem end to end: a full
//! Statesman instance runs five rounds (with a device crash injected so a
//! quarantine forms), and everything is verified over the real wire —
//! `/v1/metrics` reports non-zero series from every layer, `/v1/status`'s
//! last trace matches the coordinator's own `RoundReport` accounting,
//! counters are monotonic across rounds, and the deprecated Table-3
//! aliases answer with successor pointers while bumping the deprecation
//! counter.

use statesman::core::{Coordinator, CoordinatorConfig, StatesmanClient};
use statesman::httpapi::{ApiClient, ApiServer, ServerConfig, StatusResponse};
use statesman::net::{SimClock, SimConfig, SimNetwork};
use statesman::obs::Obs;
use statesman::prelude::*;
use statesman::storage::{StorageConfig, StorageService};
use statesman::topology::DcnSpec;
use std::collections::BTreeMap;

/// Parse the text exposition into name → value (counters and gauges).
fn parse_metrics(text: &str) -> BTreeMap<String, f64> {
    text.lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let mut parts = l.split_whitespace();
            Some((parts.next()?.to_string(), parts.next()?.parse().ok()?))
        })
        .collect()
}

#[test]
fn five_rounds_light_up_every_layer_over_the_wire() {
    let clock = SimClock::new();
    let dc = DatacenterId::new("dc1");
    let graph = DcnSpec::tiny("dc1").build();
    let mut sim = SimConfig::ideal();
    sim.faults.command_latency_ms = 200;
    // Crash agg-2-2 early and keep it down past round 5, so the monitor
    // quarantines it and the quarantine is visible in the final status.
    sim.faults = sim.faults.with_device_outage(
        &DeviceName::new("agg-2-2"),
        SimTime::from_mins(1),
        SimDuration::from_mins(30),
    );
    let net = SimNetwork::new(&graph, clock.clone(), sim);
    let storage = StorageService::new([dc.clone()], clock.clone(), StorageConfig::default());
    let obs = Obs::new();
    let coordinator = Coordinator::new(
        &graph,
        net,
        storage.clone(),
        CoordinatorConfig {
            obs: Some(obs.clone()),
            quarantine_cooldown: Some(SimDuration::from_mins(10)),
            ..CoordinatorConfig::default()
        },
    );
    let app = StatesmanClient::new("obs-app", storage.clone(), clock.clone());

    // Serve the same handle while the loop runs, like a real deployment.
    let server = ApiServer::start_with_obs(storage, obs.clone()).unwrap();
    let api = ApiClient::new(server.addr());

    let mut last_report = None;
    let mut prev: BTreeMap<String, f64> = BTreeMap::new();
    for round in 0..5 {
        if round == 1 {
            // A proposal the checker will accept and the updater realize.
            app.propose([(
                EntityName::device("dc1", "agg-1-1"),
                Attribute::DeviceBootImage,
                Value::text("golden"),
            )])
            .unwrap();
        }
        let report = coordinator
            .tick_and_advance(SimDuration::from_mins(1))
            .unwrap();

        // Counters scraped over HTTP must be monotonic round over round.
        let text = String::from_utf8(api.raw_get("/v1/metrics").unwrap()).unwrap();
        let cur = parse_metrics(&text);
        for (name, value) in &prev {
            if name.ends_with("_total") {
                assert!(
                    cur.get(name).copied().unwrap_or(0.0) >= *value,
                    "{name} went backwards: {value} -> {:?}",
                    cur.get(name)
                );
            }
        }
        prev = cur;
        last_report = Some(report);
    }
    let last_report = last_report.unwrap();

    // Every instrumented layer reports a non-zero series.
    for series in [
        "coordinator_rounds_total",
        "monitor_devices_polled_total",
        "checker_proposals_seen_total",
        "checker_accepted_total",
        "updater_commands_applied_total",
        "storage_reads_total",
        "storage_writes_total",
        "net_commands_accepted_total",
        "httpapi_bytes_sent_total",
    ] {
        assert!(
            prev.get(series).copied().unwrap_or(0.0) > 0.0,
            "{series} should be non-zero after 5 rounds: {prev:?}"
        );
    }
    assert_eq!(prev["coordinator_rounds_total"], 5.0);
    // The labeled request counter is present for the metrics route itself.
    assert!(prev
        .keys()
        .any(|k| k.starts_with("httpapi_requests_total{") && k.contains("/v1/metrics")));

    // The JSON exposition carries the same registry.
    let json = String::from_utf8(api.raw_get("/v1/metrics?format=json").unwrap()).unwrap();
    assert!(json.contains("coordinator_rounds_total"));

    // /v1/status: the last trace is the coordinator's own accounting.
    let status: StatusResponse =
        serde_json::from_slice(&api.raw_get("/v1/status?rounds=5").unwrap()).unwrap();
    assert_eq!(status.traces.len(), 5);
    let last = status.traces.last().unwrap();
    assert_eq!(last.round, 4);
    assert_eq!(
        last.latency_breakdown_ms(),
        last_report.latency_breakdown_ms(),
        "trace must match RoundReport::latency_breakdown_ms"
    );
    assert_eq!(
        last.proposals_seen,
        last.accepted + last.rejected + last.already_satisfied,
        "checker accounting identity"
    );
    assert_eq!(status.status.last_round, Some(4));

    // The injected crash shows up as a quarantine in the status board.
    assert!(
        status.status.quarantined.iter().any(|d| d == "agg-2-2"),
        "crashed device should be quarantined in status: {:?}",
        status.status
    );
    assert!(last.quarantined.iter().any(|d| d == "agg-2-2"));
}

#[test]
fn legacy_aliases_deprecate_but_keep_answering() {
    let clock = SimClock::new();
    let dc = DatacenterId::new("dc1");
    let graph = DcnSpec::tiny("dc1").build();
    let net = SimNetwork::new(&graph, clock.clone(), SimConfig::ideal());
    let storage = StorageService::new([dc.clone()], clock.clone(), StorageConfig::default());
    let obs = Obs::new();
    Coordinator::new(
        &graph,
        net,
        storage.clone(),
        CoordinatorConfig {
            obs: Some(obs.clone()),
            ..CoordinatorConfig::default()
        },
    )
    .tick_and_advance(SimDuration::from_mins(1))
    .unwrap();
    // Sunset by default: a plain server answers the alias 410 Gone with
    // a successor link.
    let plain = ApiServer::start(storage.clone()).unwrap();
    let gone = ApiClient::new(plain.addr())
        .raw_request("GET", "/healthz", &[])
        .unwrap();
    assert_eq!(gone.status, 410);
    assert_eq!(
        gone.header("link"),
        Some("</v1/health>; rel=\"successor-version\"")
    );
    drop(plain);

    // Opting in restores the aliases for one more deprecation cycle.
    let server = ApiServer::start_with_config(
        storage,
        ServerConfig {
            legacy_aliases: true,
            ..ServerConfig::default()
        },
        Some(obs.clone()),
    )
    .unwrap();
    let api = ApiClient::new(server.addr());

    // The Table-3 spelling still answers with the same rows as /v1/read…
    let target = "?Datacenter=dc1&Pool=OS&Freshness=up-to-date";
    let legacy = api
        .raw_request("GET", &format!("/NetworkState/Read{target}"), &[])
        .unwrap();
    assert_eq!(legacy.status, 200);
    let v1 = api
        .raw_request("GET", &format!("/v1/read{target}"), &[])
        .unwrap();
    assert_eq!(legacy.body, v1.body);

    // …plus the deprecation marker and a successor pointer.
    assert_eq!(legacy.header("deprecation"), Some("true"));
    assert_eq!(
        legacy.header("link"),
        Some("</v1/read>; rel=\"successor-version\"")
    );

    // And each legacy hit is counted, labeled by route.
    let text = String::from_utf8(api.raw_get("/v1/metrics").unwrap()).unwrap();
    let metrics = parse_metrics(&text);
    let deprecated: f64 = metrics
        .iter()
        .filter(|(k, _)| k.starts_with("httpapi_deprecated_total"))
        .map(|(_, v)| *v)
        .sum();
    assert_eq!(deprecated, 1.0, "exactly one legacy hit: {metrics:?}");
    assert!(metrics
        .keys()
        .any(|k| k.starts_with("httpapi_deprecated_total{") && k.contains("/NetworkState/Read")));
}
