//! Integration test: a multi-datacenter deployment (two fabrics + WAN),
//! exercising impact-group isolation and the full control loop across
//! partitioned storage rings.

use statesman_core::{Coordinator, CoordinatorConfig, StatesmanClient};
use statesman_net::{SimClock, SimConfig, SimNetwork};
use statesman_storage::{StorageConfig, StorageService};
use statesman_topology::{DcnSpec, DeploymentSpec, WanSpec};
use statesman_types::{Attribute, DatacenterId, EntityName, SimDuration, Value, WriteOutcome};

fn deployment() -> (
    statesman_topology::NetworkGraph,
    SimNetwork,
    StorageService,
    SimClock,
) {
    let clock = SimClock::new();
    let dep = DeploymentSpec {
        dcns: vec![DcnSpec::tiny("dc1"), DcnSpec::tiny("dc2")],
        wan: Some(WanSpec {
            dc_names: vec!["dc1".into(), "dc2".into()],
            border_routers_per_dc: 2,
            wan_link_mbps: 100_000.0,
        }),
        br_core_mbps: 100_000.0,
    };
    let graph = dep.build();
    let mut cfg = SimConfig::ideal();
    cfg.faults.command_latency_ms = 500;
    cfg.faults.reboot_window_ms = 2 * 60_000;
    let net = SimNetwork::new(&graph, clock.clone(), cfg);
    let storage = StorageService::new(
        [DatacenterId::new("dc1"), DatacenterId::new("dc2")],
        clock.clone(),
        StorageConfig::default(),
    );
    (graph, net, storage, clock)
}

#[test]
fn impact_groups_cover_the_deployment() {
    let (graph, net, storage, _clock) = deployment();
    let coord = Coordinator::new(&graph, net, storage, CoordinatorConfig::default());
    let groups = coord.groups();
    assert!(groups.contains(&"dc:dc1".to_string()));
    assert!(groups.contains(&"dc:dc2".to_string()));
    assert!(groups.contains(&"wan".to_string()));
}

#[test]
fn groups_decide_independently() {
    let (graph, net, storage, clock) = deployment();
    let coord = Coordinator::new(
        &graph,
        net.clone(),
        storage.clone(),
        CoordinatorConfig::default(),
    );
    coord.tick_and_advance(SimDuration::from_mins(1)).unwrap();

    let app = StatesmanClient::new("switch-upgrade", storage, clock);
    // dc1: an over-aggressive pair that must be partially rejected
    // (tiny fabric: taking both Aggs of a pod violates 50% capacity).
    // dc2: a safe single upgrade that must be accepted regardless.
    app.propose([
        (
            EntityName::device("dc1", "dc1.agg-1-1"),
            Attribute::DeviceFirmwareVersion,
            Value::text("7.0"),
        ),
        (
            EntityName::device("dc1", "dc1.agg-1-2"),
            Attribute::DeviceFirmwareVersion,
            Value::text("7.0"),
        ),
        (
            EntityName::device("dc2", "dc2.agg-1-1"),
            Attribute::DeviceFirmwareVersion,
            Value::text("7.0"),
        ),
    ])
    .unwrap();
    let round = coord.tick_and_advance(SimDuration::from_mins(1)).unwrap();
    assert_eq!(round.accepted(), 2, "one dc1 Agg + the dc2 Agg");
    assert_eq!(round.rejected(), 1, "the second dc1 Agg");

    // The dc2 acceptance was not contingent on dc1's violation.
    let receipts = app.take_receipts().unwrap();
    let dc2_receipt = receipts
        .iter()
        .find(|r| r.key.entity.datacenter == DatacenterId::new("dc2"))
        .unwrap();
    assert_eq!(dc2_receipt.outcome, WriteOutcome::Accepted);
}

#[test]
fn upgrades_converge_in_both_dcs() {
    let (graph, net, storage, clock) = deployment();
    let coord = Coordinator::new(
        &graph,
        net.clone(),
        storage.clone(),
        CoordinatorConfig::default(),
    );
    coord.tick_and_advance(SimDuration::from_mins(1)).unwrap();
    let app = StatesmanClient::new("switch-upgrade", storage, clock);
    app.propose([
        (
            EntityName::device("dc1", "dc1.agg-2-1"),
            Attribute::DeviceFirmwareVersion,
            Value::text("7.0"),
        ),
        (
            EntityName::device("dc2", "dc2.agg-2-2"),
            Attribute::DeviceFirmwareVersion,
            Value::text("7.0"),
        ),
    ])
    .unwrap();
    for _ in 0..4 {
        coord.tick_and_advance(SimDuration::from_mins(5)).unwrap();
    }
    assert_eq!(
        net.device_snapshot(&"dc1.agg-2-1".into())
            .unwrap()
            .observed_firmware(),
        "7.0"
    );
    assert_eq!(
        net.device_snapshot(&"dc2.agg-2-2".into())
            .unwrap()
            .observed_firmware(),
        "7.0"
    );
}

#[test]
fn ps_rows_are_consumed_only_by_their_impact_group() {
    // One application proposes against a fabric device (dc1 group) and a
    // border router (WAN group) in the same PS. Each checker consumes
    // exactly its own group's rows; running only one group must leave the
    // other group's proposal intact for its own checker.
    use statesman_core::groups::ImpactGroup;
    use statesman_core::{Checker, CheckerConfig, MergePolicy, Monitor};

    let (graph, net, storage, clock) = deployment();
    Monitor::new(net, storage.clone(), graph.clone())
        .run_round()
        .unwrap();
    let app = StatesmanClient::new("mixed-app", storage.clone(), clock.clone());
    app.propose([
        (
            EntityName::device("dc1", "dc1.agg-1-1"),
            Attribute::DeviceBootImage,
            Value::text("img-a"),
        ),
        (
            EntityName::device("dc1", "br-1"),
            Attribute::DeviceBootImage,
            Value::text("img-b"),
        ),
    ])
    .unwrap();

    // Run only the dc1 checker.
    let dc1_checker = Checker::new(
        CheckerConfig {
            group: ImpactGroup::Datacenter(DatacenterId::new("dc1")),
            policy: MergePolicy::PriorityLock,
        },
        graph.clone(),
    );
    let r = dc1_checker.run_pass(&storage, clock.now()).unwrap();
    assert_eq!(r.proposals_seen, 1, "only the fabric row");
    assert_eq!(r.accepted, 1);

    // The border-router row is still pending in the PS pool.
    let remaining = storage.pool_len(
        &DatacenterId::new("dc1"),
        &statesman_types::Pool::Proposed(app.app().clone()),
    );
    assert_eq!(remaining, 1, "WAN-group row left for the WAN checker");

    // The WAN checker picks it up.
    let wan_checker = Checker::new(
        CheckerConfig {
            group: ImpactGroup::Wan,
            policy: MergePolicy::PriorityLock,
        },
        graph,
    );
    let r = wan_checker.run_pass(&storage, clock.now()).unwrap();
    assert_eq!(r.proposals_seen, 1);
    assert_eq!(r.accepted, 1);
    let remaining = storage.pool_len(
        &DatacenterId::new("dc1"),
        &statesman_types::Pool::Proposed(app.app().clone()),
    );
    assert_eq!(remaining, 0);
}

#[test]
fn border_router_locks_live_in_the_wan_group() {
    let (graph, net, storage, clock) = deployment();
    let coord = Coordinator::new(&graph, net, storage.clone(), CoordinatorConfig::default());
    coord.tick_and_advance(SimDuration::from_mins(1)).unwrap();

    let te = StatesmanClient::new("inter-dc-te", storage.clone(), clock.clone());
    let upg = StatesmanClient::new("switch-upgrade", storage, clock);
    let br = EntityName::device("dc1", "br-1");

    te.acquire_lock(&br, statesman_types::LockPriority::Low, None)
        .unwrap();
    coord.tick_and_advance(SimDuration::from_mins(1)).unwrap();
    assert!(te.holds_lock(&br).unwrap());

    upg.acquire_lock(&br, statesman_types::LockPriority::High, None)
        .unwrap();
    coord.tick_and_advance(SimDuration::from_mins(1)).unwrap();
    assert!(upg.holds_lock(&br).unwrap());
    assert!(!te.holds_lock(&br).unwrap());
}

#[test]
fn parallel_checkers_match_serial() {
    // Groups are independent; running their passes on threads must
    // produce the same decisions as running them sequentially.
    let run = |parallel: bool| {
        let (graph, net, storage, clock) = deployment();
        let coord = Coordinator::new(
            &graph,
            net,
            storage.clone(),
            CoordinatorConfig {
                parallel_checkers: parallel,
                ..Default::default()
            },
        );
        coord.tick_and_advance(SimDuration::from_mins(1)).unwrap();
        let app = StatesmanClient::new("mixed", storage.clone(), clock);
        app.propose([
            (
                EntityName::device("dc1", "dc1.agg-1-1"),
                Attribute::DeviceFirmwareVersion,
                Value::text("7.0"),
            ),
            (
                EntityName::device("dc2", "dc2.agg-1-1"),
                Attribute::DeviceFirmwareVersion,
                Value::text("7.0"),
            ),
            (
                EntityName::device("dc1", "br-1"),
                Attribute::DeviceBootImage,
                Value::text("img"),
            ),
        ])
        .unwrap();
        let round = coord.tick_and_advance(SimDuration::from_mins(1)).unwrap();
        let mut receipts: Vec<String> = app
            .take_receipts()
            .unwrap()
            .iter()
            .map(|r| format!("{}|{}", r.key, r.outcome.tag()))
            .collect();
        receipts.sort();
        (round.accepted(), round.rejected(), receipts)
    };
    assert_eq!(run(false), run(true));
}
