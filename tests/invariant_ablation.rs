//! Ablation: the same greedy applications on the same fabric, with the
//! checker's invariants switched off — quantifying what the guardian is
//! worth.
//!
//! With invariants, the Fig-8 scenario keeps every ToR pair at ≥ 50% of
//! baseline capacity throughout the rollout. Without them, the greedy
//! upgrade application (which proposes every pending Agg of the current
//! pod in parallel) takes whole pods down at once and capacity collapses
//! to zero for the affected pairs — the Fig-2 disaster at scale.

use statesman_bench::fig8::{Fig8Config, Fig8Scenario};
use statesman_types::{SimDuration, SimTime};

fn trimmed(enforce: bool) -> Fig8Config {
    Fig8Config {
        enforce_invariants: enforce,
        reboot_window: SimDuration::from_mins(6),
        horizon: SimDuration::from_mins(120),
        fault_at: SimTime::from_mins(115), // effectively out of the window
        ..Default::default()
    }
}

#[test]
fn invariants_are_what_keeps_capacity_up() {
    let with = Fig8Scenario::new(trimmed(true)).run();
    let without = Fig8Scenario::new(trimmed(false)).run();

    // With the checker guarding: never below the 50% floor, and the
    // greedy app is held back (rejections happened).
    assert!(
        with.min_fraction() >= 0.5 - 1e-9,
        "guarded run dipped to {}",
        with.min_fraction()
    );
    assert!(with.rejected > 0);

    // Without: every proposal sails through (zero rejections) and whole
    // pods reboot at once — some ToR pair hits zero capacity.
    assert_eq!(without.rejected, 0, "nothing rejected without invariants");
    assert!(
        without.min_fraction() <= 1e-9,
        "unguarded run should collapse somewhere, got min {}",
        without.min_fraction()
    );

    // And the unguarded rollout is *faster* — the paper's honest tradeoff:
    // safety costs rollout speed (the checker serializes risky steps).
    let with_progress = with.samples.len();
    let without_progress = without.samples.len();
    // (Both runs are capped by the same horizon; the unguarded run
    // finishes earlier or processes more pods in the same time.)
    let pods_done = |r: &statesman_bench::fig8::Fig8Result| {
        r.events
            .iter()
            .filter(|(_, l)| l.contains("upgrading pod"))
            .count()
    };
    assert!(
        pods_done(&without) >= pods_done(&with),
        "unguarded must not be slower: {} vs {} pods (samples {} vs {})",
        pods_done(&without),
        pods_done(&with),
        without_progress,
        with_progress
    );
}
