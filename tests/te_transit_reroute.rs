//! SWAN-style multipath: when a WAN link physically dies, the TE
//! application observes the oper-down in the OS and reroutes the affected
//! demand over a transit router of the same plane — no human, no app-to-app
//! coordination, just the OS→compute→PS loop.

use statesman_apps::{InterDcTeApp, ManagementApp, TeConfig, TrafficDemand};
use statesman_core::{Coordinator, CoordinatorConfig, StatesmanClient};
use statesman_net::{FaultEvent, SimClock, SimConfig, SimNetwork};
use statesman_storage::{StorageConfig, StorageService};
use statesman_topology::WanSpec;
use statesman_types::{DatacenterId, DeviceName, LinkName, SimDuration, SimTime};

#[test]
fn te_reroutes_around_a_dead_wan_link() {
    let clock = SimClock::new();
    let wan = WanSpec::fig9();
    let graph = wan.build();
    let dead_link = LinkName::between("br-1", "br-3"); // dc1–dc2 plane 0

    let mut sim_cfg = SimConfig::ideal();
    sim_cfg.faults.command_latency_ms = 1_000;
    sim_cfg.faults = sim_cfg.faults.with_event(
        SimTime::from_mins(20),
        FaultEvent::SetPhysicalLinkState {
            link: dead_link.clone(),
            cut: true,
        },
    );
    let net = SimNetwork::new(&graph, clock.clone(), sim_cfg);
    let storage = StorageService::new(
        wan.dc_names.iter().map(DatacenterId::new),
        clock.clone(),
        StorageConfig::default(),
    );
    let statesman = Coordinator::new(
        &graph,
        net.clone(),
        storage.clone(),
        CoordinatorConfig::default(),
    );
    let mut te = InterDcTeApp::new(
        StatesmanClient::new("inter-dc-te", storage, clock.clone()),
        TeConfig::from_wan_spec(&wan, vec![TrafficDemand::new("dc1", "dc2", 30_000.0)]),
    );

    let round = |te: &mut InterDcTeApp| {
        te.step().unwrap();
        statesman
            .tick_and_advance(SimDuration::from_millis(1))
            .unwrap();
        net.offer_flows(te.flow_specs());
        net.step(SimDuration::from_mins(5));
    };

    // Steady state: demand split over both planes; plane 0 uses the
    // direct br-1~br-3 link.
    for _ in 0..3 {
        round(&mut te);
    }
    let direct = net.link_snapshot(&dead_link).unwrap();
    assert!(
        direct.load_ab_mbps + direct.load_ba_mbps > 14_000.0,
        "direct plane-0 link carries its half"
    );

    // The link dies at minute 20 (already passed); TE sees the oper-down
    // in the OS and reroutes plane 0 via a transit router.
    let mut transit_seen = false;
    for _ in 0..3 {
        te.step().unwrap();
        statesman
            .tick_and_advance(SimDuration::from_millis(1))
            .unwrap();
        net.offer_flows(te.flow_specs());
        net.step(SimDuration::from_mins(5));
        transit_seen = true; // notes checked below via delivery
    }
    assert!(transit_seen);

    let report = net.traffic_report();
    assert!(
        (report.delivered_mbps - 30_000.0).abs() < 1.0,
        "full demand delivered despite the dead link: {report:?}"
    );
    // Plane 0's share now transits br-5 or br-7 (same-plane detour).
    let transit_load: f64 = [("br-1", "br-5"), ("br-1", "br-7")]
        .iter()
        .map(|(a, b)| {
            let l = net.link_snapshot(&LinkName::between(*a, *b)).unwrap();
            l.load_ab_mbps + l.load_ba_mbps
        })
        .sum();
    assert!(
        transit_load > 14_000.0,
        "plane-0 demand must detour via a transit router, got {transit_load}"
    );
    let _ = DeviceName::new("br-5");
}
