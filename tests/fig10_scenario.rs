//! Integration test: the full §7.3 / Figure-10 scenario.
//!
//! Asserts the paper's A–E lock dance: the switch-upgrade application
//! acquires the high-priority lock on BR1 (A), TE loses its low-priority
//! lock and drains BR1's traffic (B), the upgrade runs only at zero load
//! (C), releases on completion (D), and TE re-acquires and moves traffic
//! back (E) — while every other link keeps carrying traffic throughout.

use statesman_bench::fig10::{Fig10Config, Fig10Scenario};
use statesman_types::DeviceName;

#[test]
fn figure10_lock_dance_reproduces_paper_shape() {
    let config = Fig10Config::default();
    let demand = config.demand_mbps;
    let result = Fig10Scenario::new(config).run();
    let br1 = DeviceName::new("br-1");
    let br2 = DeviceName::new("br-2");

    // The A–E sequence occurred in order.
    let a = result.event_time("A:").expect("A");
    let bc = result.event_time("B→C:").expect("B/C drain");
    let c = result.event_time("C:").expect("C reboot");
    let d = result.event_time("D:").expect("D release");
    let e = result.event_time("E:").expect("E return");
    assert!(
        a <= bc && bc <= c && c <= d && d <= e,
        "{:?}",
        result.events
    );

    // Before A: traffic flows over br-1 (steady state).
    let before = result
        .samples
        .iter()
        .find(|s| s.at < a && s.total_load() > 0.0);
    assert!(
        before.map(|s| s.device_load(&br1) > 1.0).unwrap_or(false),
        "br-1 must carry traffic before the upgrade"
    );

    // Between C and D: br-1 carries nothing (zero-load upgrade).
    for s in &result.samples {
        if s.at >= c && s.at < d {
            assert!(s.device_load(&br1) < 1.0, "br-1 loaded at {}", s.at);
        }
    }

    // While br-1 drains, plane-2 (br-2) picks the dc1 demands up: its
    // load strictly exceeds its pre-A level.
    let br2_before = result.device_load_at(&br2, a);
    let br2_during = result.device_load_at(&br2, c);
    assert!(
        br2_during > br2_before + 1.0,
        "br-2 should absorb dc1 demand: {br2_before} -> {br2_during}"
    );

    // Non-dc1 links never drop to zero after traffic starts.
    let br5 = DeviceName::new("br-5"); // dc3 plane 0
    for s in &result.samples {
        if s.at > bc && s.at <= d {
            assert!(
                s.device_load(&br5) > 1.0,
                "unrelated router drained at {}",
                s.at
            );
        }
    }

    // The firmware landed, and traffic came back.
    assert_eq!(result.final_versions[0].1, "9.4.2");
    let last = result.samples.last().unwrap();
    assert!(last.device_load(&br1) > 1.0);

    // Conservation sanity: total load at the end covers the full demand
    // matrix (12 demands × demand_mbps, each crossing exactly one link).
    let expected = 12.0 * demand;
    assert!(
        (last.total_load() - expected).abs() < expected * 0.01,
        "total load {} vs expected {expected}",
        last.total_load()
    );
}

#[test]
fn lock_dance_shape_is_seed_independent() {
    // The A–E ordering is a property of the protocol, not of one lucky
    // seed: jitter and latency draws must not change the shape.
    for seed in [1u64, 0xBEEF, 987_654_321] {
        let config = Fig10Config {
            seed,
            ..Default::default()
        };
        let result = Fig10Scenario::new(config).run();
        let a = result.event_time("A:").expect("A");
        let c = result.event_time("C:").expect("C");
        let d = result.event_time("D:").expect("D");
        let e = result.event_time("E:").expect("E");
        assert!(
            a <= c && c <= d && d <= e,
            "seed {seed}: {:?}",
            result.events
        );
        assert_eq!(result.final_versions[0].1, "9.4.2", "seed {seed}");
        let br1 = DeviceName::new("br-1");
        for s in &result.samples {
            if s.at >= c && s.at < d {
                assert!(s.device_load(&br1) < 1.0, "seed {seed} at {}", s.at);
            }
        }
    }
}
