//! Integration test: the full §7.2 / Figure-8 scenario.
//!
//! Asserts the *shape* of the paper's figure: the capacity invariant never
//! breaks, the upgrade proceeds pod-by-pod with two-at-a-time parallelism,
//! the injected FCS fault gets the link shut by failure-mitigation
//! (time D), pod 4's upgrade is measurably slowed (box E), and pod 5
//! resumes normal speed (box F).

use statesman_bench::fig8::{Fig8Config, Fig8Scenario};
use statesman_types::SimTime;

#[test]
fn figure8_reproduces_paper_shape() {
    let config = Fig8Config::default();
    let fault_at = config.fault_at;
    let result = Fig8Scenario::new(config).run();

    // The rollout finished within the horizon.
    let finished = result.finished_at.expect("rollout completes");

    // 90 directional ToR pairs, as in the figure.
    assert_eq!(result.pair_pods.len(), 90);

    // 1. The capacity invariant held at every tick for every pair.
    assert!(
        result.min_fraction() >= 0.5 - 1e-9,
        "min fraction {}",
        result.min_fraction()
    );

    // 2. Pods upgraded strictly in order (A, B, C, then E=pod4, F=pod5).
    let t_pod = |label: &str| result.event_time(label).expect(label);
    let a = t_pod("A:");
    let b = t_pod("B:");
    let c = t_pod("C:");
    let e = t_pod("E:");
    let f = t_pod("F:");
    assert!(a < b && b < c && c < e && e < f, "{:?}", result.events);

    // 3. The fault fired and mitigation shut the link (D), before pod 4's
    //    upgrade began.
    let d = result
        .event_time("D: failure-mitigation")
        .expect("link shutdown");
    assert!(d >= fault_at);
    assert!(d < e, "link must be down before pod 4's window");

    // 4. Box E: pod 4's window is longer than pod 5's (the checker
    //    serialized pod 4's upgrades because of the dead link).
    let pod4_window = f - e;
    let next_after_f = result
        .events
        .iter()
        .find(|(t, l)| *t > f && (l.starts_with("upgrading pod 6") || l.contains("pod 6")))
        .map(|(t, _)| *t)
        .unwrap_or(finished);
    let pod5_window = next_after_f - f;
    assert!(
        pod4_window > pod5_window,
        "pod 4 ({pod4_window}) should be slower than pod 5 ({pod5_window})"
    );

    // 5. After D, pod-4 pairs sit at exactly 75% between upgrade steps
    //    (one ToR uplink dead).
    let quiet_after_d = result
        .samples
        .iter()
        .find(|s| s.at > d && s.at < e && s.upgrading_pod != Some(4))
        .map(|s| s.at);
    if let Some(t) = quiet_after_d {
        let fractions = result.pod_fractions_at(4, t);
        assert!(!fractions.is_empty());
        for fr in fractions {
            assert!(
                (fr - 0.75).abs() < 1e-6 || (fr - 0.5).abs() < 1e-6,
                "pod-4 pair at {fr} at {t}"
            );
        }
    }

    // 6. Greedy app + strict checker: rejections must have happened (the
    //    app "continues to write a PS ... until it gets rejected").
    assert!(result.rejected > 0);
    // At least 40 accepted firmware rows (one per Agg), possibly plus the
    //    mitigation's link shutdown.
    assert!(result.accepted >= 40, "accepted {}", result.accepted);

    // 7. Healthy-pod steady state between upgrades is full capacity.
    let last = result.samples.last().unwrap();
    for (i, fr) in last.fractions.iter().enumerate() {
        let (sp, dp) = result.pair_pods[i];
        if sp != 4 && dp != 4 {
            assert!(*fr >= 0.999, "pair {i} (pods {sp}->{dp}) ended at {fr}");
        } else {
            // Pod-4 pairs keep the 75% plateau: the faulty link stays
            // shut pending out-of-band repair.
            assert!(*fr >= 0.75 - 1e-9);
        }
    }

    let _ = SimTime::ZERO;
}
