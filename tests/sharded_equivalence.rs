//! The sharded storage plane's load-bearing property: moving from one
//! global `Mutex<Inner>` to a lock per partition changes **nothing
//! observable**. Per-partition op sequences applied concurrently from
//! one thread per partition produce reads, changefeeds, and watermarks
//! bit-identical to the same sequences applied one op at a time from a
//! single thread — across churn, suppressed rewrites, deletes, outages,
//! multi-partition batch fan-out, and compaction-floor crossings.
//!
//! This is what makes the sharding safe: a partition's state is a pure
//! function of its own op order (paper §6.4 — per-DC Paxos rings share
//! nothing), so any cross-partition interleaving commutes.

use proptest::prelude::*;
use statesman_core::MapView;
use statesman_net::SimClock;
use statesman_storage::{ReadRequest, StorageConfig, StorageService, WriteRequest};
use statesman_types::{
    AppId, Attribute, DatacenterId, EntityName, Freshness, NetworkState, Pool, SimTime, StateKey,
    Value, Version,
};

fn full_sorted(storage: &StorageService, dc: &DatacenterId) -> Vec<NetworkState> {
    let mut rows = storage
        .read(ReadRequest {
            datacenter: dc.clone(),
            pool: Pool::Observed,
            freshness: Freshness::UpToDate,
            entity: None,
            attribute: None,
        })
        .unwrap();
    rows.sort_by_key(|r| r.key());
    rows
}

fn service() -> StorageService {
    StorageService::new(
        [DatacenterId::new("dc1"), DatacenterId::new("dc2")],
        SimClock::new(),
        StorageConfig::default(),
    )
}

/// The op alphabet, partition-local by construction. Timestamps are
/// pinned per op index (never read off the live clock) so the sequential
/// and concurrent runs stamp byte-identical rows.
#[derive(Clone, Debug)]
enum Op {
    Upsert { idx: u16, val: u8, at: SimTime },
    RewriteIdentical { idx: u16, at: SimTime },
    Delete { idx: u16 },
}

fn dc_for(sel: u8) -> DatacenterId {
    match sel {
        0 => DatacenterId::new("dc1"),
        1 => DatacenterId::new("dc2"),
        _ => DatacenterId::wan(),
    }
}

fn key_in(dc: &DatacenterId, idx: u16) -> StateKey {
    StateKey::new(
        EntityName::device(dc.clone(), format!("dev-{idx}")),
        Attribute::DeviceBootImage,
    )
}

fn apply(storage: &StorageService, dc: &DatacenterId, op: &Op) {
    match op {
        Op::Upsert { idx, val, at } => {
            storage
                .write(WriteRequest {
                    pool: Pool::Observed,
                    rows: vec![NetworkState::new(
                        EntityName::device(dc.clone(), format!("dev-{idx}")),
                        Attribute::DeviceBootImage,
                        Value::text(format!("img-{val}")),
                        *at,
                        AppId::monitor(),
                    )],
                })
                .unwrap();
        }
        // A value-identical rewrite must be a complete no-op (no stamp,
        // no watermark movement) — and the decision is partition-local,
        // so both runs resolve it against the same partition history.
        Op::RewriteIdentical { idx, at } => {
            if let Some(existing) = storage
                .read_row(&Pool::Observed, &key_in(dc, *idx))
                .unwrap()
            {
                storage
                    .write(WriteRequest {
                        pool: Pool::Observed,
                        rows: vec![NetworkState::new(
                            existing.entity.clone(),
                            existing.attribute,
                            existing.value.clone(),
                            *at,
                            existing.writer.clone(),
                        )],
                    })
                    .unwrap();
            }
        }
        Op::Delete { idx } => {
            let _ = storage.delete(Pool::Observed, vec![key_in(dc, *idx)]);
        }
    }
}

/// Every partition-visible artifact the two runs must agree on: sorted
/// full reads, the pool watermark, and the entire changefeed replayed
/// from genesis.
fn assert_partitions_identical(a: &StorageService, b: &StorageService) {
    assert_eq!(a.partitions(), b.partitions(), "partition sets differ");
    for dc in a.partitions() {
        assert_eq!(
            full_sorted(a, &dc),
            full_sorted(b, &dc),
            "{dc:?}: full reads diverged"
        );
        assert_eq!(
            a.pool_watermark(&dc, &Pool::Observed).unwrap(),
            b.pool_watermark(&dc, &Pool::Observed).unwrap(),
            "{dc:?}: watermarks diverged"
        );
        let da = a
            .read_since(&dc, &Pool::Observed, Version::GENESIS)
            .unwrap();
        let db = b
            .read_since(&dc, &Pool::Observed, Version::GENESIS)
            .unwrap();
        assert_eq!(da.watermark, db.watermark, "{dc:?}: delta watermarks");
        assert_eq!(da.snapshot, db.snapshot, "{dc:?}: snapshot flags");
        let mut va = MapView::new();
        va.apply_delta(da);
        let mut vb = MapView::new();
        vb.apply_delta(db);
        assert_eq!(
            va.into_sorted_rows(),
            vb.into_sorted_rows(),
            "{dc:?}: changefeed contents diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random op soup over three partitions (two DCs plus the WAN
    /// pseudo-DC), applied twice: once sequentially in global order, once
    /// with one thread per partition racing the others (each thread keeps
    /// its partition's relative order). Reads, changefeeds, and
    /// watermarks must be bit-identical.
    #[test]
    fn concurrent_partition_ops_match_sequential_apply(
        raw in proptest::collection::vec((0..3u8, 0..24u16, 0..6u8, 0..6u8), 1..80)
    ) {
        let ops: Vec<(DatacenterId, Op)> = raw
            .iter()
            .enumerate()
            .map(|(i, &(sel, idx, val, kind))| {
                let at = SimTime::from_secs(i as u64 + 1);
                let op = match kind {
                    0..=2 => Op::Upsert { idx, val, at },
                    3..=4 => Op::RewriteIdentical { idx, at },
                    _ => Op::Delete { idx },
                };
                (dc_for(sel), op)
            })
            .collect();

        let sequential = service();
        for (dc, op) in &ops {
            apply(&sequential, dc, op);
        }

        let concurrent = service();
        std::thread::scope(|scope| {
            for part in [0u8, 1, 2].map(dc_for) {
                let ops = &ops;
                let concurrent = &concurrent;
                scope.spawn(move || {
                    for (dc, op) in ops.iter().filter(|(dc, _)| *dc == part) {
                        apply(concurrent, dc, op);
                    }
                });
            }
        });

        assert_partitions_identical(&sequential, &concurrent);
    }
}

/// The proxy's multi-partition batch fan-out: one `write` (and one
/// `delete`) whose rows span every partition commits concurrently
/// per-partition, and must leave exactly the state that per-partition
/// single-batch requests leave.
#[test]
fn multi_partition_batch_fanout_matches_per_partition_batches() {
    let batched = service();
    let split = service();
    let at = SimTime::from_secs(1);
    let rows: Vec<NetworkState> = [0u8, 1, 2]
        .iter()
        .flat_map(|&sel| {
            let dc = dc_for(sel);
            (0..50u16).map(move |i| {
                NetworkState::new(
                    EntityName::device(dc.clone(), format!("dev-{i}")),
                    Attribute::DeviceBootImage,
                    Value::text(format!("img-{sel}-{i}")),
                    at,
                    AppId::monitor(),
                )
            })
        })
        .collect();

    batched
        .write(WriteRequest {
            pool: Pool::Observed,
            rows: rows.clone(),
        })
        .unwrap();
    for sel in [0u8, 1, 2] {
        let dc = dc_for(sel);
        split
            .write(WriteRequest {
                pool: Pool::Observed,
                rows: rows
                    .iter()
                    .filter(|r| r.entity.datacenter == dc)
                    .cloned()
                    .collect(),
            })
            .unwrap();
    }
    assert_partitions_identical(&batched, &split);

    // And the batched delete path, spanning all three partitions.
    let keys: Vec<StateKey> = [0u8, 1, 2]
        .iter()
        .flat_map(|&sel| (0..20u16).map(move |i| key_in(&dc_for(sel), i)))
        .collect();
    batched.delete(Pool::Observed, keys.clone()).unwrap();
    for sel in [0u8, 1, 2] {
        let dc = dc_for(sel);
        split
            .delete(
                Pool::Observed,
                keys.iter()
                    .filter(|k| k.entity.datacenter == dc)
                    .cloned()
                    .collect(),
            )
            .unwrap();
    }
    assert_partitions_identical(&batched, &split);
}

/// An offline partition fails fast without a partition lock while the
/// other partitions take concurrent writes undisturbed; after the heal,
/// the surviving history matches a service that never saw concurrency.
#[test]
fn outage_isolates_one_partition_under_concurrent_load() {
    let concurrent = service();
    let reference = service();
    let down = DatacenterId::new("dc2");

    concurrent.set_partition_available(&down, false);
    std::thread::scope(|scope| {
        for sel in [0u8, 1, 2] {
            let dc = dc_for(sel);
            let concurrent = &concurrent;
            let down = &down;
            scope.spawn(move || {
                for i in 0..40u16 {
                    let op = Op::Upsert {
                        idx: i,
                        val: sel,
                        at: SimTime::from_secs(i as u64 + 1),
                    };
                    if dc == *down {
                        // Every write to the dark partition must error
                        // (fast, lock-free) and leave no trace.
                        let r = concurrent.write(WriteRequest {
                            pool: Pool::Observed,
                            rows: vec![NetworkState::new(
                                EntityName::device(dc.clone(), format!("dev-{i}")),
                                Attribute::DeviceBootImage,
                                Value::text(format!("img-{sel}")),
                                SimTime::from_secs(i as u64 + 1),
                                AppId::monitor(),
                            )],
                        });
                        assert!(r.is_err(), "write to offline partition succeeded");
                    } else {
                        apply(concurrent, &dc, &op);
                    }
                }
            });
        }
    });
    concurrent.set_partition_available(&down, true);

    // The reference applies only the ops that survived: everything except
    // the dark partition's.
    for sel in [0u8, 2] {
        let dc = dc_for(sel);
        for i in 0..40u16 {
            apply(
                &reference,
                &dc,
                &Op::Upsert {
                    idx: i,
                    val: sel,
                    at: SimTime::from_secs(i as u64 + 1),
                },
            );
        }
    }
    assert_partitions_identical(&concurrent, &reference);
    assert_eq!(full_sorted(&concurrent, &down), Vec::new());
}

/// Concurrent churn bursts past the change index capacity (65,536
/// entries per pool) push each partition's compaction floor over a
/// dormant consumer's watermark. The next `read_since` per partition
/// must snapshot-fallback, and the delta-fed views must land bit-equal
/// to full reads — same as the single-lock plane guaranteed.
#[test]
fn compaction_floor_crossing_under_concurrent_bursts() {
    let storage = service();
    let dcs = [DatacenterId::new("dc1"), DatacenterId::new("dc2")];

    // Seed both partitions and catch a consumer up incrementally.
    let mut views: Vec<(DatacenterId, MapView, Version)> = dcs
        .iter()
        .map(|dc| {
            storage
                .write(WriteRequest {
                    pool: Pool::Observed,
                    rows: (0..100u32)
                        .map(|i| {
                            NetworkState::new(
                                EntityName::device(dc.clone(), format!("dev-{i}")),
                                Attribute::DeviceBootImage,
                                Value::text("img-seed"),
                                SimTime::from_secs(1),
                                AppId::monitor(),
                            )
                        })
                        .collect(),
                })
                .unwrap();
            let delta = storage
                .read_since(dc, &Pool::Observed, Version::GENESIS)
                .unwrap();
            let mut view = MapView::new();
            let mark = delta.watermark;
            view.apply_delta(delta);
            (dc.clone(), view, mark)
        })
        .collect();

    // Both partitions churn far past the index window at the same time.
    std::thread::scope(|scope| {
        for dc in &dcs {
            let storage = &storage;
            scope.spawn(move || {
                for burst in 0..3u32 {
                    storage
                        .write(WriteRequest {
                            pool: Pool::Observed,
                            rows: (0..30_000u32)
                                .map(|i| {
                                    NetworkState::new(
                                        EntityName::device(dc.clone(), format!("dev-{i}")),
                                        Attribute::DeviceBootImage,
                                        Value::text(format!("img-b{burst}")),
                                        SimTime::from_secs(60 + burst as u64),
                                        AppId::monitor(),
                                    )
                                })
                                .collect(),
                        })
                        .unwrap();
                }
            });
        }
    });

    for (dc, view, mark) in &mut views {
        let delta = storage.read_since(dc, &Pool::Observed, *mark).unwrap();
        assert!(delta.snapshot, "{dc:?}: below-floor read must snapshot");
        *mark = delta.watermark;
        view.apply_delta(delta);
        assert_eq!(
            view.clone().into_sorted_rows(),
            full_sorted(&storage, dc),
            "{dc:?}: post-crossing view diverged from full read"
        );
        // And the feed resumes incrementally afterwards.
        storage
            .write(WriteRequest {
                pool: Pool::Observed,
                rows: vec![NetworkState::new(
                    EntityName::device(dc.clone(), "dev-7".to_string()),
                    Attribute::DeviceBootImage,
                    Value::text("img-final"),
                    SimTime::from_secs(120),
                    AppId::monitor(),
                )],
            })
            .unwrap();
        let tail = storage.read_since(dc, &Pool::Observed, *mark).unwrap();
        assert!(
            !tail.snapshot,
            "{dc:?}: post-recovery read should be incremental"
        );
        assert_eq!(tail.upserts.len(), 1);
        view.apply_delta(tail);
        assert_eq!(view.clone().into_sorted_rows(), full_sorted(&storage, dc));
    }
}

/// Chaos determinism across the sharded plane: the five standard seeds
/// run end to end twice each, and every `ScenarioOutcome` — safety
/// violations, convergence round, retry/quarantine tallies — is
/// unchanged between runs. Per-partition retry RNGs and the concurrent
/// round stages may interleave however the scheduler likes; the outcome
/// may not move.
#[test]
fn chaos_seeds_remain_deterministic() {
    use statesman_chaos::ChaosScenario;
    for seed in 1..=5u64 {
        let first = ChaosScenario::standard(seed).run();
        let second = ChaosScenario::standard(seed).run();
        assert_eq!(first, second, "seed {seed}: outcomes diverged across runs");
        assert!(
            first.safety_violations.is_empty(),
            "seed {seed}: safety violations: {:?}",
            first.safety_violations
        );
    }
}

/// Regression: a partition with a replica mid-recovery must report
/// retryable unavailability on every watermark/read/commit path — the
/// same typed `StateError` path as outages — rather than serving a
/// stale pre-crash watermark. Other partitions stay fully available
/// throughout (recovery is partition-local, like everything else in
/// the sharded plane).
#[test]
fn mid_recovery_partition_is_retryably_unavailable_not_stale() {
    use statesman_storage::DurabilityMode;
    use statesman_types::StateError;

    let mut cfg = StorageConfig::default();
    cfg.ring.durability = DurabilityMode::FramedMemory;
    let storage = StorageService::new(
        [DatacenterId::new("dc1"), DatacenterId::new("dc2")],
        SimClock::new(),
        cfg,
    );
    let dc1 = DatacenterId::new("dc1");
    let dc2 = DatacenterId::new("dc2");
    for sel in [0u8, 1] {
        let dc = dc_for(sel);
        for i in 0..6u16 {
            apply(
                &storage,
                &dc,
                &Op::Upsert {
                    idx: i,
                    val: sel,
                    at: SimTime::from_secs(i as u64 + 1),
                },
            );
        }
    }
    let pre = storage.partition_watermark(&dc1).unwrap();

    storage.begin_replica_recovery(&dc1, 1);
    // Watermark, reads, and changefeed reads all take the typed
    // retryable error — none may answer from pre-crash state.
    let err = storage.partition_watermark(&dc1).unwrap_err();
    assert!(
        matches!(err, StateError::StorageUnavailable { .. }),
        "{err:?}"
    );
    assert!(
        err.is_retryable(),
        "mid-recovery must be retryable: {err:?}"
    );
    assert!(storage
        .read(ReadRequest {
            datacenter: dc1.clone(),
            pool: Pool::Observed,
            freshness: Freshness::UpToDate,
            entity: None,
            attribute: None,
        })
        .is_err());
    assert!(storage
        .read_since(&dc1, &Pool::Observed, Version::GENESIS)
        .is_err());
    assert!(!storage.partition_available(&dc1));
    // The sibling partition is untouched: recovery is partition-local.
    assert!(storage.partition_available(&dc2));
    storage.partition_watermark(&dc2).unwrap();

    let summary = storage
        .complete_replica_recovery(&dc1, 1)
        .expect("recovery summary");
    assert!(!summary.refused);
    // No acknowledged write lost: the watermark never regresses.
    assert!(storage.partition_watermark(&dc1).unwrap() >= pre);
    apply(
        &storage,
        &dc1,
        &Op::Upsert {
            idx: 99,
            val: 7,
            at: SimTime::from_secs(100),
        },
    );
    assert!(full_sorted(&storage, &dc1)
        .iter()
        .any(|r| r.entity == EntityName::device(dc1.clone(), "dev-99")));
}
