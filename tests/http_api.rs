//! Integration test: an application driving Statesman entirely through
//! the Table-3 HTTP API — write a PS over the wire, let the checker merge
//! it, observe the TS and receipts over the wire.

use statesman_core::groups::ImpactGroup;
use statesman_core::{Checker, CheckerConfig, MergePolicy, Monitor};
use statesman_httpapi::{ApiClient, ApiServer};
use statesman_net::{SimClock, SimConfig, SimNetwork};
use statesman_storage::{StorageConfig, StorageService};
use statesman_topology::DcnSpec;
use statesman_types::{
    AppId, Attribute, DatacenterId, EntityName, Freshness, NetworkState, Pool, Value, WriteOutcome,
};

#[test]
fn full_loop_through_the_wire() {
    let clock = SimClock::new();
    let dc = DatacenterId::new("dc1");
    let graph = DcnSpec::tiny("dc1").build();
    let net = SimNetwork::new(&graph, clock.clone(), SimConfig::ideal());
    let storage = StorageService::new([dc.clone()], clock.clone(), StorageConfig::default());

    // Seed the OS with a real monitor round.
    Monitor::new(net, storage.clone(), graph.clone())
        .run_round()
        .unwrap();

    let server = ApiServer::start(storage.clone()).unwrap();
    let client = ApiClient::new(server.addr());
    let app = AppId::new("remote-upgrade");

    // 1. Read the OS over HTTP (bounded-stale, like a relaxed app).
    let os = client
        .read(&dc, &Pool::Observed, Freshness::BoundedStale, None, None)
        .unwrap();
    assert!(os.len() > 50, "OS has {} rows", os.len());

    // 2. Write a PS over HTTP.
    let entity = EntityName::device("dc1", "agg-1-1");
    let proposal = NetworkState::new(
        entity.clone(),
        Attribute::DeviceFirmwareVersion,
        Value::text("7.7"),
        clock.now(),
        app.clone(),
    );
    client
        .write(&Pool::Proposed(app.clone()), &[proposal])
        .unwrap();

    // 3. A checker pass merges it.
    let checker = Checker::new(
        CheckerConfig {
            group: ImpactGroup::Datacenter(dc.clone()),
            policy: MergePolicy::PriorityLock,
        },
        graph,
    );
    let report = checker.run_pass(&storage, clock.now()).unwrap();
    assert_eq!(report.accepted, 1);

    // 4. The TS is visible over HTTP.
    let ts = client
        .read(
            &dc,
            &Pool::Target,
            Freshness::UpToDate,
            Some(&entity),
            Some(Attribute::DeviceFirmwareVersion),
        )
        .unwrap();
    assert_eq!(ts.len(), 1);
    assert_eq!(ts[0].value, Value::text("7.7"));

    // 5. Receipts arrive over HTTP (and drain).
    let receipts = client.receipts(&app).unwrap();
    assert_eq!(receipts.len(), 1);
    assert_eq!(receipts[0].outcome, WriteOutcome::Accepted);
    assert!(client.receipts(&app).unwrap().is_empty());
}

#[test]
fn oversized_bodies_are_rejected() {
    // The server caps bodies at 64 MB; the violation is its own status
    // (413) so clients can tell "shrink your payload" from "not HTTP".
    use std::io::Write;
    let clock = SimClock::new();
    let storage = StorageService::single_dc("dc1", clock);
    let server = ApiServer::start(storage).unwrap();
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    let head = format!(
        "POST /v1/write?Pool=OS HTTP/1.1\r\nhost: x\r\ncontent-length: {}\r\n\r\n",
        65 << 20
    );
    stream.write_all(head.as_bytes()).unwrap();
    let (status, body) = statesman_httpapi::http::read_response(&mut stream).unwrap();
    assert_eq!(status, 413, "{}", String::from_utf8_lossy(&body));
}

#[test]
fn oversized_headers_are_rejected_with_431() {
    use std::io::Write;
    let clock = SimClock::new();
    let storage = StorageService::single_dc("dc1", clock);
    let server = ApiServer::start(storage).unwrap();
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    stream
        .write_all(b"GET /v1/health HTTP/1.1\r\nx-pad: ")
        .unwrap();
    stream.write_all(&vec![b'a'; 17 << 10]).unwrap();
    let (status, _) = statesman_httpapi::http::read_response(&mut stream).unwrap();
    assert_eq!(status, 431);
}

#[test]
fn keep_alive_survives_interleaved_partial_writes() {
    // Two requests on one socket, each dribbled out in fragments with
    // pauses between them: the reactor must assemble each request from
    // partial reads and keep the connection alive between responses.
    use statesman_httpapi::http::read_response_buffered;
    use std::io::{BufReader, Write};
    let clock = SimClock::new();
    let storage = StorageService::single_dc("dc1", clock);
    let server = ApiServer::start(storage).unwrap();
    let stream = std::net::TcpStream::connect(server.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    let wire: &[u8] = b"GET /v1/health HTTP/1.1\r\nhost: x\r\n\r\n";
    for _ in 0..2 {
        for chunk in wire.chunks(7) {
            writer.write_all(chunk).unwrap();
            writer.flush().unwrap();
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let resp = read_response_buffered(&mut reader).unwrap();
        assert_eq!(resp.status, 200);
        assert!(
            !resp.connection_close(),
            "keep-alive persists across partial writes"
        );
        assert!(String::from_utf8_lossy(&resp.body).contains("\"ok\":true"));
    }
    assert_eq!(server.request_count(), 2);
}

#[test]
fn overload_sheds_round_trip_into_typed_retryable_errors() {
    use statesman_httpapi::{error::decode_error, ServerConfig};
    use statesman_types::StateError;
    let clock = SimClock::new();
    let storage = StorageService::single_dc("dc1", clock);
    // One connection slot: the second simultaneous connection is shed at
    // the accept edge with 429 + retry-after.
    let server = ApiServer::start_with_config(
        storage,
        ServerConfig {
            max_connections: 1,
            retry_after: std::time::Duration::from_secs(2),
            ..ServerConfig::default()
        },
        None,
    )
    .unwrap();
    let _held = std::net::TcpStream::connect(server.addr()).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(50));
    let resp = ApiClient::new(server.addr())
        .raw_request("GET", "/v1/health", &[])
        .unwrap();
    assert_eq!(resp.status, 429, "shed with a response, not a reset");
    assert_eq!(resp.retry_after(), Some(2));
    let err = decode_error(resp.status, &resp.body);
    assert!(
        matches!(
            err,
            StateError::Overloaded {
                retry_after_ms: 2000
            }
        ),
        "shed decodes into the typed overload error: {err:?}"
    );
    assert!(err.is_retryable());
}

#[test]
fn garbage_requests_get_400_not_a_hang() {
    use std::io::Write;
    let clock = SimClock::new();
    let storage = StorageService::single_dc("dc1", clock);
    let server = ApiServer::start(storage).unwrap();
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    stream.write_all(b"NOT HTTP AT ALL\r\n\r\n").unwrap();
    let (status, _) = statesman_httpapi::http::read_response(&mut stream).unwrap();
    assert_eq!(status, 400);
}

#[test]
fn concurrent_wire_clients() {
    // Several clients hammer the same server from threads; every request
    // must be answered coherently by the fixed worker pool.
    let clock = SimClock::new();
    let dc = DatacenterId::new("dc1");
    let storage = StorageService::new([dc.clone()], clock.clone(), StorageConfig::default());
    let server = ApiServer::start(storage).unwrap();
    let addr = server.addr();

    let mut handles = Vec::new();
    for t in 0..8 {
        let dc = dc.clone();
        handles.push(std::thread::spawn(move || {
            let client = ApiClient::new(addr);
            for i in 0..10 {
                let row = NetworkState::new(
                    EntityName::device("dc1", format!("dev-{t}-{i}")),
                    Attribute::DeviceBootImage,
                    Value::text("img"),
                    statesman_types::SimTime::ZERO,
                    AppId::new(format!("app-{t}")),
                );
                client.write(&Pool::Observed, &[row]).unwrap();
                let rows = client
                    .read(&dc, &Pool::Observed, Freshness::UpToDate, None, None)
                    .unwrap();
                assert!(!rows.is_empty());
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let client = ApiClient::new(addr);
    let rows = client
        .read(&dc, &Pool::Observed, Freshness::UpToDate, None, None)
        .unwrap();
    assert_eq!(rows.len(), 80, "all 8x10 writes landed");
}
