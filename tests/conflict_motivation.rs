//! Integration test: Figures 1 and 2 — the motivating failures happen
//! without Statesman and are prevented with it.

use statesman_bench::motivation::{run_fig1, run_fig2};

#[test]
fn figure1_te_vs_upgrade_conflict() {
    let outcome = run_fig1();
    // Unmediated: the tunnel through the rebooting switch loses its
    // full 1000 Mbps.
    assert!(outcome.without_statesman >= 999.0, "{:?}", outcome.notes);
    // Mediated: TE observes the lock and routes around; zero loss.
    assert_eq!(outcome.with_statesman, 0.0, "{:?}", outcome.notes);
}

#[test]
fn figure2_joint_shutdown_partition() {
    let outcome = run_fig2();
    // Unmediated: both Aggs down together partitions the pod's ToRs.
    assert_eq!(outcome.without_statesman, 1.0, "{:?}", outcome.notes);
    // Mediated: the connectivity/capacity invariants reject the second
    // proposal; no partition.
    assert_eq!(outcome.with_statesman, 0.0, "{:?}", outcome.notes);
}
