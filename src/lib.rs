#![warn(missing_docs)]

//! # statesman
//!
//! Umbrella crate for the Statesman reproduction (Sun et al., *A
//! Network-State Management Service*, SIGCOMM 2014). Re-exports the public
//! API of every subsystem crate so downstream users (and the `examples/`
//! and `tests/` at the workspace root) can depend on a single crate.
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system inventory,
//! and `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! ## The whole loop in twenty lines
//!
//! ```
//! use statesman::core::{Coordinator, CoordinatorConfig, StatesmanClient};
//! use statesman::net::{SimClock, SimConfig, SimNetwork};
//! use statesman::storage::{StorageConfig, StorageService};
//! use statesman::topology::DcnSpec;
//! use statesman::prelude::*;
//!
//! // A (simulated) network and Statesman on top of it.
//! let clock = SimClock::new();
//! let graph = DcnSpec::tiny("dc1").build();
//! let net = SimNetwork::new(&graph, clock.clone(), SimConfig::ideal());
//! let storage = StorageService::new(
//!     [DatacenterId::new("dc1")], clock.clone(), StorageConfig::default());
//! let statesman = Coordinator::new(
//!     &graph, net, storage.clone(), CoordinatorConfig::default());
//! statesman.tick_and_advance(SimDuration::from_mins(1)).unwrap();
//!
//! // An application: pull the OS, push a PS, poll the receipt.
//! let app = StatesmanClient::new("switch-upgrade", storage, clock);
//! app.propose([(
//!     EntityName::device("dc1", "agg-1-1"),
//!     Attribute::DeviceFirmwareVersion,
//!     Value::text("7.0.1"),
//! )]).unwrap();
//! statesman.tick_and_advance(SimDuration::from_mins(5)).unwrap();
//! let receipts = app.take_receipts().unwrap();
//! assert!(receipts[0].outcome.is_accepted());
//! ```

pub use statesman_apps as apps;
pub use statesman_core as core;
pub use statesman_httpapi as httpapi;
pub use statesman_net as net;
pub use statesman_obs as obs;
pub use statesman_storage as storage;
pub use statesman_topology as topology;
pub use statesman_types as types;

/// Commonly used items, importable with `use statesman::prelude::*`.
pub mod prelude {
    pub use statesman_types::{
        AppId, Attribute, DatacenterId, DeviceName, EntityName, Freshness, LinkName, LockPriority,
        NetworkState, Pool, SimDuration, SimTime, StateError, StateResult, Value, WriteOutcome,
    };
}
