//! A chaos storm, watched live: the standard multi-layer fault plan
//! (device crash, management-plane outage, storage partition outage, app
//! blackout, lossy commands, link flapping) against a full Statesman
//! instance running an upgrade campaign.
//!
//! ```text
//! cargo run --example chaos_storm -- [seed]
//! ```
//!
//! Exits nonzero if the run violated ground-truth safety, aborted a
//! round, or never converged — so it doubles as a one-shot chaos probe
//! for any seed, not just the five pinned in the test suite.

use statesman_chaos::ChaosScenario;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let mut scenario = ChaosScenario::standard(seed);
    scenario.verbose = true;

    let plan = &scenario.plan;
    println!("chaos plan (seed {seed}):");
    for (d, at, down) in &plan.device_outages {
        println!("  crash    {} at {at} for {down}", d.as_str());
    }
    for (d, at, down) in &plan.mgmt_outages {
        println!("  mgmt-out {} at {at} for {down}", d.as_str());
    }
    for (dc, at, down) in &plan.partition_outages {
        println!("  part-out {dc} at {at} for {down}");
    }
    if let Some((at, down)) = plan.app_blackout {
        println!("  app-out  at {at} for {down}");
    }
    println!(
        "  commands: {:.0}% reject, {:.0}% timeout; link flap {:.1}%/min for {}",
        plan.command_failure_prob * 100.0,
        plan.command_timeout_prob * 100.0,
        plan.link_flap_prob_per_min * 100.0,
        plan.link_flap_duration,
    );
    println!("  last heal at {}", plan.last_heal());
    println!();

    let outcome = scenario.run();
    println!();
    println!("{outcome:#?}");

    let ok = outcome.safety_violations.is_empty()
        && outcome.tick_errors == 0
        && outcome.converged_at.is_some();
    if !ok {
        println!("CHAOS RUN FAILED");
        std::process::exit(1);
    }
    println!(
        "safe and live: converged at round {} of {}",
        outcome.converged_at.unwrap(),
        outcome.rounds_run
    );
}
