//! A chaos storm, watched live: the standard multi-layer fault plan
//! (device crash, management-plane outage, storage partition outage, app
//! blackout, lossy commands, link flapping) against a full Statesman
//! instance running an upgrade campaign — with the observability stack
//! attached, scraped over the real `/v1/metrics` + `/v1/status` wire and
//! cross-checked for internal consistency.
//!
//! ```text
//! cargo run --example chaos_storm -- [seed]
//! ```
//!
//! Exits nonzero if the run violated ground-truth safety, aborted a
//! round, never converged, or the scraped metrics disagree with
//! themselves — so it doubles as a one-shot chaos-and-observability
//! probe for any seed, not just the five pinned in the test suite.

use statesman::httpapi::{ApiClient, ApiServer, StatusResponse};
use statesman::net::SimClock;
use statesman::obs::Obs;
use statesman::storage::StorageService;
use statesman_chaos::ChaosScenario;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let mut scenario = ChaosScenario::standard(seed);
    scenario.verbose = true;

    let plan = &scenario.plan;
    println!("chaos plan (seed {seed}):");
    for (d, at, down) in &plan.device_outages {
        println!("  crash    {} at {at} for {down}", d.as_str());
    }
    for (d, at, down) in &plan.mgmt_outages {
        println!("  mgmt-out {} at {at} for {down}", d.as_str());
    }
    for (dc, at, down) in &plan.partition_outages {
        println!("  part-out {dc} at {at} for {down}");
    }
    if let Some((at, down)) = plan.app_blackout {
        println!("  app-out  at {at} for {down}");
    }
    println!(
        "  commands: {:.0}% reject, {:.0}% timeout; link flap {:.1}%/min for {}",
        plan.command_failure_prob * 100.0,
        plan.command_timeout_prob * 100.0,
        plan.link_flap_prob_per_min * 100.0,
        plan.link_flap_duration,
    );
    println!("  last heal at {}", plan.last_heal());
    println!();

    let obs = Obs::new();
    let outcome = scenario.run_with_obs(&obs);
    println!();
    println!("{outcome:#?}");

    let ok = outcome.safety_violations.is_empty()
        && outcome.tick_errors == 0
        && outcome.converged_at.is_some();
    if !ok {
        println!("CHAOS RUN FAILED");
        std::process::exit(1);
    }
    println!(
        "safe and live: converged at round {} of {}",
        outcome.converged_at.unwrap(),
        outcome.rounds_run
    );

    // Serve the run's registry over the wire and scrape it back, the way
    // an operator's collector would.
    let server = ApiServer::start_with_obs(
        StorageService::single_dc("dc1", SimClock::new()),
        obs.clone(),
    )
    .expect("api server");
    let client = ApiClient::new(server.addr());
    let text = String::from_utf8(client.raw_get("/v1/metrics").expect("scrape metrics"))
        .expect("metrics are UTF-8");
    let status_body = client
        .raw_get("/v1/status?rounds=3")
        .expect("scrape status");
    let status: StatusResponse = serde_json::from_slice(&status_body).expect("status decodes");

    let value = |name: &str| -> u64 {
        text.lines()
            .find(|l| l.split_whitespace().next() == Some(name))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("metric {name} missing from /v1/metrics"))
    };

    // The scrape must be non-empty and internally consistent: every
    // proposal the checkers saw was accepted, rejected, or already
    // satisfied — no row vanished — and the round counter matches the
    // rounds the harness actually drove.
    let rounds = value("coordinator_rounds_total");
    let seen = value("checker_proposals_seen_total");
    let accepted = value("checker_accepted_total");
    let rejected = value("checker_rejected_total");
    let satisfied = value("checker_already_satisfied_total");
    let retries = value("updater_retries_total");
    assert!(!text.is_empty() && rounds > 0, "empty scrape");
    assert_eq!(rounds, outcome.rounds_run as u64, "round counter drifted");
    assert_eq!(
        accepted + rejected + satisfied,
        seen,
        "checker accounting identity broken"
    );
    assert_eq!(
        retries, outcome.updater_retries as u64,
        "retry counter drifted"
    );
    let last = status.traces.last().expect("status has traces");
    assert_eq!(
        status.status.last_round,
        Some(outcome.rounds_run as u64 - 1),
        "status board is stale"
    );
    println!();
    println!(
        "scraped /v1/metrics: {rounds} rounds, {seen} proposals seen \
         ({accepted} accepted + {rejected} rejected + {satisfied} satisfied), \
         {retries} updater retries",
    );
    println!(
        "scraped /v1/status: last trace round {} at {}ms \
         (monitor {:.1}ms / checker {:.1}ms / updater {:.1}ms)",
        last.round, last.at_ms, last.monitor_ms, last.checker_ms, last.updater_ms
    );
    println!("metrics consistent: OK");
}
