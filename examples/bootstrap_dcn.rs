//! Bootstrapping a datacenter from scratch through Statesman — the
//! process the Fig-4 dependency model is built around (§4.1: "Statesman
//! aims to support operations in the complete process of bringing up a
//! large DCN from scratch to normal operations").
//!
//! Everything starts powered off. A bootstrap application walks the
//! dependency chain bottom-up, and the checker enforces the ordering: a
//! proposal whose prerequisites are not yet observed is rejected as
//! uncontrollable, so the app simply proposes everything each round and
//! lets Statesman tell it what is actionable.
//!
//! ```text
//! cargo run --example bootstrap_dcn
//! ```

use statesman::core::{Coordinator, CoordinatorConfig, StatesmanClient};
use statesman::net::{FlowSpec, SimClock, SimConfig, SimNetwork};
use statesman::prelude::*;
use statesman::storage::{StorageConfig, StorageService};
use statesman::topology::DcnSpec;

fn main() {
    let clock = SimClock::new();
    let graph = DcnSpec::tiny("dc1").build();
    let mut sim = SimConfig::ideal();
    sim.faults.command_latency_ms = 500;
    sim.start_powered_off = true; // the dark datacenter
    let net = SimNetwork::new(&graph, clock.clone(), sim);
    let storage = StorageService::new(
        [DatacenterId::new("dc1")],
        clock.clone(),
        StorageConfig::default(),
    );
    let statesman = Coordinator::new(
        &graph,
        net.clone(),
        storage.clone(),
        CoordinatorConfig {
            // During bootstrap nothing is connected yet; the steady-state
            // invariants would reject every step. Operators scope
            // invariants to normal operations (§4.1's bootstrap story).
            connectivity_invariant: false,
            capacity_invariant: None,
            ..Default::default()
        },
    );
    let app = StatesmanClient::new("bootstrap", storage, clock.clone());

    let up_devices = |net: &SimNetwork| {
        net.device_names()
            .iter()
            .filter(|d| net.device_operational(d))
            .count()
    };
    let up_links = |net: &SimNetwork| {
        net.link_names()
            .iter()
            .filter(|l| net.link_oper_up(l))
            .count()
    };

    println!(
        "dark DCN: {}/{} devices up, {}/{} links up",
        up_devices(&net),
        graph.node_count(),
        up_links(&net),
        graph.edge_count()
    );

    // Phase 1 — device power (bottom of Fig 4).
    for d in net.device_names() {
        app.propose([(
            EntityName::device("dc1", d.as_str()),
            Attribute::DeviceAdminPower,
            Value::power(true),
        )])
        .unwrap();
    }
    let r = statesman
        .tick_and_advance(SimDuration::from_mins(2))
        .unwrap();
    println!(
        "phase 1 (device power): {} accepted; {} devices now up",
        r.accepted(),
        up_devices(&net)
    );

    // Phase 2 — link power (depends on endpoint device configuration).
    statesman
        .tick_and_advance(SimDuration::from_mins(2))
        .unwrap(); // fresh OS
    for l in net.link_names() {
        app.propose([(
            EntityName::link_named("dc1", l),
            Attribute::LinkAdminPower,
            Value::power(true),
        )])
        .unwrap();
    }
    let r = statesman
        .tick_and_advance(SimDuration::from_mins(2))
        .unwrap();
    println!(
        "phase 2 (link power): {} accepted; {} links now up",
        r.accepted(),
        up_links(&net)
    );

    // Phase 3 — link interface config (depends on link power).
    statesman
        .tick_and_advance(SimDuration::from_mins(2))
        .unwrap();
    let sample_link = net.link_names().into_iter().next().unwrap();
    app.propose([
        (
            EntityName::link_named("dc1", sample_link.clone()),
            Attribute::LinkIpAssignment,
            Value::text("10.0.0.0/31"),
        ),
        (
            EntityName::link_named("dc1", sample_link.clone()),
            Attribute::LinkControlPlane,
            Value::ControlPlane(statesman_types::ControlPlaneMode::OpenFlow),
        ),
    ])
    .unwrap();
    let r = statesman
        .tick_and_advance(SimDuration::from_mins(2))
        .unwrap();
    println!(
        "phase 3 (link config on {sample_link}): {} accepted",
        r.accepted()
    );

    // Phase 4 — path/traffic setup (top of Fig 4): a tunnel end-to-end.
    statesman
        .tick_and_advance(SimDuration::from_mins(2))
        .unwrap();
    let path = EntityName::path("dc1", "bootstrap-tunnel");
    app.propose([
        (
            path.clone(),
            Attribute::PathSwitches,
            Value::DeviceList(vec![
                DeviceName::new("tor-1-1"),
                DeviceName::new("agg-1-1"),
                DeviceName::new("tor-1-2"),
            ]),
        ),
        (path, Attribute::PathTrafficAllocation, Value::Float(800.0)),
    ])
    .unwrap();
    let r = statesman
        .tick_and_advance(SimDuration::from_mins(2))
        .unwrap();
    statesman
        .tick_and_advance(SimDuration::from_mins(2))
        .unwrap();
    net.offer_flows(vec![FlowSpec::new(
        "bootstrap-tunnel",
        "tor-1-1",
        "tor-1-2",
        800.0,
    )]);
    net.step(SimDuration::from_secs(1));
    let report = net.traffic_report();
    println!(
        "phase 4 (path setup): {} accepted; tunnel delivers {:.0} Mbps",
        r.accepted(),
        report.delivered_mbps
    );

    assert_eq!(up_devices(&net), graph.node_count());
    assert_eq!(up_links(&net), graph.edge_count());
    assert!(report.delivered_mbps > 799.0);
    println!("the DCN is up — bootstrapped bottom-up through the dependency model.");
}
