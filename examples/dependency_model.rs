//! The state dependency model, interactively: prints the Table-2 variable
//! catalogue and walks the Fig-4 chains with concrete controllability
//! queries, including extending the model with a custom operator rule.
//!
//! ```text
//! cargo run --example dependency_model
//! ```

use statesman::core::deps::{DependencyModel, DependencyRule, Uncontrollable};
use statesman::core::{MapView, StateView};
use statesman::prelude::*;
use statesman_types::{DependencyLevel, NetworkState, StateKey};

fn row(e: EntityName, a: Attribute, v: Value) -> NetworkState {
    NetworkState::new(e, a, v, SimTime::ZERO, AppId::monitor())
}

fn main() {
    // ---- Table 2: the variable catalogue ----
    println!("== Table 2: the state-variable catalogue ==");
    println!(
        "{:<28} {:>7} {:>24} {:>10}",
        "variable", "entity", "level", "perm"
    );
    for attr in Attribute::catalogue() {
        println!(
            "{:<28} {:>7} {:>24} {:>10}",
            attr.wire_name(),
            attr.entity_kind().to_string(),
            attr.dependency_level().to_string(),
            match attr.permission() {
                statesman_types::Permission::ReadOnly => "ReadOnly",
                statesman_types::Permission::ReadWrite => "ReadWrite",
            }
        );
    }
    println!();

    // ---- Fig 4: controllability walks ----
    println!("== Fig 4: controllability under the standard model ==");
    let model = DependencyModel::standard();
    let dev = EntityName::device("dc1", "agg-1-1");

    let mut os = MapView::new();
    os.upsert(row(
        dev.clone(),
        Attribute::DeviceAdminPower,
        Value::power(false),
    ));

    let firmware_key = StateKey::new(dev.clone(), Attribute::DeviceFirmwareVersion);
    let verdict = model.check_controllable(&firmware_key, &Value::text("7.0"), &os);
    println!("device powered OFF, propose firmware change:");
    println!("  -> {}", render(&verdict));

    os.upsert(row(
        dev.clone(),
        Attribute::DeviceAdminPower,
        Value::power(true),
    ));
    os.upsert(row(
        dev.clone(),
        Attribute::DeviceFirmwareVersion,
        Value::text("6.0"),
    ));
    let verdict = model.check_controllable(&firmware_key, &Value::text("7.0"), &os);
    println!("device powered ON with running firmware:");
    println!("  -> {}", render(&verdict));

    os.upsert(row(
        dev.clone(),
        Attribute::DeviceOpenFlowAgent,
        Value::Bool(false),
    ));
    let routing_key = StateKey::new(dev.clone(), Attribute::DeviceRoutingRules);
    let verdict = model.check_controllable(&routing_key, &Value::Routes(vec![]), &os);
    println!("OpenFlow agent DOWN, propose routing change:");
    println!("  -> {}", render(&verdict));

    // Cross-entity edge: link power needs both endpoint configs.
    let link = EntityName::link("dc1", "agg-1-1", "tor-1-1");
    let link_key = StateKey::new(link, Attribute::LinkAdminPower);
    os.upsert(row(
        EntityName::device("dc1", "tor-1-1"),
        Attribute::DeviceAdminPower,
        Value::power(false),
    ));
    let verdict = model.check_controllable(&link_key, &Value::power(false), &os);
    println!("one link endpoint powered OFF, propose link admin change:");
    println!("  -> {}", render(&verdict));
    println!();

    // ---- extending the model (the lecture's question) ----
    println!("== Extending the model with an operator rule ==");
    struct ChangeFreeze;
    impl DependencyRule for ChangeFreeze {
        fn guards(&self) -> DependencyLevel {
            DependencyLevel::OperatingSystemSetup
        }
        fn check(
            &self,
            key: &StateKey,
            _proposed: &Value,
            os: &dyn StateView,
        ) -> Result<(), Uncontrollable> {
            // Freeze firmware changes on devices above 80% CPU.
            let busy = os
                .value_of(&key.entity, Attribute::DeviceCpuUtilization)
                .and_then(|v| v.as_float())
                .map(|u| u > 0.8)
                .unwrap_or(false);
            if busy {
                Err(Uncontrollable {
                    reason: format!("{} is above 80% CPU; firmware frozen", key.entity),
                })
            } else {
                Ok(())
            }
        }
        fn name(&self) -> &'static str {
            "freeze-busy-devices"
        }
    }
    let mut model = DependencyModel::standard();
    model.add_rule(Box::new(ChangeFreeze));
    os.upsert(row(
        dev.clone(),
        Attribute::DeviceCpuUtilization,
        Value::Float(0.93),
    ));
    let verdict = model.check_controllable(&firmware_key, &Value::text("7.0"), &os);
    println!("custom rule installed; device at 93% CPU, propose firmware change:");
    println!("  -> {}", render(&verdict));
    println!("(rules: {} standard + 1 custom)", model.rule_count() - 1);
}

fn render(v: &Result<(), statesman::core::deps::Uncontrollable>) -> String {
    match v {
        Ok(()) => "CONTROLLABLE".to_string(),
        Err(u) => format!("UNCONTROLLABLE: {u}"),
    }
}
