//! Statesman as a wire service: the Table-3 HTTP API on real TCP, with an
//! out-of-process-style application thread talking to it the way the
//! paper's applications talk to the deployed service.
//!
//! ```text
//! cargo run --example http_service
//! ```

use statesman::core::{Coordinator, CoordinatorConfig};
use statesman::httpapi::{ApiClient, ApiServer};
use statesman::net::{SimClock, SimConfig, SimNetwork};
use statesman::obs::Obs;
use statesman::prelude::*;
use statesman::storage::{StorageConfig, StorageService};
use statesman::topology::DcnSpec;

fn main() {
    // Statesman side: simulator + service + control loop.
    let clock = SimClock::new();
    let graph = DcnSpec::tiny("dc1").build();
    let mut sim = SimConfig::ideal();
    sim.faults.command_latency_ms = 500;
    sim.faults.reboot_window_ms = 60_000;
    let net = SimNetwork::new(&graph, clock.clone(), sim);
    let storage = StorageService::new(
        [DatacenterId::new("dc1")],
        clock.clone(),
        StorageConfig::default(),
    );
    let obs = Obs::new();
    let statesman = Coordinator::new(
        &graph,
        net.clone(),
        storage.clone(),
        CoordinatorConfig {
            obs: Some(obs.clone()),
            ..CoordinatorConfig::default()
        },
    );
    statesman
        .tick_and_advance(SimDuration::from_mins(1))
        .unwrap();

    // The RESTful front end (paper §6.4) on a real socket, with the
    // observability endpoints wired in.
    let server = ApiServer::start_with_obs(storage, obs).unwrap();
    let addr = server.addr();
    println!("Statesman HTTP API listening on http://{addr}");
    println!("  GET  /v1/read?Datacenter=dc1&Pool=OS&Freshness=bounded-stale");
    println!("  POST /v1/write?Pool=PS:remote-app");
    println!("  GET  /v1/metrics   GET /v1/status");
    println!();

    // An application living in its own thread, knowing nothing but the
    // server address — exactly an out-of-process management app. The
    // client mirrors StatesmanClient: bind an identity, then
    // read_os / propose / take_receipts.
    let app_thread = std::thread::spawn(move || {
        let client = ApiClient::new(addr).with_app("remote-app");
        let dc = DatacenterId::new("dc1");

        // Pull the observed state (bounded-stale is fine for this app).
        let os = client.read_os(&dc, Freshness::BoundedStale).unwrap();
        println!("[remote-app] pulled {} OS rows over HTTP", os.len());

        // Push a proposal (stamped with the server's clock and this
        // client's identity, like StatesmanClient::propose).
        client
            .propose([(
                EntityName::device("dc1", "agg-1-1"),
                Attribute::DeviceBootImage,
                Value::text("golden-image-v2"),
            )])
            .unwrap();
        println!("[remote-app] pushed 1 PS row");
        client.app().unwrap().clone()
    });
    let app = app_thread.join().unwrap();

    // Statesman runs its round; the checker consumes the PS.
    let round = statesman
        .tick_and_advance(SimDuration::from_mins(5))
        .unwrap();
    println!(
        "[statesman] round: {} accepted, {} rejected, {} commands",
        round.accepted(),
        round.rejected(),
        round.updater.commands_applied
    );

    // The application polls the outcome over the wire.
    let client = ApiClient::new(addr);
    for receipt in client.receipts(&app).unwrap() {
        println!("[remote-app] receipt over HTTP: {receipt}");
    }
    let ts = client
        .read(
            &DatacenterId::new("dc1"),
            &Pool::Target,
            Freshness::UpToDate,
            Some(&EntityName::device("dc1", "agg-1-1")),
            Some(Attribute::DeviceBootImage),
        )
        .unwrap();
    println!(
        "[remote-app] TS over HTTP: {}",
        ts.first().map(|r| r.to_string()).unwrap_or_default()
    );

    // Let the updater realize the change, then confirm on the device.
    statesman
        .tick_and_advance(SimDuration::from_mins(5))
        .unwrap();
    let image = net
        .device_snapshot(&"agg-1-1".into())
        .unwrap()
        .boot_image
        .clone();
    println!("[network]   agg-1-1 boot image is now `{image}`");
    assert_eq!(image, "golden-image-v2");

    // Anyone can scrape the control loop's vitals over the wire.
    let metrics = String::from_utf8(client.raw_get("/v1/metrics").unwrap()).unwrap();
    let rounds = metrics
        .lines()
        .find(|l| l.starts_with("coordinator_rounds_total"))
        .unwrap_or("coordinator_rounds_total ?");
    println!("[operator]  /v1/metrics says: {rounds}");
}
