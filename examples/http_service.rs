//! Statesman as a wire service: the Table-3 HTTP API on real TCP, with an
//! out-of-process-style application thread talking to it the way the
//! paper's applications talk to the deployed service.
//!
//! ```text
//! cargo run --example http_service
//! ```

use statesman::core::{Coordinator, CoordinatorConfig};
use statesman::httpapi::{ApiClient, ApiServer};
use statesman::net::{SimClock, SimConfig, SimNetwork};
use statesman::prelude::*;
use statesman::storage::{StorageConfig, StorageService};
use statesman::topology::DcnSpec;
use statesman_types::NetworkState;

fn main() {
    // Statesman side: simulator + service + control loop.
    let clock = SimClock::new();
    let graph = DcnSpec::tiny("dc1").build();
    let mut sim = SimConfig::ideal();
    sim.faults.command_latency_ms = 500;
    sim.faults.reboot_window_ms = 60_000;
    let net = SimNetwork::new(&graph, clock.clone(), sim);
    let storage = StorageService::new(
        [DatacenterId::new("dc1")],
        clock.clone(),
        StorageConfig::default(),
    );
    let statesman = Coordinator::new(
        &graph,
        net.clone(),
        storage.clone(),
        CoordinatorConfig::default(),
    );
    statesman
        .tick_and_advance(SimDuration::from_mins(1))
        .unwrap();

    // The RESTful front end (paper §6.4) on a real socket.
    let server = ApiServer::start(storage).unwrap();
    let addr = server.addr();
    println!("Statesman HTTP API listening on http://{addr}");
    println!("  GET  /NetworkState/Read?Datacenter=dc1&Pool=OS&Freshness=bounded-stale");
    println!("  POST /NetworkState/Write?Pool=PS:remote-app");
    println!();

    // An application living in its own thread, knowing nothing but the
    // server address — exactly an out-of-process management app.
    let app_thread = std::thread::spawn(move || {
        let client = ApiClient::new(addr);
        let app = AppId::new("remote-app");
        let dc = DatacenterId::new("dc1");

        // Pull the observed state (bounded-stale is fine for this app).
        let os = client
            .read(&dc, &Pool::Observed, Freshness::BoundedStale, None, None)
            .unwrap();
        println!("[remote-app] pulled {} OS rows over HTTP", os.len());

        // Push a proposal.
        let proposal = NetworkState::new(
            EntityName::device("dc1", "agg-1-1"),
            Attribute::DeviceBootImage,
            Value::text("golden-image-v2"),
            SimTime::ZERO,
            app.clone(),
        );
        client
            .write(&Pool::Proposed(app.clone()), &[proposal])
            .unwrap();
        println!("[remote-app] pushed 1 PS row");
        app
    });
    let app = app_thread.join().unwrap();

    // Statesman runs its round; the checker consumes the PS.
    let round = statesman
        .tick_and_advance(SimDuration::from_mins(5))
        .unwrap();
    println!(
        "[statesman] round: {} accepted, {} rejected, {} commands",
        round.accepted(),
        round.rejected(),
        round.updater.commands_applied
    );

    // The application polls the outcome over the wire.
    let client = ApiClient::new(addr);
    for receipt in client.receipts(&app).unwrap() {
        println!("[remote-app] receipt over HTTP: {receipt}");
    }
    let ts = client
        .read(
            &DatacenterId::new("dc1"),
            &Pool::Target,
            Freshness::UpToDate,
            Some(&EntityName::device("dc1", "agg-1-1")),
            Some(Attribute::DeviceBootImage),
        )
        .unwrap();
    println!(
        "[remote-app] TS over HTTP: {}",
        ts.first().map(|r| r.to_string()).unwrap_or_default()
    );

    // Let the updater realize the change, then confirm on the device.
    statesman
        .tick_and_advance(SimDuration::from_mins(5))
        .unwrap();
    let image = net
        .device_snapshot(&"agg-1-1".into())
        .unwrap()
        .boot_image
        .clone();
    println!("[network]   agg-1-1 boot image is now `{image}`");
    assert_eq!(image, "golden-image-v2");
}
