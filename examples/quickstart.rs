//! Quickstart: bring up a simulated datacenter under Statesman, propose a
//! change as a management application, and watch the three state views
//! (observed → proposed → target) drive the network.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use statesman::core::{Coordinator, CoordinatorConfig, StatesmanClient};
use statesman::net::{SimClock, SimConfig, SimNetwork};
use statesman::prelude::*;
use statesman::storage::{StorageConfig, StorageService};
use statesman::topology::DcnSpec;

fn main() {
    // 1. A network to manage: a small two-pod fabric (2 Aggs + 2 ToRs per
    //    pod, 2 cores), simulated with realistic command latencies.
    let clock = SimClock::new();
    let graph = DcnSpec::tiny("dc1").build();
    let mut sim = SimConfig::ideal();
    sim.faults.command_latency_ms = 1_000;
    sim.faults.reboot_window_ms = 3 * 60_000;
    let net = SimNetwork::new(&graph, clock.clone(), sim);
    println!(
        "simulated fabric: {} devices, {} links",
        graph.node_count(),
        graph.edge_count()
    );

    // 2. Statesman: partitioned replicated storage + monitor + checker
    //    (with the connectivity and capacity invariants) + updater.
    let storage = StorageService::new(
        [DatacenterId::new("dc1")],
        clock.clone(),
        StorageConfig::default(),
    );
    let statesman = Coordinator::new(
        &graph,
        net.clone(),
        storage.clone(),
        CoordinatorConfig::default(),
    );
    println!("impact groups: {:?}", statesman.groups());

    // Round 0 populates the observed state.
    statesman
        .tick_and_advance(SimDuration::from_mins(1))
        .unwrap();
    println!(
        "observed state: {} rows",
        storage.pool_len(&DatacenterId::new("dc1"), &Pool::Observed)
    );

    // 3. An application: read the OS, propose a firmware upgrade.
    let app = StatesmanClient::new("switch-upgrade", storage.clone(), clock.clone());
    let target = EntityName::device("dc1", "agg-1-1");
    let current = app
        .read_os_value(&target, Attribute::DeviceFirmwareVersion)
        .unwrap()
        .unwrap();
    println!("agg-1-1 runs firmware {current}; proposing 7.0.1");
    app.propose([(
        target.clone(),
        Attribute::DeviceFirmwareVersion,
        Value::text("7.0.1"),
    )])
    .unwrap();

    // 4. Statesman merges the proposal (checker) and executes it
    //    (updater); the app polls its receipt.
    let round = statesman
        .tick_and_advance(SimDuration::from_mins(5))
        .unwrap();
    for receipt in app.take_receipts().unwrap() {
        println!("receipt: {receipt}");
    }
    println!(
        "round: {} accepted, {} rejected, {} commands issued",
        round.accepted(),
        round.rejected(),
        round.updater.commands_applied
    );

    // 5. Keep the loop running until the network converges to the TS.
    for _ in 0..3 {
        statesman
            .tick_and_advance(SimDuration::from_mins(5))
            .unwrap();
    }
    let now_running = net
        .device_snapshot(&"agg-1-1".into())
        .unwrap()
        .observed_firmware()
        .to_string();
    println!("agg-1-1 now runs firmware {now_running}");
    assert_eq!(now_running, "7.0.1");

    // 6. The checker is also a guardian: upgrading *both* Aggs of a pod
    //    at once would cut its ToRs off, so one proposal is rejected.
    app.propose([
        (
            EntityName::device("dc1", "agg-2-1"),
            Attribute::DeviceFirmwareVersion,
            Value::text("7.0.1"),
        ),
        (
            EntityName::device("dc1", "agg-2-2"),
            Attribute::DeviceFirmwareVersion,
            Value::text("7.0.1"),
        ),
    ])
    .unwrap();
    let round = statesman
        .tick_and_advance(SimDuration::from_mins(5))
        .unwrap();
    println!(
        "greedy pod-2 double upgrade: {} accepted, {} rejected (invariant guarded)",
        round.accepted(),
        round.rejected()
    );
    for receipt in app.take_receipts().unwrap() {
        println!("receipt: {receipt}");
    }
}
