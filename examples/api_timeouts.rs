//! The API front end's admission and timeout edges, observed on real
//! TCP: a sunset legacy alias (410 Gone), the same alias re-enabled for
//! a deprecation cycle, a half-open connection (connects, never sends —
//! the classic slow-client attack), and a garbage request, each answered
//! appropriately — all without a thread per connection.
//!
//! ```text
//! cargo run --example api_timeouts
//! ```

use statesman::httpapi::{ApiServer, ServerConfig};
use statesman::net::SimClock;
use statesman::storage::StorageService;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn main() {
    let clock = SimClock::new();
    let storage = StorageService::single_dc("dc1", clock);
    let server = ApiServer::start_with_config(
        storage.clone(),
        ServerConfig {
            idle_timeout: Duration::from_millis(300),
            ..ServerConfig::default()
        },
        None,
    )
    .unwrap();
    let addr = server.addr();
    println!("API on http://{addr}, idle timeout 300ms\n");

    // The Table-3 alias is sunset: 410 Gone with a successor link.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"GET /healthz HTTP/1.1\r\nhost: demo\r\nconnection: close\r\n\r\n")
        .unwrap();
    let mut buf = String::new();
    s.read_to_string(&mut buf).unwrap();
    println!("--- /healthz on a default server (sunset alias) ---\n{buf}\n");

    // Re-enable the aliases for one more deprecation cycle: the alias
    // answers, flagged with deprecation + successor headers.
    let legacy = ApiServer::start_with_config(
        storage,
        ServerConfig {
            legacy_aliases: true,
            idle_timeout: Duration::from_millis(300),
            ..ServerConfig::default()
        },
        None,
    )
    .unwrap();
    let mut s = TcpStream::connect(legacy.addr()).unwrap();
    s.write_all(b"GET /healthz HTTP/1.1\r\nhost: demo\r\nconnection: close\r\n\r\n")
        .unwrap();
    let mut buf = String::new();
    s.read_to_string(&mut buf).unwrap();
    println!("--- /healthz with legacy_aliases enabled ---\n{buf}\n");
    drop(legacy);

    // Half-open: connect and send nothing. The reactor answers 408 and
    // closes rather than pinning anything (no thread is waiting on it).
    let t0 = Instant::now();
    let mut idle = TcpStream::connect(addr).unwrap();
    let mut buf = String::new();
    idle.read_to_string(&mut buf).unwrap();
    println!(
        "--- half-open connection, closed by server after {}ms ---\n{buf}\n",
        t0.elapsed().as_millis()
    );

    // Garbage that did arrive stays a 400, not a 408.
    let mut g = TcpStream::connect(addr).unwrap();
    g.write_all(b"NOT-HTTP\r\n\r\n").unwrap();
    let mut buf = String::new();
    g.read_to_string(&mut buf).unwrap();
    println!("--- garbage request ---\n{buf}");
}
