//! The API front end's socket timeouts, observed on real TCP: a healthy
//! request, a half-open connection (connects, never sends — the classic
//! slow-client resource attack on thread-per-connection servers), and a
//! garbage request, each answered appropriately.
//!
//! ```text
//! cargo run --example api_timeouts
//! ```

use statesman::httpapi::ApiServer;
use statesman::net::SimClock;
use statesman::storage::StorageService;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn main() {
    let clock = SimClock::new();
    let storage = StorageService::single_dc("dc1", clock);
    let server = ApiServer::start_with_io_timeout(storage, Duration::from_millis(300)).unwrap();
    let addr = server.addr();
    println!("API on http://{addr}, per-socket io timeout 300ms\n");

    // A well-formed request over a raw socket — via the deprecated
    // `/healthz` alias, so the deprecation + successor headers show up.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"GET /healthz HTTP/1.1\r\nhost: demo\r\n\r\n")
        .unwrap();
    let mut buf = String::new();
    s.read_to_string(&mut buf).unwrap();
    println!("--- /healthz (deprecated alias of /v1/health) over raw TCP ---\n{buf}\n");

    // Half-open: connect and send nothing. The server must answer 408
    // and close rather than pin the worker thread forever.
    let t0 = Instant::now();
    let mut idle = TcpStream::connect(addr).unwrap();
    let mut buf = String::new();
    idle.read_to_string(&mut buf).unwrap();
    println!(
        "--- half-open connection, closed by server after {}ms ---\n{buf}\n",
        t0.elapsed().as_millis()
    );

    // Garbage that did arrive stays a 400, not a 408.
    let mut g = TcpStream::connect(addr).unwrap();
    g.write_all(b"NOT-HTTP\r\n\r\n").unwrap();
    let mut buf = String::new();
    g.read_to_string(&mut buf).unwrap();
    println!("--- garbage request ---\n{buf}");
}
