//! The §7.3 WAN scenario, condensed: inter-DC TE and switch-upgrade
//! coordinate through priority locks to upgrade a border router with zero
//! traffic on it — no maintenance windows, no human coordination.
//!
//! ```text
//! cargo run --release --example wan_lock_dance
//! ```

use statesman::apps::{
    DrainTarget, InterDcTeApp, ManagementApp, SwitchUpgradeApp, TeConfig, TrafficDemand,
    UpgradeConfig, UpgradePlan,
};
use statesman::core::{Coordinator, CoordinatorConfig, StatesmanClient};
use statesman::net::{SimClock, SimConfig, SimNetwork};
use statesman::prelude::*;
use statesman::storage::{StorageConfig, StorageService};
use statesman::topology::WanSpec;

fn main() {
    let clock = SimClock::new();
    let wan = WanSpec::fig9();
    let graph = wan.build();
    let mut sim = SimConfig::ideal();
    sim.faults.command_latency_ms = 2_000;
    sim.faults.reboot_window_ms = 8 * 60_000;
    let net = SimNetwork::new(&graph, clock.clone(), sim);
    let storage = StorageService::new(
        wan.dc_names.iter().map(DatacenterId::new),
        clock.clone(),
        StorageConfig::default(),
    );
    let statesman = Coordinator::new(
        &graph,
        net.clone(),
        storage.clone(),
        CoordinatorConfig::default(),
    );
    println!(
        "WAN: 4 DCs full mesh, 2 border routers each; impact groups {:?}",
        statesman.groups()
    );

    // TE: full-mesh demands, 30 Gbps each.
    let mut demands = Vec::new();
    for s in &wan.dc_names {
        for d in &wan.dc_names {
            if s != d {
                demands.push(TrafficDemand::new(s.clone(), d.clone(), 30_000.0));
            }
        }
    }
    let mut te = InterDcTeApp::new(
        StatesmanClient::new("inter-dc-te", storage.clone(), clock.clone()),
        TeConfig::from_wan_spec(&wan, demands),
    );

    // Upgrade: br-1 behind a high-priority lock with a drain wait.
    let br1 = DeviceName::new("br-1");
    let links = graph
        .links_of_device(&br1)
        .into_iter()
        .map(|l| EntityName::link_named(DatacenterId::wan(), l))
        .collect();
    let mut upgrade = SwitchUpgradeApp::new(
        StatesmanClient::new("switch-upgrade", storage, clock.clone()),
        UpgradeConfig {
            target_version: "9.4.2".into(),
            plan: UpgradePlan::LockAndDrain {
                devices: vec![DrainTarget {
                    datacenter: DatacenterId::new("dc1"),
                    device: br1.clone(),
                    links,
                }],
                drain_epsilon_mbps: 1.0,
            },
        },
    );

    let br1_load = |net: &SimNetwork| -> f64 {
        net.link_names()
            .iter()
            .filter(|l| l.touches(&br1))
            .map(|l| {
                let s = net.link_snapshot(l).unwrap();
                s.load_ab_mbps + s.load_ba_mbps
            })
            .sum()
    };

    for round in 0..16 {
        let up_note = upgrade.step().unwrap();
        te.step().unwrap();
        statesman
            .tick_and_advance(SimDuration::from_millis(1))
            .unwrap();
        net.offer_flows(te.flow_specs());
        net.step(SimDuration::from_mins(5));
        let fw = net
            .device_snapshot(&br1)
            .unwrap()
            .observed_firmware()
            .to_string();
        println!(
            "[{}] br-1: load {:>6.0} Mbps, firmware {}, operational {}  {}",
            clock.now(),
            br1_load(&net),
            fw,
            net.device_operational(&br1),
            up_note.notes.first().cloned().unwrap_or_default()
        );
        if upgrade.is_done() && round > 2 {
            break;
        }
    }
    // A couple of cooldown rounds: TE re-acquires br-1 and moves traffic
    // back.
    for _ in 0..3 {
        te.step().unwrap();
        statesman
            .tick_and_advance(SimDuration::from_millis(1))
            .unwrap();
        net.offer_flows(te.flow_specs());
        net.step(SimDuration::from_mins(5));
        println!(
            "[{}] br-1: load {:>6.0} Mbps (traffic returning)",
            clock.now(),
            br1_load(&net)
        );
    }
    assert_eq!(
        net.device_snapshot(&br1).unwrap().observed_firmware(),
        "9.4.2"
    );
    assert!(br1_load(&net) > 1.0);
    println!("br-1 upgraded at zero load and traffic restored — the Fig-10 dance.");
}
