//! The energy saver probing the invariant floor — ElasticTree's idea
//! expressed as a loosely coupled Statesman application (§1's motivation
//! list includes "saving energy" alongside maintenance and upgrades).
//!
//! The app greedily proposes sleeping idle Aggs; it knows nothing about
//! capacity. The checker's 99%/50% ToR-pair capacity invariant is the
//! only thing stopping it — and the rejection receipt is the only signal
//! the app needs.
//!
//! ```text
//! cargo run --example energy_saver
//! ```

use statesman::apps::{upgrade::agg_pods_of, EnergyConfig, EnergySaverApp, ManagementApp};
use statesman::core::{Coordinator, CoordinatorConfig, StatesmanClient};
use statesman::net::{SimClock, SimConfig, SimNetwork};
use statesman::prelude::*;
use statesman::storage::{StorageConfig, StorageService};
use statesman::topology::DcnSpec;

fn main() {
    let clock = SimClock::new();
    let graph = DcnSpec::fig7("dc1").build();
    let mut sim = SimConfig::ideal();
    sim.faults.command_latency_ms = 500;
    let net = SimNetwork::new(&graph, clock.clone(), sim);
    let storage = StorageService::new(
        [DatacenterId::new("dc1")],
        clock.clone(),
        StorageConfig::default(),
    );
    let statesman = Coordinator::new(
        &graph,
        net.clone(),
        storage.clone(),
        CoordinatorConfig::default(),
    );
    let dc = DatacenterId::new("dc1");
    let mut app = EnergySaverApp::new(
        StatesmanClient::new("energy-saver", storage, clock.clone()),
        EnergyConfig {
            datacenter: dc.clone(),
            pods: agg_pods_of(&graph, &dc).into_iter().take(2).collect(),
            sleep_below_utilization: 0.1,
            wake_above_utilization: 0.5,
            persistence: 2,
        },
    );

    println!("idle Fig-7 fabric; energy saver targets pods 1-2 (4 Aggs each)");
    statesman
        .tick_and_advance(SimDuration::from_mins(5))
        .unwrap();
    for round in 1..=12 {
        let report = app.step().unwrap();
        statesman
            .tick_and_advance(SimDuration::from_mins(5))
            .unwrap();
        net.step(SimDuration::from_mins(1));
        for note in &report.notes {
            println!("[round {round:>2}] {note}");
        }
    }

    let sleeping = app.sleeping();
    println!();
    println!("sleeping Aggs: {sleeping:?}");
    let down: Vec<String> = net
        .device_names()
        .into_iter()
        .filter(|d| !net.device_operational(d))
        .map(|d| d.to_string())
        .collect();
    println!("powered-off devices: {down:?}");
    // The 50%-capacity invariant allows exactly 2 of 4 Aggs per pod down.
    assert_eq!(sleeping.len(), 4, "2 pods x 2 Aggs at the invariant floor");
    assert_eq!(down.len(), 4);
    println!("the checker held the floor at 2-of-4 Aggs per pod — energy saved, capacity kept.");
}
