//! Offline stand-in for `proptest` (1.x): seeded random generation with
//! the combinator and macro surface this workspace uses, but **no
//! shrinking** — a failing case panics with the seed and iteration so it
//! can be reproduced deterministically.
//!
//! Supported: `proptest!` (with optional `#![proptest_config(..)]`),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`, `prop_assume!`,
//! `prop_oneof!`, `any::<T>()`, ranges as strategies, `&str` regex-subset
//! strategies, `Just`, `proptest::collection::vec`,
//! `proptest::option::of`, tuple strategies, and `.prop_map`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng, Union,
    };
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; we keep suites fast while still
        // exercising plenty of inputs.
        ProptestConfig { cases: 64 }
    }
}

/// The generator handed to strategies.
pub struct TestRng(pub StdRng);

impl TestRng {
    /// Seeded constructor (used by the `proptest!` macro).
    pub fn seeded(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }
}

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; try another case.
    Reject(String),
    /// A `prop_assert*` failed; the test fails.
    Fail(String),
}

/// A value generator. Unlike upstream there is no shrinking: `generate`
/// produces the final value directly.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = self;
        BoxedStrategy(Arc::new(move |rng| inner.generate(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let idx = rng.0.gen_range(0..self.0.len());
        self.0[idx].generate(rng)
    }
}

// ---------------------------------------------------------------------
// Ranges, primitives, regex strings
// ---------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.0.gen_range(self.clone())
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.0.gen_range(self.clone())
    }
}

/// `&str` as a strategy: the string is a regex subset pattern; generated
/// values match it. Supported syntax: literals, escapes, `[...]` classes
/// with ranges, and the quantifiers `{n}`, `{n,m}`, `?`, `*`, `+`.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let nodes = regex_lite::parse(self)
            .unwrap_or_else(|e| panic!("unsupported regex pattern {self:?}: {e}"));
        regex_lite::sample(&nodes, rng)
    }
}

mod regex_lite {
    //! The tiny regex subset used for string strategies.

    use super::TestRng;
    use rand::Rng;

    pub struct Node {
        /// Candidate (inclusive) character ranges.
        pub ranges: Vec<(char, char)>,
        /// Repetition bounds (inclusive).
        pub min: u32,
        pub max: u32,
    }

    pub fn parse(pattern: &str) -> Result<Vec<Node>, String> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0usize;
        let mut nodes = Vec::new();
        while i < chars.len() {
            let ranges = match chars[i] {
                '[' => {
                    let close = chars[i + 1..]
                        .iter()
                        .position(|&c| c == ']')
                        .ok_or("unterminated character class")?
                        + i
                        + 1;
                    let body = &chars[i + 1..close];
                    i = close + 1;
                    parse_class(body)?
                }
                '\\' => {
                    let c = *chars.get(i + 1).ok_or("dangling escape")?;
                    i += 2;
                    vec![(c, c)]
                }
                '(' | ')' | '|' | '^' | '$' => {
                    return Err(format!("unsupported regex construct `{}`", chars[i]));
                }
                '.' => {
                    i += 1;
                    vec![(' ', '~')]
                }
                c => {
                    i += 1;
                    vec![(c, c)]
                }
            };
            // Optional quantifier.
            let (min, max) = match chars.get(i) {
                Some('{') => {
                    let close = chars[i + 1..]
                        .iter()
                        .position(|&c| c == '}')
                        .ok_or("unterminated quantifier")?
                        + i
                        + 1;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    if let Some((lo, hi)) = body.split_once(',') {
                        let lo: u32 = lo.trim().parse().map_err(|_| "bad quantifier")?;
                        let hi: u32 = hi.trim().parse().map_err(|_| "bad quantifier")?;
                        (lo, hi)
                    } else {
                        let n: u32 = body.trim().parse().map_err(|_| "bad quantifier")?;
                        (n, n)
                    }
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                Some('*') => {
                    i += 1;
                    (0, 6)
                }
                Some('+') => {
                    i += 1;
                    (1, 6)
                }
                _ => (1, 1),
            };
            nodes.push(Node { ranges, min, max });
        }
        Ok(nodes)
    }

    fn parse_class(body: &[char]) -> Result<Vec<(char, char)>, String> {
        let mut ranges = Vec::new();
        let mut i = 0usize;
        while i < body.len() {
            let c = if body[i] == '\\' {
                i += 1;
                *body.get(i).ok_or("dangling escape in class")?
            } else {
                body[i]
            };
            // A `-` forms a range unless it is the last char of the class.
            if body.get(i + 1) == Some(&'-') && i + 2 < body.len() {
                let hi = body[i + 2];
                if c > hi {
                    return Err(format!("inverted range {c}-{hi}"));
                }
                ranges.push((c, hi));
                i += 3;
            } else {
                ranges.push((c, c));
                i += 1;
            }
        }
        if ranges.is_empty() {
            return Err("empty character class".into());
        }
        Ok(ranges)
    }

    pub fn sample(nodes: &[Node], rng: &mut TestRng) -> String {
        let mut out = String::new();
        for node in nodes {
            let count = rng.0.gen_range(node.min..=node.max);
            for _ in 0..count {
                let (lo, hi) = node.ranges[rng.0.gen_range(0..node.ranges.len())];
                let span = hi as u32 - lo as u32 + 1;
                let pick = lo as u32 + rng.0.gen_range(0..span);
                out.push(char::from_u32(pick).unwrap_or(lo));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// The strategy type `any::<T>()` returns.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-range draw for a primitive type.
pub struct FullRange<T>(std::marker::PhantomData<T>);

impl<T> Clone for FullRange<T> {
    fn clone(&self) -> Self {
        FullRange(std::marker::PhantomData)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::RngCore;
                rng.0.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = FullRange<$t>;
            fn arbitrary() -> FullRange<$t> {
                FullRange(std::marker::PhantomData)
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for FullRange<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.0.gen::<bool>()
    }
}

impl Arbitrary for bool {
    type Strategy = FullRange<bool>;

    fn arbitrary() -> FullRange<bool> {
        FullRange(std::marker::PhantomData)
    }
}

impl Strategy for FullRange<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Finite floats across a wide dynamic range.
        let mantissa: f64 = rng.0.gen_range(-1.0..1.0);
        let exp: i32 = rng.0.gen_range(-300..300);
        mantissa * 10f64.powi(exp)
    }
}

impl Arbitrary for f64 {
    type Strategy = FullRange<f64>;

    fn arbitrary() -> FullRange<f64> {
        FullRange(std::marker::PhantomData)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

// ---------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
);

// ---------------------------------------------------------------------
// collection / option modules
// ---------------------------------------------------------------------

pub mod collection {
    //! `proptest::collection` subset.

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length specification for [`vec()`](fn@vec).
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for vectors of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng
                .0
                .gen_range(self.size.lo..self.size.hi.max(self.size.lo + 1));
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `proptest::option` subset.

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Option<T>` (~25% `None`, matching upstream's
    /// default weighting).
    pub struct OptionStrategy<S>(S);

    /// `None` or `Some(value)` from the inner strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.0.gen_bool(0.25) {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Define property tests. Mirrors upstream's surface for the forms used
/// in this workspace.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            // Deterministic per-test seed so failures reproduce.
            let seed = {
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in stringify!($name).bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x0000_0100_0000_01B3);
                }
                h
            };
            let mut rng = $crate::TestRng::seeded(seed);
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(20).saturating_add(100);
            while passed < config.cases {
                attempts += 1;
                if attempts > max_attempts {
                    panic!(
                        "proptest {}: too many rejected cases ({} attempts, {} passed)",
                        stringify!($name), attempts, passed
                    );
                }
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::TestCaseError::Reject(_)) => {}
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {} (seed {:#x}): {}",
                            stringify!($name), passed, seed, msg
                        );
                    }
                }
            }
        }
    )*};
}

/// Reject the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject(stringify!($cond).to_string()));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}): {}",
                stringify!($left), stringify!($right), l, r, format!($($fmt)+)
            )));
        }
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left), stringify!($right), l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {} (both: {:?}): {}",
                stringify!($left), stringify!($right), l, format!($($fmt)+)
            )));
        }
    }};
}

/// Uniform choice among strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn regex_strings_match_shape() {
        let mut rng = TestRng::seeded(11);
        for _ in 0..200 {
            let s = "[a-z][a-z0-9.-]{0,30}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 31);
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_lowercase(), "{s}");
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '-'),
                "{s}"
            );
        }
    }

    #[test]
    fn printable_class_with_leading_space_range() {
        let mut rng = TestRng::seeded(12);
        for _ in 0..100 {
            let s = "[ -~]{0,60}".generate(&mut rng);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_plumbing_works(
            a in 0..100u64,
            b in prop_oneof![Just(1u8), Just(2u8)],
            opt in crate::option::of(0..5u32),
            v in crate::collection::vec(0..10i32, 1..4),
        ) {
            prop_assume!(a != 99);
            prop_assert!(a < 100);
            prop_assert!(b == 1 || b == 2);
            if let Some(x) = opt {
                prop_assert!(x < 5);
            }
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert_eq!(a + 1, 1 + a);
            prop_assert_ne!(a, a + 1);
        }
    }
}
