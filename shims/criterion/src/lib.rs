//! Offline stand-in for `criterion` (0.5 API surface used here).
//!
//! No statistics, plots, or warm-up phases: each benchmark closure runs a
//! small fixed number of iterations and the mean wall-clock time is
//! printed. That keeps `cargo bench` functional (and fast) without
//! registry access while preserving the upstream macro/API shape.

use std::time::Instant;

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            group: name,
            sample_size: 10,
        }
    }

    /// Benchmark outside any group.
    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        run_one("", &id.into(), 10, &mut f);
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    group: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of samples (we run a scaled-down count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run one benchmark.
    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        run_one(&self.group, &id.into(), self.sample_size, &mut f);
    }

    /// Run one parameterized benchmark.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        run_one(&self.group, &id.0, self.sample_size, &mut |b| f(b, input));
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Build an id from the parameter alone.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId(param.to_string())
    }

    /// Build an id from a function name and parameter.
    pub fn new(function: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{param}", function.into()))
    }
}

/// Hands the measured closure to the benchmark body.
pub struct Bencher {
    iters: u64,
    total_nanos: u128,
}

impl Bencher {
    /// Time `f` over the configured iterations.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.total_nanos += start.elapsed().as_nanos();
    }
}

fn run_one(group: &str, id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Scale the upstream sample count down: a handful of iterations is
    // enough for the smoke-level timing this stub reports.
    let iters = (sample_size as u64 / 5).clamp(1, 5);
    let mut bencher = Bencher {
        iters,
        total_nanos: 0,
    };
    f(&mut bencher);
    let per_iter = if bencher.total_nanos > 0 {
        bencher.total_nanos / bencher.iters.max(1) as u128
    } else {
        0
    };
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    println!("bench {label}: {} ns/iter ({iters} iters)", per_iter);
}

/// Collect benchmark functions into one runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let _ = $cfg;
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
