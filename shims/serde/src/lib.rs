//! Offline stand-in for `serde` (1.x) sufficient for this workspace.
//!
//! Instead of serde's visitor-based zero-copy architecture, this shim
//! uses a concrete data-model tree, [`Content`]: serialization lowers a
//! value into a `Content`, deserialization lifts a `Content` back into a
//! value. The companion `serde_json` shim converts `Content` to and from
//! JSON text using the same conventions as upstream serde (externally
//! tagged enums, maps for structs, transparent newtypes), so existing
//! `#[derive(Serialize, Deserialize)]` code and its wire format keep
//! working without registry access.

pub use serde_derive::{Deserialize, Serialize};

/// The serde data-model tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` / Rust `Option::None` / unit.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer (covers all `iN` and any `uN` that fits).
    I64(i64),
    /// Unsigned integer above `i64::MAX`.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (arrays, tuples, tuple variants).
    Seq(Vec<Content>),
    /// Map (structs, maps, struct variants). Order-preserving.
    Map(Vec<(Content, Content)>),
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Lower `self` into the data-model tree.
pub trait Serialize {
    /// Produce the `Content` representation.
    fn to_content(&self) -> Content;
}

/// Lift a value out of the data-model tree.
pub trait Deserialize: Sized {
    /// Reconstruct from a `Content` representation.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

pub mod help {
    //! Helpers the derive macro expands calls to.

    use super::{Content, DeError};

    /// Construct a [`DeError`].
    pub fn err(msg: impl Into<String>) -> DeError {
        DeError(msg.into())
    }

    /// Look up a struct field by name in a map body.
    pub fn map_get<'a>(map: &'a [(Content, Content)], key: &str) -> Option<&'a Content> {
        map.iter().find_map(|(k, v)| match k {
            Content::Str(s) if s == key => Some(v),
            _ => None,
        })
    }

    /// Split an externally tagged enum value into `(variant, payload)`:
    /// a bare string is a unit variant, a single-entry map is a data
    /// variant.
    pub fn as_variant(content: &Content) -> Result<(&str, Option<&Content>), DeError> {
        match content {
            Content::Str(tag) => Ok((tag.as_str(), None)),
            Content::Map(entries) if entries.len() == 1 => match &entries[0].0 {
                Content::Str(tag) => Ok((tag.as_str(), Some(&entries[0].1))),
                other => Err(err(format!("enum tag must be a string, got {other:?}"))),
            },
            other => Err(err(format!(
                "expected enum (string or single-entry map), got {other:?}"
            ))),
        }
    }
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v: i64 = match c {
                    Content::I64(v) => *v,
                    Content::U64(v) => i64::try_from(*v)
                        .map_err(|_| help::err(format!("integer {v} out of range")))?,
                    Content::F64(v) if v.fract() == 0.0 => *v as i64,
                    other => return Err(help::err(format!(
                        "expected integer, got {other:?}"
                    ))),
                };
                <$t>::try_from(v)
                    .map_err(|_| help::err(format!("integer {v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_de_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as u64;
                if let Ok(i) = i64::try_from(v) {
                    Content::I64(i)
                } else {
                    Content::U64(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v: u64 = match c {
                    Content::I64(v) => u64::try_from(*v)
                        .map_err(|_| help::err(format!("integer {v} out of range")))?,
                    Content::U64(v) => *v,
                    Content::F64(v) if v.fract() == 0.0 && *v >= 0.0 => *v as u64,
                    other => return Err(help::err(format!(
                        "expected unsigned integer, got {other:?}"
                    ))),
                };
                <$t>::try_from(v)
                    .map_err(|_| help::err(format!("integer {v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_de_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(help::err(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::F64(v) => Ok(*v),
            Content::I64(v) => Ok(*v as f64),
            Content::U64(v) => Ok(*v as f64),
            Content::Null => Ok(f64::NAN),
            other => Err(help::err(format!("expected float, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        f64::from_content(c).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(help::err(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(help::err(format!(
                "expected single-char string, got {other:?}"
            ))),
        }
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(()),
            other => Err(help::err(format!("expected null, got {other:?}"))),
        }
    }
}

// ---------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(help::err(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

macro_rules! ser_de_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::Seq(items) => {
                        let expected = [$($n,)+].len();
                        if items.len() != expected {
                            return Err(help::err(format!(
                                "expected {expected}-tuple, got {} elements", items.len()
                            )));
                        }
                        Ok(($($t::from_content(&items[$n])?,)+))
                    }
                    other => Err(help::err(format!("expected sequence, got {other:?}"))),
                }
            }
        }
    )+};
}

ser_de_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E)
);

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_content(), v.to_content()))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
                .collect(),
            other => Err(help::err(format!("expected map, got {other:?}"))),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_content(), v.to_content()))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for std::collections::BTreeMap<K, V>
where
    K: Deserialize + Ord,
    V: Deserialize,
{
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
                .collect(),
            other => Err(help::err(format!("expected map, got {other:?}"))),
        }
    }
}

impl<T> Serialize for std::collections::HashSet<T, std::collections::hash_map::RandomState>
where
    T: Serialize,
{
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T> Deserialize for std::collections::HashSet<T, std::collections::hash_map::RandomState>
where
    T: Deserialize + std::hash::Hash + Eq,
{
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(help::err(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(help::err(format!("expected sequence, got {other:?}"))),
        }
    }
}
