//! Derive macros for the offline `serde` shim.
//!
//! Parses the item's `TokenStream` directly (no `syn`/`quote`, since the
//! build environment cannot fetch them) and emits `impl serde::Serialize`
//! / `impl serde::Deserialize` blocks following upstream serde's default
//! representation: structs as maps keyed by field name, enums externally
//! tagged, newtype structs delegating to their inner value. Supported
//! attributes: `#[serde(transparent)]` on containers and
//! `#[serde(default)]` on named fields. Generic types are not supported
//! (the workspace has none).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

struct Field {
    name: String,
    has_default: bool,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Kind {
    Struct(Shape),
    Enum(Vec<Variant>),
}

struct Container {
    name: String,
    transparent: bool,
    kind: Kind,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let container = match parse_container(input) {
        Ok(c) => c,
        Err(msg) => {
            return format!("compile_error!({msg:?});").parse().unwrap();
        }
    };
    let code = match mode {
        Mode::Serialize => gen_serialize(&container),
        Mode::Deserialize => gen_deserialize(&container),
    };
    code.parse().unwrap()
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Consume leading attributes, returning the serde flags seen
    /// (`transparent`, `default`).
    fn take_attrs(&mut self) -> (bool, bool) {
        let mut transparent = false;
        let mut default = false;
        loop {
            match self.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    self.next();
                    if let Some(TokenTree::Group(g)) = self.next() {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        if let Some(TokenTree::Ident(name)) = inner.first() {
                            if name.to_string() == "serde" {
                                if let Some(TokenTree::Group(args)) = inner.get(1) {
                                    for t in args.stream() {
                                        if let TokenTree::Ident(flag) = t {
                                            match flag.to_string().as_str() {
                                                "transparent" => transparent = true,
                                                "default" => default = true,
                                                _ => {}
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                _ => break,
            }
        }
        (transparent, default)
    }

    /// Consume an optional visibility qualifier (`pub`, `pub(crate)`, …).
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    /// Consume tokens of a type expression until a top-level comma
    /// (angle-bracket depth aware). Leaves the comma unconsumed.
    fn skip_type(&mut self) {
        let mut depth: i32 = 0;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
                _ => {}
            }
            self.next();
        }
    }
}

fn parse_container(input: TokenStream) -> Result<Container, String> {
    let mut cur = Cursor::new(input);
    let (transparent, _) = cur.take_attrs();
    cur.skip_visibility();

    let keyword = match cur.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match cur.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = cur.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim derive does not support generic type `{name}`"
            ));
        }
    }

    let kind = match keyword.as_str() {
        "struct" => Kind::Struct(parse_struct_shape(&mut cur)?),
        "enum" => {
            let body = match cur.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                other => return Err(format!("expected enum body, got {other:?}")),
            };
            Kind::Enum(parse_variants(body.stream())?)
        }
        other => return Err(format!("cannot derive for `{other}` items")),
    };

    Ok(Container {
        name,
        transparent,
        kind,
    })
}

fn parse_struct_shape(cur: &mut Cursor) -> Result<Shape, String> {
    match cur.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Ok(Shape::Named(parse_named_fields(g.stream())?))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Ok(Shape::Tuple(count_tuple_fields(g.stream())))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Shape::Unit),
        None => Ok(Shape::Unit),
        other => Err(format!("unexpected token in struct body: {other:?}")),
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    loop {
        if cur.at_end() {
            break;
        }
        let (_, has_default) = cur.take_attrs();
        cur.skip_visibility();
        let name = match cur.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        cur.skip_type();
        fields.push(Field { name, has_default });
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => break,
            other => return Err(format!("expected `,` between fields, got {other:?}")),
        }
    }
    Ok(fields)
}

/// Count the fields of a tuple struct/variant body: top-level comma
/// separators plus one, ignoring a trailing comma.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth: i32 = 0;
    let mut count = 0usize;
    let mut segment_has_tokens = false;
    for t in stream {
        match t {
            TokenTree::Punct(ref p) if p.as_char() == '<' => {
                depth += 1;
                segment_has_tokens = true;
            }
            TokenTree::Punct(ref p) if p.as_char() == '>' => {
                depth -= 1;
                segment_has_tokens = true;
            }
            TokenTree::Punct(ref p) if p.as_char() == ',' && depth == 0 => {
                if segment_has_tokens {
                    count += 1;
                }
                segment_has_tokens = false;
            }
            _ => segment_has_tokens = true,
        }
    }
    if segment_has_tokens {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        if cur.at_end() {
            break;
        }
        let _ = cur.take_attrs();
        let name = match cur.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        let shape = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.clone();
                cur.next();
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.clone();
                cur.next();
                Shape::Named(parse_named_fields(g.stream())?)
            }
            _ => Shape::Unit,
        };
        variants.push(Variant { name, shape });
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => break,
            other => return Err(format!("expected `,` between variants, got {other:?}")),
        }
    }
    Ok(variants)
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn gen_serialize(c: &Container) -> String {
    let name = &c.name;
    let body = match &c.kind {
        Kind::Struct(Shape::Unit) => "serde::Content::Null".to_string(),
        Kind::Struct(Shape::Tuple(1)) => {
            // Newtype structs delegate to the inner value (upstream
            // default, and what `#[serde(transparent)]` requests).
            "serde::Serialize::to_content(&self.0)".to_string()
        }
        Kind::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("serde::Content::Seq(vec![{}])", items.join(", "))
        }
        Kind::Struct(Shape::Named(fields)) => {
            if c.transparent && fields.len() == 1 {
                format!("serde::Serialize::to_content(&self.{})", fields[0].name)
            } else {
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(serde::Content::Str({:?}.to_string()), \
                             serde::Serialize::to_content(&self.{}))",
                            f.name, f.name
                        )
                    })
                    .collect();
                format!("serde::Content::Map(vec![{}])", entries.join(", "))
            }
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| ser_variant_arm(name, v)).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn to_content(&self) -> serde::Content {{ {body} }}\n\
         }}"
    )
}

fn ser_variant_arm(enum_name: &str, v: &Variant) -> String {
    let tag = format!("serde::Content::Str({:?}.to_string())", v.name);
    match &v.shape {
        Shape::Unit => format!("{enum_name}::{} => {tag},", v.name),
        Shape::Tuple(1) => format!(
            "{enum_name}::{}(f0) => serde::Content::Map(vec![({tag}, \
             serde::Serialize::to_content(f0))]),",
            v.name
        ),
        Shape::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_content(f{i})"))
                .collect();
            format!(
                "{enum_name}::{}({}) => serde::Content::Map(vec![({tag}, \
                 serde::Content::Seq(vec![{}]))]),",
                v.name,
                binds.join(", "),
                items.join(", ")
            )
        }
        Shape::Named(fields) => {
            let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(serde::Content::Str({:?}.to_string()), \
                         serde::Serialize::to_content({}))",
                        f.name, f.name
                    )
                })
                .collect();
            format!(
                "{enum_name}::{} {{ {} }} => serde::Content::Map(vec![({tag}, \
                 serde::Content::Map(vec![{}]))]),",
                v.name,
                binds.join(", "),
                entries.join(", ")
            )
        }
    }
}

fn gen_deserialize(c: &Container) -> String {
    let name = &c.name;
    let body = match &c.kind {
        Kind::Struct(Shape::Unit) => format!("Ok({name})"),
        Kind::Struct(Shape::Tuple(1)) => {
            format!("Ok({name}(serde::Deserialize::from_content(content)?))")
        }
        Kind::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_content(&items[{i}])?"))
                .collect();
            format!(
                "match content {{\n\
                 serde::Content::Seq(items) if items.len() == {n} => \
                 Ok({name}({})),\n\
                 other => Err(serde::help::err(format!(\
                 \"expected {n}-element sequence for {name}, got {{other:?}}\"))),\n\
                 }}",
                items.join(", ")
            )
        }
        Kind::Struct(Shape::Named(fields)) => {
            if c.transparent && fields.len() == 1 {
                format!(
                    "Ok({name} {{ {}: serde::Deserialize::from_content(content)? }})",
                    fields[0].name
                )
            } else {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| de_named_field(f, &format!("missing field `{}` in {name}", f.name)))
                    .collect();
                format!(
                    "match content {{\n\
                     serde::Content::Map(map) => Ok({name} {{ {} }}),\n\
                     other => Err(serde::help::err(format!(\
                     \"expected map for {name}, got {{other:?}}\"))),\n\
                     }}",
                    inits.join(", ")
                )
            }
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| de_variant_arm(name, v)).collect();
            format!(
                "{{\n\
                 let (tag, payload) = serde::help::as_variant(content)?;\n\
                 match tag {{\n\
                 {}\n\
                 other => Err(serde::help::err(format!(\
                 \"unknown variant `{{other}}` for {name}\"))),\n\
                 }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
         fn from_content(content: &serde::Content) -> \
         ::std::result::Result<Self, serde::DeError> {{ {body} }}\n\
         }}"
    )
}

fn de_named_field(f: &Field, missing_msg: &str) -> String {
    let fallback = if f.has_default {
        "::std::default::Default::default()".to_string()
    } else {
        format!("return Err(serde::help::err({missing_msg:?}))")
    };
    format!(
        "{}: match serde::help::map_get(map, {:?}) {{\n\
         Some(v) => serde::Deserialize::from_content(v)?,\n\
         None => {fallback},\n\
         }}",
        f.name, f.name
    )
}

fn de_variant_arm(enum_name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.shape {
        Shape::Unit => format!("{:?} => Ok({enum_name}::{vname}),", vname),
        Shape::Tuple(1) => format!(
            "{:?} => match payload {{\n\
             Some(v) => Ok({enum_name}::{vname}(serde::Deserialize::from_content(v)?)),\n\
             None => Err(serde::help::err(\
             \"missing payload for {enum_name}::{vname}\")),\n\
             }},",
            vname
        ),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_content(&items[{i}])?"))
                .collect();
            format!(
                "{:?} => match payload {{\n\
                 Some(serde::Content::Seq(items)) if items.len() == {n} => \
                 Ok({enum_name}::{vname}({})),\n\
                 _ => Err(serde::help::err(\
                 \"expected {n}-element payload for {enum_name}::{vname}\")),\n\
                 }},",
                vname,
                items.join(", ")
            )
        }
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    de_named_field(
                        f,
                        &format!("missing field `{}` in {enum_name}::{vname}", f.name),
                    )
                })
                .collect();
            format!(
                "{:?} => match payload {{\n\
                 Some(serde::Content::Map(map)) => Ok({enum_name}::{vname} {{ {} }}),\n\
                 _ => Err(serde::help::err(\
                 \"expected map payload for {enum_name}::{vname}\")),\n\
                 }},",
                vname,
                inits.join(", ")
            )
        }
    }
}
