//! Offline stand-in for `parking_lot` (0.12 API surface).
//!
//! Wraps `std::sync` primitives behind the poison-free `parking_lot`
//! interface: `lock()`/`read()`/`write()` return guards directly, and a
//! poisoned lock (a panic while held) is transparently recovered rather
//! than propagated, matching parking_lot's no-poisoning semantics.

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// Reader–writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new reader–writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
