//! Offline stand-in for the `rand` crate (0.8 API surface).
//!
//! The build environment has no registry access, so the workspace vendors
//! the small slice of `rand` it actually uses: a seedable deterministic
//! generator ([`rngs::StdRng`]), uniform sampling over primitive ranges
//! ([`Rng::gen_range`]), raw draws ([`Rng::gen`]), and slice sampling
//! ([`seq::SliceRandom`]). The generator is a splitmix64 core — not the
//! upstream ChaCha12 `StdRng` — so sequences differ from upstream, but
//! every consumer in this repo only relies on *self-consistent* seeded
//! determinism, which this provides.

/// Core entropy source: 64 bits at a time.
pub trait RngCore {
    /// Next raw 64-bit draw.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit draw (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose sequence is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    /// Deterministic seeded generator (splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // XOR with a constant so seed 0 does not start at state 0.
            StdRng {
                state: seed ^ 0x6A09_E667_F3BC_C909,
            }
        }
    }
}

/// A type that can be drawn uniformly from the generator's raw output
/// (the `Standard` distribution in upstream terms).
pub trait StandardDraw: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardDraw for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardDraw for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardDraw for i64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl StandardDraw for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardDraw for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardDraw for f64 {
    /// Uniform in `[0, 1)` using 53 mantissa bits.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardDraw for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Sample one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = f64::draw(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = f32::draw(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of a primitive type uniformly.
    fn gen<T: StandardDraw>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Slice sampling helpers.

    use crate::{Rng, RngCore};

    /// Random selection from slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Choose `amount` distinct elements (fewer if the slice is
        /// shorter), in random order.
        fn choose_multiple<R: RngCore>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;

        /// Choose one element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose_multiple<R: RngCore>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index vector.
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..idx.len());
                idx.swap(i, j);
            }
            idx.truncate(amount);
            idx.into_iter()
                .map(|i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_sequences_are_reproducible() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_draws_stay_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let x = r.gen_range(3..10u64);
            assert!((3..10).contains(&x));
            let y = r.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&y));
            let z = r.gen_range(-0.5..0.5f64);
            assert!((-0.5..0.5).contains(&z));
        }
    }

    #[test]
    fn full_range_inclusive_does_not_overflow() {
        let mut r = StdRng::seed_from_u64(2);
        let _ = r.gen_range(0..=u64::MAX);
        let _ = r.gen_range(i64::MIN..=i64::MAX);
    }

    #[test]
    fn choose_multiple_is_distinct() {
        use seq::SliceRandom;
        let mut r = StdRng::seed_from_u64(3);
        let items: Vec<u32> = (0..100).collect();
        let picked: Vec<&u32> = items.choose_multiple(&mut r, 10).collect();
        assert_eq!(picked.len(), 10);
        let mut sorted: Vec<u32> = picked.iter().map(|x| **x).collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
    }
}
