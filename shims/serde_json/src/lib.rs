//! Offline stand-in for `serde_json` (1.x API surface used here):
//! `to_string`/`to_vec` and `from_str`/`from_slice` over the serde
//! shim's [`Content`] tree.
//!
//! Wire-format conventions match upstream defaults: structs are objects,
//! enums are externally tagged, integers round-trip exactly through a
//! dedicated i64/u64 path, and floats print via Rust's shortest
//! round-trip representation (integral floats keep a trailing `.0`, as
//! upstream does). Non-finite floats serialize as `null`, also matching
//! upstream.

use serde::{Content, Deserialize, Serialize};

/// Serialization or parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serialize a value to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out)?;
    Ok(out)
}

/// Serialize a value to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let content = parse(input)?;
    T::from_content(&content).map_err(Error::from)
}

/// Deserialize a value from JSON bytes.
pub fn from_slice<T: Deserialize>(input: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(input).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_content(c: &Content, out: &mut String) -> Result<(), Error> {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if v.is_finite() {
                // `{:?}` is Rust's shortest round-trip float formatting
                // and keeps `.0` on integral values, matching upstream
                // serde_json with `float_roundtrip`.
                out.push_str(&format!("{v:?}"));
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_json_string(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(item, out)?;
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                match k {
                    Content::Str(s) => write_json_string(s, out),
                    other => {
                        return Err(Error(format!(
                            "JSON object keys must be strings, got {other:?}"
                        )))
                    }
                }
                out.push(':');
                write_content(v, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(input: &str) -> Result<Content, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of input".into()))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.peek()?;
        if got != b {
            return Err(Error(format!(
                "expected `{}` at byte {}, got `{}`",
                b as char, self.pos, got as char
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek()? {
            b'n' => self.keyword("null", Content::Null),
            b't' => self.keyword("true", Content::Bool(true)),
            b'f' => self.keyword("false", Content::Bool(false)),
            b'"' => self.string().map(Content::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn keyword(&mut self, word: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]` in array, got `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((Content::Str(key), value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}` in object, got `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error("unterminated string".into()))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(Error("lone leading surrogate".into()));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error(format!("bad codepoint {cp:#x}")))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("bad escape `\\{}`", other as char)));
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar starting at pos.
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error(format!("invalid UTF-8 in string: {e}")))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error("truncated \\u escape".into()))?;
        let s = std::str::from_utf8(slice).map_err(|_| Error("bad \\u escape".into()))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error(format!("bad \\u escape `{s}`")))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42i64).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&"hi\n").unwrap(), "\"hi\\n\"");
        let v: i64 = from_str("-9223372036854775808").unwrap();
        assert_eq!(v, i64::MIN);
        let u: u64 = from_str("18446744073709551615").unwrap();
        assert_eq!(u, u64::MAX);
    }

    #[test]
    fn float_round_trip_is_exact() {
        for &f in &[0.1f64, 1e300, -2.5e-10, 1234567.0, f64::MIN_POSITIVE] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "{s}");
        }
    }

    #[test]
    fn collections_round_trip() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,null,3]");
        let back: Vec<Option<u32>> = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn strings_with_escapes_and_unicode() {
        let s = "quote\" back\\ tab\t nl\n ∅ 😀";
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(s, back);
        // Escaped unicode input parses too.
        let from_escape: String = from_str("\"\\u2205 \\ud83d\\ude00\"").unwrap();
        assert_eq!(from_escape, "∅ 😀");
    }

    #[test]
    fn whitespace_tolerant_parsing() {
        let v: Vec<u8> = from_str(" [ 1 , 2 ,\n3 ] ").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }
}
