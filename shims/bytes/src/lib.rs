//! Offline stand-in for the `bytes` crate (1.x API surface used here):
//! a growable byte buffer (`BytesMut`) and the `BufMut` write trait,
//! both backed by `Vec<u8>`.

/// Write access to a growable byte sink.
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, b: u8) {
        self.put_slice(&[b]);
    }
}

/// A growable, contiguous byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// An empty buffer with pre-reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(capacity),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Extend from a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    /// Consume into the backing vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.inner
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_read_back() {
        let mut b = BytesMut::with_capacity(8);
        b.put_slice(b"HTTP/1.1");
        b.put_u8(b' ');
        assert_eq!(&b[..], b"HTTP/1.1 ");
        assert_eq!(b.len(), 9);
    }
}
