//! Offline stand-in for `crossbeam-channel` (0.5 API surface), backed by
//! `std::sync::mpsc`. Only the multi-producer/single-consumer shapes the
//! workspace uses are provided: `unbounded()`, cloneable senders, and
//! receiver iteration.

use std::sync::mpsc;

/// Error returned when the receiving side has hung up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned when all senders have hung up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

/// Sending half of an unbounded channel.
pub struct Sender<T>(mpsc::Sender<T>);

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender(self.0.clone())
    }
}

impl<T> Sender<T> {
    /// Send a message; fails only if the receiver is gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
    }
}

/// Receiving half of an unbounded channel.
pub struct Receiver<T>(mpsc::Receiver<T>);

impl<T> Receiver<T> {
    /// Block until a message arrives or all senders are gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.0.recv().map_err(|_| RecvError)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<T> {
        self.0.try_recv().ok()
    }

    /// Iterate over messages until all senders disconnect.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        self.0.iter()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = mpsc::IntoIter<T>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = mpsc::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

/// Create an unbounded MPSC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender(tx), Receiver(rx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_in_then_drain() {
        let (tx, rx) = unbounded::<u32>();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(i).unwrap())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(tx);
        let mut got: Vec<u32> = rx.into_iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}
