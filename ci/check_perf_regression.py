#!/usr/bin/env python3
"""Perf-regression gate for the delta-pipeline CI smoke.

Compares the freshly produced BENCH_delta_pipeline.json against the
committed baseline and fails when the columnar plane's churn_round_ms
regresses by more than the threshold (default 25%, override with
STATESMAN_PERF_THRESHOLD, e.g. 0.25).

Usage: check_perf_regression.py <current.json> <baseline.json>
"""

import json
import os
import sys


def columnar(path):
    with open(path) as f:
        doc = json.load(f)
    for plane in doc["planes"]:
        if plane["plane"] == "columnar":
            return plane
    sys.exit(f"{path}: no columnar plane in {doc!r}")


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    current, baseline = columnar(sys.argv[1]), columnar(sys.argv[2])
    threshold = float(os.environ.get("STATESMAN_PERF_THRESHOLD", "0.25"))

    cur, base = current["churn_round_ms"], baseline["churn_round_ms"]
    limit = base * (1.0 + threshold)
    ratio = cur / base if base > 0 else float("inf")
    print(
        f"churn_round_ms: current {cur:.1f} vs baseline {base:.1f} "
        f"({ratio:.2f}x, limit {limit:.1f})"
    )
    if cur > limit:
        sys.exit(
            f"PERF REGRESSION: columnar churn_round_ms {cur:.1f} ms exceeds "
            f"baseline {base:.1f} ms by more than {threshold:.0%}"
        )
    # Informational only — seed regressions get flagged but don't gate,
    # since the CI smoke's seed path is dominated by fixed setup cost.
    s_cur, s_base = current.get("seed_ms"), baseline.get("seed_ms")
    if s_cur is not None and s_base:
        print(f"seed_ms: current {s_cur:.1f} vs baseline {s_base:.1f}")
    print("perf gate passed")


if __name__ == "__main__":
    main()
